"""Cross-phase IR invariant checker (V21x): clean pipelines must come
back silent, and seeded corruptions of each phase's output must be
flagged with the right code — that is what makes the checker worth
running inside ``SLMSOptions(verify=True)``."""

from repro.backend.compiler import CompilerConfig, FinalCompiler
from repro.core.names import NamePool, all_names
from repro.core.pipeline import _collect_types, slms
from repro.core.slms import SLMSOptions, slms_for_loop
from repro.lang.ast_nodes import Assign, For, ParGroup, Var
from repro.lang.parser import parse_program
from repro.machines.presets import itanium2
from repro.verify.ir_check import (
    _introduced_scalars,
    check_module,
    check_result,
)
from repro.workloads import all_workloads

# Two multiply-defined scalars force renamed webs and MVE rotation
# names — the introduced-scalar machinery the V211 scan tracks.
SRC = """
float a[100]; float b[100]; float t;
for (i = 0; i < 90; i += 1) {
    t = a[i] * 2.0;
    t = t + 1.0;
    b[i] = t;
}
"""


def applied_result(src=SRC, **opt):
    prog = parse_program(src)
    loop = [s for s in prog.body if isinstance(s, For)][0]
    result = slms_for_loop(
        loop, NamePool(all_names(prog)), SLMSOptions(**opt),
        _collect_types(prog),
    )
    assert result.applied, result.reason
    return result, loop


def codes(diags):
    return sorted({d.code for d in diags})


# ---------------------------------------------------------------------------
# source-level checks: clean results are silent
# ---------------------------------------------------------------------------


class TestClean:
    def test_applied_result_is_silent(self):
        result, loop = applied_result()
        assert result.partition.renamed  # the web we rely on below
        assert check_result(result, loop) == []

    def test_declined_result_is_skipped(self):
        result, loop = applied_result()
        result.applied = False
        assert check_result(result, loop) == []

    def test_verify_true_stays_silent_across_corpus(self):
        """The pipeline's own verify hook never fires V21x on real
        workloads — the checker's false-positive budget is zero."""
        bad = []
        for workload in all_workloads():
            outcome = slms(
                workload.full_program(), SLMSOptions(verify=True)
            )
            for res in outcome.loops:
                v21x = [
                    d for d in res.diagnostics
                    if d.code.startswith("V21")
                ]
                if v21x:
                    bad.append((workload.name, codes(v21x)))
        assert bad == []


# ---------------------------------------------------------------------------
# seeded mutations: every corruption is caught with the right code
# ---------------------------------------------------------------------------


class TestPartitionMutations:
    def test_dropped_store_mi(self):
        result, loop = applied_result()
        result.partition.mis = [
            m for m in result.partition.mis
            if not (isinstance(m, Assign) and "b[" in str(m))
        ]
        diags = check_result(result, loop)
        assert codes(diags) == ["V210"]
        assert any("'b'" in d.message and "missing" in d.message
                   for d in diags)

    def test_ghost_renamed_web(self):
        result, loop = applied_result()
        result.partition.renamed["ghost"] = ["ghost_w1"]
        diags = check_result(result, loop)
        assert codes(diags) == ["V210"]
        assert any("ghost" in d.message for d in diags)

    def test_non_flat_mi(self):
        result, loop = applied_result()
        result.partition.mis[0] = loop  # a For is never a valid MI
        diags = check_result(result, loop)
        assert any(
            d.code == "V210" and "not a flat statement" in d.message
            for d in diags
        )

    def test_phantom_array_store(self):
        result, loop = applied_result()
        phantom = parse_program(
            "float zz[4]; zz[0] = 1.0;"
        ).body[1]
        result.partition.mis.append(phantom)
        diags = check_result(result, loop)
        assert any(
            d.code == "V210" and "'zz'" in d.message
            and "never stores" in d.message
            for d in diags
        )


class TestKernelMutations:
    def test_deleted_prologue_defs_caught(self):
        """Strip every definition of the introduced scalars: the first
        kernel read of any of them must be reported as V211."""
        result, loop = applied_result()
        tracked = _introduced_scalars(result)
        assert tracked

        def strip(stmts):
            out = []
            for s in stmts:
                if (isinstance(s, Assign)
                        and isinstance(s.target, Var)
                        and s.target.name in tracked):
                    continue
                if isinstance(s, ParGroup):
                    s.stmts = strip(s.stmts)
                if isinstance(s, For):
                    s.body = strip(s.body)
                out.append(s)
            return out

        result.stmts = strip(result.stmts)
        for decl in result.new_decls:
            decl.init = None
        diags = check_result(result, loop)
        assert "V211" in codes(diags)
        assert any("read before any definition" in d.message
                   for d in diags)

    def test_lane_split_results_are_skipped(self):
        result, loop = applied_result()
        result.lanes = 2
        result.stmts = []  # would be a V211 storm if scanned
        partition_only = check_result(result, loop)
        assert "V211" not in codes(partition_only)


# ---------------------------------------------------------------------------
# LIR checks (V212 - V216)
# ---------------------------------------------------------------------------


def compiled_module(regalloc=True):
    machine = itanium2()
    config = CompilerConfig(name="t", regalloc=regalloc)
    compiled = FinalCompiler(machine, config).compile(parse_program(SRC))
    return compiled.module, machine


def first_instr(module, pred):
    for name in module.order:
        for instr in module.blocks[name].instrs:
            if pred(instr):
                return instr
    raise AssertionError("no matching instruction")


class TestModule:
    def test_clean_module_silent(self):
        module, machine = compiled_module()
        assert check_module(module, machine) == []

    def test_clean_virtual_module_silent(self):
        module, _ = compiled_module(regalloc=False)
        assert check_module(module) == []

    def test_unknown_opcode(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.op == "fmul").op = "frobnicate"
        diags = check_module(module, machine)
        assert codes(diags) == ["V212"]
        assert "frobnicate" in diags[0].message

    def test_branch_to_unknown_block(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.op in ("br", "brf", "brt")
                    ).label = "nowhere"
        diags = check_module(module, machine)
        assert any(d.code == "V212" and "nowhere" in d.message
                   for d in diags)

    def test_virtual_register_out_of_range(self):
        module, _ = compiled_module(regalloc=False)
        first_instr(module, lambda i: i.dst is not None
                    ).dst = f"v{module.n_vregs + 50}"
        diags = check_module(module)
        assert any(d.code == "V213" for d in diags)

    def test_physical_register_out_of_range(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.dst is not None).dst = "r999"
        diags = check_module(module, machine)
        assert any(d.code == "V213" and "r999" in d.message
                   for d in diags)

    def test_undeclared_array(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.op == "ld").array = "ghost"
        diags = check_module(module, machine)
        assert any(d.code == "V214" and "'ghost'" in d.message
                   for d in diags)

    def test_operand_shape_violation(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.op == "fmul").srcs = ("s0",)
        diags = check_module(module, machine)
        assert any(d.code == "V215" and "source" in d.message
                   for d in diags)

    def test_movi_without_immediate(self):
        module, machine = compiled_module()
        first_instr(module, lambda i: i.op == "movi").imm = None
        diags = check_module(module, machine)
        assert any(d.code == "V215" and "immediate" in d.message
                   for d in diags)

    def test_constant_address_out_of_extent(self):
        module, machine = compiled_module()
        ld = first_instr(module, lambda i: i.op == "ld"
                         and i.array not in (None, "__spill"))
        ld.srcs = ()  # now a constant address ...
        ld.disp = 10_000  # ... far outside the extent
        diags = check_module(module, machine)
        assert any(d.code == "V216" and "outside extent" in d.message
                   for d in diags)

    def test_missing_entry_block(self):
        module, machine = compiled_module()
        module.entry = "does_not_exist"
        diags = check_module(module, machine)
        assert any(d.code == "V212" and "entry" in d.message
                   for d in diags)
