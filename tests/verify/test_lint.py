"""Dataflow lint (A3xx family): subscript-bounds proofs, dead stores,
use-before-init, register pressure, and the ``slms lint`` CLI."""

import json

import pytest

from repro.cli import main
from repro.lang.parser import parse_program
from repro.machines.presets import machine_by_name
from repro.verify.lint import lint_program, loop_pressure


def lint(source, machine=None):
    return lint_program(parse_program(source), machine)


def codes(diags):
    return [d.code for d in diags]


class TestBounds:
    def test_proven_loop_gets_a303_note(self):
        diags = lint(
            "float a[100];"
            "for (i = 0; i < 100; i += 1) { a[i] = 1.0; }"
        )
        assert codes(diags) == ["A303"]
        assert diags[0].severity == "note"

    def test_definite_oob_is_a301_error(self):
        diags = lint(
            "float a[10];"
            "for (i = 0; i < 8; i += 1) { a[i + 20] = 1.0; }"
        )
        a301 = [d for d in diags if d.code == "A301"]
        assert a301 and a301[0].severity == "error"
        assert "'a'" in a301[0].message

    def test_may_escape_is_a302_warning(self):
        diags = lint(
            "float a[100]; float d[50];"
            "for (i = 0; i < 100; i += 1) { a[i] = d[i]; }"
        )
        a302 = [d for d in diags if d.code == "A302"]
        assert a302 and a302[0].severity == "warning"
        assert "'d'" in a302[0].message
        # No A303: the loop has an unproven subscript.
        assert "A303" not in codes(diags)

    def test_symbolic_bound_with_constant_value_proven(self):
        diags = lint(
            "int n; n = 90; float a[100];"
            "for (i = 0; i < n; i += 1) { a[i] = 0.0; }"
        )
        assert "A301" not in codes(diags)
        assert "A302" not in codes(diags)

    def test_negative_direction_escape(self):
        diags = lint(
            "float a[100];"
            "for (i = 0; i < 50; i += 1) { a[i - 3] = 0.0; }"
        )
        assert "A302" in codes(diags)


class TestDeadStoreAndUninit:
    def test_dead_store_flagged(self):
        diags = lint("int s; s = 1; s = 2; int t; t = s;")
        a304 = [d for d in diags if d.code == "A304"]
        assert len(a304) == 1
        assert "'s'" in a304[0].message

    def test_use_before_init_flagged(self):
        diags = lint("int s; int t; t = s + 1;")
        assert "A305" in codes(diags)

    def test_initialized_on_both_branches_is_clean(self):
        diags = lint(
            "int c; c = 1; int s;"
            "if (c < 2) { s = 1; } else { s = 2; }"
            "int t; t = s;"
        )
        assert "A305" not in codes(diags)

    def test_loop_carried_read_not_dead(self):
        diags = lint(
            "float a[20]; float s; s = 0.0;"
            "for (i = 0; i < 10; i += 1) { s = s + a[i]; }"
        )
        assert "A304" not in codes(diags)


class TestPressure:
    def test_pressure_positive(self):
        loop = parse_program(
            "float a[10]; for (i = 0; i < 10; i += 1)"
            "{ a[i] = a[i] * 2.0; }"
        ).body[1]
        assert loop_pressure(loop) >= 1

    def test_small_loop_fits_a307(self):
        diags = lint(
            "float a[100];"
            "for (i = 0; i < 100; i += 1) { a[i] = 1.0; }",
            machine_by_name("itanium2"),
        )
        assert "A307" in codes(diags)

    def test_no_machine_skips_pressure(self):
        diags = lint(
            "float a[100];"
            "for (i = 0; i < 100; i += 1) { a[i] = 1.0; }"
        )
        assert not any(c in ("A306", "A307") for c in codes(diags))


# ---------------------------------------------------------------------------
# slms lint CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def oob_file(tmp_path):
    path = tmp_path / "oob.c"
    path.write_text(
        "float a[10];\n"
        "for (i = 0; i < 8; i += 1) { a[i + 20] = 1.0; }\n"
    )
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(
        "float a[100];\n"
        "for (i = 0; i < 100; i += 1) { a[i] = 2.0 * a[i]; }\n"
    )
    return str(path)


class TestLintCLI:
    def test_error_exits_one(self, oob_file, capsys):
        assert main(["lint", oob_file]) == 1
        out = capsys.readouterr().out
        assert "[A301]" in out
        assert "1 error(s)" in out

    def test_clean_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_notes_hidden_by_default(self, clean_file, capsys):
        main(["lint", clean_file])
        assert "[A303]" not in capsys.readouterr().out
        main(["lint", clean_file, "--notes"])
        assert "[A303]" in capsys.readouterr().out

    def test_werror_promotes_warning(self, tmp_path):
        path = tmp_path / "warn.c"
        path.write_text(
            "float a[100]; float d[50];\n"
            "for (i = 0; i < 100; i += 1) { a[i] = d[i]; }\n"
        )
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--Werror"]) == 1

    def test_json_schema_pinned(self, oob_file, capsys):
        assert main(["lint", oob_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        # Wire-format pin: bump DIAG_SCHEMA on any payload-shape change.
        assert payload["schema"] == "slms-diag/1"
        assert payload["ok"] is False
        assert payload["machine"] == "itanium2"
        assert any(d["code"] == "A301" for d in payload["diagnostics"])

    def test_machine_none_skips_pressure(self, clean_file, capsys):
        assert main(["lint", clean_file, "--machine", "none",
                     "--notes"]) == 0
        out = capsys.readouterr().out
        assert "A307" not in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("float a[10];\na[3] = = 1.0;\n")
        assert main(["lint", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
