"""Schedule validator tests: it must accept every correct schedule the
pipeline emits and reject deliberately corrupted ones."""

import copy

import pytest

from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions
from repro.lang.ast_nodes import For, ParGroup
from repro.lang.parser import parse_program
from repro.lang.visitors import substitute_index, walk
from repro.verify.schedule import validate_result

SRC_PLAIN = """
float a[256]; float b[256]; float c[256];
for (i = 0; i < 200; i += 1) {
    a[i] = b[i] * 2.0;
    c[i] = a[i] + b[i];
}
"""

# Two MIs with a distance-2 flow dependence (a -> c, reused at i+2).
SRC_FLOW = """
float a[300]; float b[300]; float c[300];
for (i = 1; i < 200; i += 1) {
    a[i] = b[i] * 2.0 + c[i];
    c[i+2] = a[i] + b[i+1];
}
"""

# Three MIs whose valid II is 2: a flow edge with distance 1 whose
# source sits on a later row than its destination.
SRC_II2 = """
float a[300]; float b[300]; float c[300];
for (i = 1; i < 200; i += 1) {
    b[i] = a[i-1] + b[i];
    a[i] = b[i] * 0.5;
    c[i] = a[i] + 1.0;
}
"""

# The paper's §3.3 loop: decomposition + carried reuse forces MVE (or
# scalar expansion) renaming of the decomposition temporaries.
SRC_EXPANSION = """
float a[64];
for (i = 0; i < 64; i += 1) { a[i] = 0.125 * i + 1.0; }
for (i = 2; i < 60; i += 1) {
    a[i] = a[i-1] + a[i-2] + a[i+1] + a[i+2];
}
"""


def transform(source, which=0, **opts):
    """Run SLMS; return (result, original_loop) for attempt ``which``.

    Loops are paired in body order, matching the pipeline's traversal
    (``walk`` visits siblings in reverse, so it can't be used here).
    """
    program = parse_program(source)
    loops = [s for s in program.body if isinstance(s, For)]
    outcome = slms(program, SLMSOptions(**opts))
    assert outcome.loops, "no loop attempted"
    return outcome.loops[which], loops[which]


def corrupt_kernel_row(result, offset=1):
    """Shift the first kernel-row statement's subscripts by ``offset``
    iterations (substitute_index is functional: reassign the copy)."""
    for stmt in result.stmts:
        for node in walk(stmt):
            if isinstance(node, For):
                row = node.body[0]
                if isinstance(row, ParGroup):
                    row.stmts[0] = substitute_index(
                        row.stmts[0], "i", offset
                    )
                else:
                    node.body[0] = substitute_index(row, "i", offset)
                return
    raise AssertionError("no kernel loop in emitted statements")


# ---------------------------------------------------------------------------
# Acceptance: valid schedules pass with a full structural replay
# ---------------------------------------------------------------------------


def test_accepts_plain_schedule():
    result, loop = transform(SRC_PLAIN, enable_filter=False)
    assert result.applied
    report = validate_result(result, loop)
    assert report.ok
    assert report.structural
    assert report.matched > 0


def test_accepts_flow_dependence_schedule():
    result, loop = transform(SRC_FLOW, enable_filter=False)
    assert result.applied
    report = validate_result(result, loop)
    assert report.ok
    assert report.structural


def test_accepts_ii2_schedule():
    result, loop = transform(SRC_II2, enable_filter=False)
    assert result.applied
    assert result.ii == 2
    report = validate_result(result, loop)
    assert report.ok
    assert report.structural


def test_accepts_mve_schedule():
    result, loop = transform(SRC_EXPANSION, which=1, expansion="mve")
    assert result.applied
    assert result.expansion == "mve"
    assert result.new_scalars
    report = validate_result(result, loop)
    assert report.ok
    assert report.structural


def test_accepts_scalar_expansion_schedule():
    result, loop = transform(SRC_EXPANSION, which=1, expansion="scalar")
    assert result.applied
    assert result.expansion == "scalar"
    report = validate_result(result, loop)
    assert report.ok
    assert report.structural


def test_declined_result_is_trivially_ok():
    # A tight recurrence: declined with "no MI can be decomposed".
    result, loop = transform(
        "float a[256];\n"
        "for (i = 2; i < 200; i += 1) { a[i] = a[i-1] * 0.5 + a[i-2]; }",
        enable_filter=False,
    )
    assert not result.applied
    report = validate_result(result, loop)
    assert report.ok
    assert not report.structural


# ---------------------------------------------------------------------------
# Rejection: deliberate corruption must be caught
# ---------------------------------------------------------------------------


def test_rejects_stage_offset_corruption():
    """Shift one kernel-row statement by a whole iteration: the replay
    must see a hole (and an overshoot) in that MI's coverage."""
    result, loop = transform(SRC_FLOW, enable_filter=False)
    assert result.applied
    bad = copy.deepcopy(result)
    corrupt_kernel_row(bad)
    report = validate_result(bad, loop)
    assert not report.ok
    codes = {d.code for d in report.diagnostics}
    assert codes & {"V204", "V207"}


def test_rejects_lowered_ii():
    """Claim a smaller II than the dependences allow: the re-derived
    modulo constraint d*II + (sigma_dst - sigma_src) >= delta fails."""
    result, loop = transform(SRC_II2, enable_filter=False)
    assert result.applied and result.ii == 2
    bad = copy.deepcopy(result)
    bad.ii = 1
    bad.stages = 3
    report = validate_result(bad, loop)
    assert not report.ok
    assert any(d.code == "V201" for d in report.diagnostics)


def test_rejects_inconsistent_bookkeeping():
    result, loop = transform(SRC_PLAIN, enable_filter=False)
    bad = copy.deepcopy(result)
    bad.n_mis = 99
    report = validate_result(bad, loop)
    assert not report.ok
    assert any(d.code == "V202" for d in report.diagnostics)


def test_rejects_corruption_in_plain_schedule():
    result, loop = transform(SRC_PLAIN, enable_filter=False)
    assert result.applied
    bad = copy.deepcopy(result)
    corrupt_kernel_row(bad, offset=2)
    report = validate_result(bad, loop)
    assert not report.ok


# ---------------------------------------------------------------------------
# Graceful skips: out-of-scope results yield N208 notes, not errors
# ---------------------------------------------------------------------------


def test_symbolic_bounds_skip_structural_replay():
    result, loop = transform(
        "float a[256]; float b[256]; int n = 100;\n"
        "for (i = 0; i < n; i += 1) { a[i] = b[i] * 2.0; }",
        enable_filter=False,
    )
    if not result.applied:
        pytest.skip("symbolic-bound loop declined on this build")
    report = validate_result(result, loop)
    assert report.ok  # L1 constraints still checked, no errors
    assert not report.structural
    assert any(d.code == "N208" for d in report.diagnostics)


def test_reduction_lanes_skip_validation():
    result, loop = transform(
        "float a[256]; float s = 0.0;\n"
        "for (i = 0; i < 200; i += 1) { s = s + a[i]; }",
        enable_filter=False,
        reduction_lanes=4,
        allow_reassociation=True,
    )
    if result.lanes < 2:
        pytest.skip("lane splitting did not engage")
    report = validate_result(result, loop)
    assert report.ok
    assert any(d.code == "N208" for d in report.diagnostics)
