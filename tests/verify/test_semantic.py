"""Unit tests for the semantic checker: one per diagnostic code, plus
the no-false-positive guarantees the SLMS corpus dialect relies on."""

import pytest

from repro.lang.parser import parse_program
from repro.verify import check_program, has_errors
from repro.verify.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    sort_diagnostics,
)
from repro.lang.errors import SourceLocation


def codes(source: str):
    return [d.code for d in check_program(parse_program(source))]


# ---------------------------------------------------------------------------
# One test per diagnostic code
# ---------------------------------------------------------------------------


def test_e101_use_before_any_def():
    assert "E101" in codes("int x; int y = x + 1;")


def test_e101_use_before_later_def():
    assert "E101" in codes("float x; float y; y = x; x = 1.0;")


def test_e102_duplicate_declaration():
    assert "E102" in codes("int x; float x;")


def test_e104_float_subscript():
    assert "E104" in codes(
        "float a[10]; float f; f = 0.5; a[f] = 1.0;"
    )


def test_e105_rank_mismatch():
    assert "E105" in codes(
        "float a[10]; int i; for (i=0;i<5;i+=1) { a[i][i] = 1.0; }"
    )


def test_e106_constant_out_of_bounds():
    assert "E106" in codes("float a[10]; a[12] = 1.0;")
    assert "E106" in codes("float a[10]; float x; x = a[10];")


def test_e106_negative_index():
    assert "E106" in codes("float a[10]; a[0-1] = 1.0;")


def test_e109_subscripted_scalar():
    assert "E109" in codes("float x; x[3] = 1.0;")


def test_e110_array_used_as_scalar():
    assert "E110" in codes("float a[10]; float y; y = a + 1.0;")
    assert "E110" in codes("float a[10]; a = 1.0;")


def test_e111_break_outside_loop():
    assert "E111" in codes("break;")
    assert "E111" in codes("continue;")


def test_e111_not_inside_loop():
    assert "E111" not in codes(
        "int i; for (i=0;i<5;i+=1) { break; }"
    )


def test_e112_constant_division_by_zero():
    assert "E112" in codes("int x; x = 5 / 0;")
    assert "E112" in codes("int x; x = 5 % 0;")


def test_w103_shadowed_declaration():
    assert "W103" in codes(
        "int x; int i; for (i=0;i<3;i+=1) { float x; x = 1.0; }"
    )


def test_w107_loop_range_exceeds_bounds():
    assert "W107" in codes(
        "float a[10]; int i; for (i=0;i<20;i+=1) { a[i] = 1.0; }"
    )


def test_w107_in_bounds_is_silent():
    assert codes(
        "float a[20]; int i; for (i=0;i<20;i+=1) { a[i] = 1.0; }"
    ) == []


def test_w108_float_to_int_narrowing():
    assert "W108" in codes("int x; x = 1.5;")
    assert "W108" in codes("int x = 2.5;")


def test_w113_opaque_call():
    assert "W113" in codes("float y; y = sqrt(2.0);")


def test_w115_loop_carried_first_read():
    source = (
        "float s; int i; float a[10]; "
        "for (i=0;i<5;i+=1) { a[i] = s; s = a[i] + 1.0; }"
    )
    result = codes(source)
    assert "W115" in result
    assert "E101" not in result  # carried, not plain use-before-def


def test_n120_non_canonical_loop():
    assert "N120" in codes(
        "int i; for (i = 0; i*i < 10; i += 1) { i = i; }"
    )


# ---------------------------------------------------------------------------
# No false positives on the corpus dialect
# ---------------------------------------------------------------------------


def test_undeclared_loop_counter_is_fine():
    # Corpus kernels use bare `for (i = 0; ...)` with no declaration.
    assert codes(
        "float a[10]; for (i = 0; i < 10; i += 1) { a[i] = 1.0; }"
    ) == []


def test_scalar_defined_in_loop_readable_after():
    assert codes(
        "float a[10]; float s; int i; "
        "for (i=0;i<10;i+=1) { s = a[i]; } float t; t = s;"
    ) == []


def test_compound_assign_reads_after_init_ok():
    assert codes("float s = 0.0; s = s + 1.0;") == []


def test_clean_kernel_is_silent():
    assert codes(
        "float a[100]; float b[100]; int i; "
        "for (i = 0; i < 100; i += 1) { a[i] = b[i] * 2.0; }"
    ) == []


# ---------------------------------------------------------------------------
# Diagnostic machinery
# ---------------------------------------------------------------------------


def test_every_reported_code_is_registered():
    for code in ("E101", "W107", "V201", "N208"):
        assert code in DIAGNOSTIC_CODES


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("error", "E999", SourceLocation(1, 1), "nope")


def test_unknown_severity_rejected():
    with pytest.raises(ValueError):
        Diagnostic("fatal", "E101", SourceLocation(1, 1), "nope")


def test_format_omits_unknown_location():
    diag = Diagnostic("error", "E101", SourceLocation(), "msg")
    assert "0:0" not in diag.format("file.c")
    assert diag.format("file.c").startswith("file.c: error:")


def test_format_includes_known_location():
    diag = Diagnostic("warning", "W107", SourceLocation(3, 9), "msg")
    assert diag.format("k.c") == "k.c:3:9: warning: [W107] msg"


def test_has_errors_werror_promotes_warnings():
    diags = check_program(parse_program("float y; y = sqrt(2.0);"))
    assert not has_errors(diags)
    assert has_errors(diags, werror=True)


def test_sort_is_by_position():
    diags = check_program(
        parse_program("int x; float x; int y = z + 1;")
    )
    lines = [d.loc.line for d in sort_diagnostics(diags)]
    assert lines == sorted(lines)


def test_locations_are_real():
    diags = check_program(parse_program("float a[10];\na[12] = 1.0;"))
    assert all(d.loc.line > 0 for d in diags)
