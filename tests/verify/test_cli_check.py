"""CLI tests for ``slms check``, ``slms explain --check``, and the
no-traceback frontend-error contract."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(
        """
        float a[256]; float b[256]; float c[256];
        for (i = 0; i < 200; i += 1) {
            a[i] = b[i] * 2.0;
            c[i] = a[i] + b[i];
        }
        """
    )
    return str(path)


@pytest.fixture()
def warning_file(tmp_path):
    # In-bounds loop over a but the index range escapes d: W107.
    path = tmp_path / "warn.c"
    path.write_text(
        """
        float a[256]; float d[100];
        for (i = 0; i < 200; i += 1) {
            a[i] = d[i] * 2.0;
        }
        """
    )
    return str(path)


@pytest.fixture()
def error_file(tmp_path):
    path = tmp_path / "err.c"
    path.write_text("float a[10];\na[12] = 1.0;\n")
    return str(path)


@pytest.fixture()
def parse_error_file(tmp_path):
    path = tmp_path / "bad.c"
    path.write_text("float a[10];\na[3] = = 1.0;\n")
    return str(path)


class TestCheck:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "schedule(s) validated" in out

    def test_semantic_error_exits_nonzero(self, error_file, capsys):
        assert main(["check", error_file]) == 1
        out = capsys.readouterr().out
        assert "[E106]" in out
        assert "error:" in out

    def test_diagnostics_carry_location(self, error_file, capsys):
        main(["check", error_file])
        out = capsys.readouterr().out
        assert f"{error_file}:2:" in out

    def test_warning_exits_zero(self, warning_file, capsys):
        assert main(["check", warning_file]) == 0
        assert "[W107]" in capsys.readouterr().out

    def test_werror_promotes_warning(self, warning_file):
        assert main(["check", warning_file, "--Werror"]) == 1

    def test_json_output(self, clean_file, capsys):
        assert main(["check", clean_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Wire-format pin: bump DIAG_SCHEMA on any payload-shape change.
        assert payload["schema"] == "slms-diag/1"
        assert payload["ok"] is True
        assert payload["file"] == clean_file
        assert payload["diagnostics"] == []
        assert payload["loops"]
        assert all("applied" in loop for loop in payload["loops"])

    def test_json_on_error(self, error_file, capsys):
        assert main(["check", error_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["code"] == "E106" for d in payload["diagnostics"])

    def test_no_filter_flag(self, clean_file):
        assert main(["check", clean_file, "--no-filter"]) == 0


class TestFrontendErrors:
    """Bad input exits 2 (usage/input) with a formatted diagnostic,
    never a traceback — exit 1 is reserved for failed work."""

    def test_check_parse_error(self, parse_error_file, capsys):
        assert main(["check", parse_error_file]) == 2
        err = capsys.readouterr().err
        assert parse_error_file in err
        assert "error:" in err
        assert ":2:" in err  # real location, not 0:0

    def test_transform_parse_error(self, parse_error_file, capsys):
        assert main(["transform", parse_error_file]) == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_parse_error(self, parse_error_file, capsys):
        assert main(["explain", parse_error_file]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.c")]) == 2
        assert "error:" in capsys.readouterr().err


class TestExplainCheck:
    def test_explain_check_section(self, error_file, capsys):
        assert main(["explain", error_file, "--check"]) == 0
        out = capsys.readouterr().out
        assert "semantic check:" in out
        assert "[E106]" in out

    def test_explain_without_check_is_unchanged(self, clean_file, capsys):
        main(["explain", clean_file])
        assert "semantic check" not in capsys.readouterr().out
