"""Codegen error paths and miscellaneous lowering corners."""

import pytest

from repro.backend.codegen import CodegenError, compile_to_lir
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module


class TestErrors:
    def test_float_modulo_rejected(self):
        with pytest.raises(CodegenError):
            compile_to_lir(parse_program("x = 1.5; y = x % 2;"))

    def test_break_outside_loop_rejected(self):
        from repro.lang.ast_nodes import Break, Program

        with pytest.raises(CodegenError):
            compile_to_lir(Program([Break()]))

    def test_continue_outside_loop_rejected(self):
        from repro.lang.ast_nodes import Continue, Program

        with pytest.raises(CodegenError):
            compile_to_lir(Program([Continue()]))


class TestCorners:
    def roundtrip(self, source, env=None):
        prog = parse_program(source)
        expected = run_program(prog, env=env)
        module = compile_to_lir(prog)
        assert state_equal(expected, run_module(module, env=env)), source

    def test_pargroup_lowering(self):
        from repro import SLMSOptions, slms

        source = """
        float A[32], B[32];
        for (i = 0; i < 32; i++) B[i] = i;
        for (i = 0; i < 30; i++) { A[i] = B[i] * 2.0; B[i] = A[i] + 1.0; }
        """
        outcome = slms(source, SLMSOptions(enable_filter=False))
        prog = outcome.program
        expected = run_program(prog)
        module = compile_to_lir(prog)
        assert state_equal(expected, run_module(module))

    def test_negative_disp_address(self):
        # A[i-2] with i >= 2: negative displacement addressing.
        self.roundtrip(
            "float A[16]; for (i = 2; i < 16; i++) A[i-2] = i * 1.0;"
        )

    def test_scaled_subscript(self):
        self.roundtrip(
            "float A[32]; for (i = 0; i < 15; i++) A[2*i] = i * 0.5;"
        )

    def test_symbolic_plus_iv_subscript(self):
        self.roundtrip(
            "float A[32]; int j = 3;"
            "for (i = 0; i < 20; i++) A[i + j] = i * 1.0;"
        )

    def test_ternary_in_loop(self):
        self.roundtrip(
            "float A[16]; for (i = 0; i < 16; i++) "
            "A[i] = i % 2 == 0 ? 1.0 : 2.0;"
        )

    def test_downward_loop(self):
        self.roundtrip(
            "float A[16]; for (i = 15; i > 2; i--) A[i] = i * 0.25;"
        )

    def test_spelled_out_step(self):
        module = compile_to_lir(
            parse_program(
                "float A[32]; for (i = 0; i < 30; i = i + 2) A[i] = 1.0;"
            )
        )
        assert module.loops and module.loops[0].step == 2

    def test_deeply_nested_expressions(self):
        self.roundtrip(
            "x = ((1.0 + 2.0) * (3.0 - 0.5)) / (2.0 * (1.0 + 0.25));"
        )

    def test_logical_ops_lowering(self):
        self.roundtrip(
            "a = 1; b = 0;"
            "c = a && b; d = a || b; e = !a;"
            "f = (a < 2) && (b >= 0);"
        )
