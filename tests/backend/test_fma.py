"""FMA fusion tests (Itanium/POWER4 fused multiply-add pipes)."""


from repro.backend.codegen import compile_to_lir
from repro.backend.compiler import COMPILER_PRESETS, FinalCompiler
from repro.lang import parse_program
from repro.machines import itanium2
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module

SRC = """
float A[32], B[32], C[32];
for (i = 0; i < 32; i++) { A[i] = 0.3 * i; B[i] = 2.0 - 0.05 * i; }
for (i = 0; i < 32; i++) C[i] = A[i] * B[i] + 1.5;
s = 0.0;
for (i = 0; i < 32; i++) s = s + A[i] * B[i];
"""


class TestFusion:
    def test_fma_ops_emitted(self):
        module = compile_to_lir(parse_program(SRC), use_fma=True)
        assert any(i.op == "fma" for i in module.all_instrs())

    def test_no_fma_without_flag(self):
        module = compile_to_lir(parse_program(SRC), use_fma=False)
        assert not any(i.op == "fma" for i in module.all_instrs())

    def test_both_orientations_fuse(self):
        # z + x*y and x*y + z.
        src = "a = 1.5; b = 2.5; c = 3.5; x = a * b + c; y = c + a * b;"
        module = compile_to_lir(parse_program(src), use_fma=True)
        fmas = [i for i in module.all_instrs() if i.op == "fma"]
        assert len(fmas) == 2

    def test_integer_add_not_fused(self):
        src = "int a = 2; int b = 3; int c = 4; int x; x = a * b + c;"
        module = compile_to_lir(parse_program(src), use_fma=True)
        assert not any(i.op == "fma" for i in module.all_instrs())

    def test_bit_exact_vs_unfused(self):
        prog = parse_program(SRC)
        expected = run_program(prog)
        fused = run_module(compile_to_lir(prog, use_fma=True))
        assert state_equal(expected, fused)

    def test_fma_reduces_op_count(self):
        prog = parse_program(SRC)
        plain = compile_to_lir(prog, use_fma=False)
        fused = compile_to_lir(prog, use_fma=True)
        assert len(fused.all_instrs()) < len(plain.all_instrs())

    def test_presets(self):
        assert COMPILER_PRESETS["icc_O3"].fma
        assert COMPILER_PRESETS["xlc_O3"].fma
        assert not COMPILER_PRESETS["gcc_O3"].fma

    def test_fma_speeds_up_fp_loops(self):
        from repro.backend.compiler import CompilerConfig
        from repro.sim.executor import execute

        machine = itanium2()
        with_fma = CompilerConfig(name="f", list_schedule=True, fma=True)
        without = CompilerConfig(name="n", list_schedule=True, fma=False)
        prog = parse_program(SRC)
        cy = {}
        for tag, config in (("fma", with_fma), ("plain", without)):
            compiled = FinalCompiler(machine, config).compile(prog)
            cy[tag] = execute(compiled.module, machine).metrics.cycles
        assert cy["fma"] <= cy["plain"]

    def test_paper_92_kernel8_bundles(self):
        """The §9.2 claim lands on the paper's numbers with FMA: 23→16."""
        from repro.harness.figures import text_bundles

        result = text_bundles()
        before = result.series["bundles_before"]["kernel8"]
        after = result.series["bundles_after"]["kernel8"]
        assert 21 <= before <= 25   # paper: 23
        assert 14 <= after <= 18    # paper: 16
