"""Register allocation tests: correctness under pressure + spill stats."""

import pytest

from repro.backend.codegen import compile_to_lir
from repro.backend.regalloc import RegAllocError, allocate
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module

WIDE = """
float A[32], B[32], C[32], D[32];
float s = 0.0, t, u, w, v1, v2;
for (i = 0; i < 32; i++) { A[i] = i * 0.5; B[i] = 32 - i; }
for (i = 0; i < 32; i++) {
    t = A[i] * B[i];
    u = t + A[i];
    w = u * u - t;
    v1 = w + t * u;
    v2 = v1 * 0.5 + w;
    C[i] = v2;
    D[i] = t + u + w + v1 + v2;
    s = s + v2;
}
"""


def check(source, num_registers, env=None):
    prog = parse_program(source)
    expected = run_program(prog, env=env)
    module = compile_to_lir(prog)
    stats = allocate(module, num_registers)
    actual = run_module(module, env=env)
    assert state_equal(expected, actual), f"K={num_registers}"
    return module, stats


class TestCorrectness:
    @pytest.mark.parametrize("num_registers", [64, 32, 16, 12, 8, 6])
    def test_wide_program_all_register_counts(self, num_registers):
        check(WIDE, num_registers)

    def test_env_injection_with_spilled_scalar(self):
        source = """
        float A[8];
        for (i = 0; i < 8; i++) A[i] = base + i * scale + i * i * 0.25
            + i * 0.125 + 1.0;
        """
        module, stats = check(source, 6, env={"base": 2.0, "scale": 0.5})

    def test_control_flow_with_spills(self):
        source = """
        float A[16];
        s = 0.0;
        for (i = 0; i < 16; i++) {
            a1 = i * 0.5; a2 = a1 + 1.0; a3 = a2 * a1; a4 = a3 - a2;
            if (a4 > 2.0) { s = s + a4; } else { s = s - a1; }
            A[i] = s;
        }
        """
        check(source, 6)

    def test_too_few_registers_rejected(self):
        module = compile_to_lir(parse_program("x = 1;"))
        with pytest.raises(RegAllocError):
            allocate(module, 3)


class TestStatistics:
    def test_no_spills_with_plenty_of_registers(self):
        _, stats = check(WIDE, 64)
        assert stats.n_spilled == 0

    def test_spills_increase_as_registers_shrink(self):
        _, many = check(WIDE, 32)
        _, few = check(WIDE, 6)
        assert few.n_spilled > many.n_spilled

    def test_pressure_reported(self):
        _, stats = check(WIDE, 32)
        assert stats.max_pressure >= 6  # 6 live scalars at least

    def test_spill_traffic_visible_as_memory_ops(self):
        prog = parse_program(WIDE)
        few = compile_to_lir(prog)
        allocate(few, 6)
        spill_ops = [
            i for i in few.all_instrs() if i.array == "__spill"
        ]
        assert spill_ops, "expected spill loads/stores"

    def test_scalar_slot_extraction(self):
        # Even if a scalar lands in a spill slot its final value must be
        # extractable (state correctness is covered above; check the
        # mapping is recorded).
        prog = parse_program(WIDE)
        module = compile_to_lir(prog)
        stats = allocate(module, 6)
        if stats.n_spilled:
            # At least the binding table stays consistent.
            for name in module.scalar_slots:
                assert name in module.scalar_regs
