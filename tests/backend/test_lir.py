"""LIR data-structure tests: blocks, successors, module utilities."""

import pytest

from repro.backend.lir import Block, Instr, IVInfo, Module


class TestInstr:
    def test_op_class_mapping(self):
        assert Instr(op="ld", array="A").op_class() == "mem"
        assert Instr(op="st", array="A").op_class() == "mem"
        assert Instr(op="fadd").op_class() == "fadd"
        assert Instr(op="fmul").op_class() == "fmul"
        assert Instr(op="mul").op_class() == "fmul"  # shares the multiplier
        assert Instr(op="fdiv").op_class() == "div"
        assert Instr(op="sqrt").op_class() == "div"
        assert Instr(op="br").op_class() == "branch"
        assert Instr(op="brt").op_class() == "branch"
        assert Instr(op="add").op_class() == "alu"
        assert Instr(op="select").op_class() == "alu"

    def test_is_branch(self):
        assert Instr(op="br").is_branch()
        assert Instr(op="brf").is_branch()
        assert Instr(op="brt").is_branch()
        assert not Instr(op="add").is_branch()

    def test_str_smoke(self):
        text = str(Instr(op="ld", dst="v1", srcs=("v2",), array="A", disp=3))
        assert "ld" in text and "A+3" in text


class TestBlockSuccessors:
    def test_fallthrough_only(self):
        block = Block("a", [Instr(op="add", dst="v1", srcs=())])
        assert block.successors("b") == ["b"]

    def test_unconditional_branch_ends_flow(self):
        block = Block("a", [Instr(op="br", label="x")])
        assert block.successors("b") == ["x"]

    def test_conditional_branch_keeps_fallthrough(self):
        block = Block("a", [Instr(op="brf", srcs=("c",), label="x")])
        assert block.successors("b") == ["x", "b"]

    def test_brt_counts(self):
        block = Block("a", [Instr(op="brt", srcs=("c",), label="x")])
        assert "x" in block.successors("b")

    def test_last_block_no_fallthrough(self):
        block = Block("a", [])
        assert block.successors(None) == []


class TestModule:
    def test_block_ordering_with_after(self):
        module = Module()
        module.new_block("a")
        module.new_block("c", after="a")
        module.new_block("b", after="a")
        assert module.order == ["a", "b", "c"]

    def test_duplicate_block_rejected(self):
        module = Module()
        module.new_block("a")
        with pytest.raises(ValueError):
            module.new_block("a")

    def test_next_of(self):
        module = Module()
        module.new_block("a")
        module.new_block("b")
        assert module.next_of("a") == "b"
        assert module.next_of("b") is None

    def test_all_instrs_in_order(self):
        module = Module()
        a = module.new_block("a")
        b = module.new_block("b")
        a.emit(Instr(op="movi", dst="v1", imm=1))
        b.emit(Instr(op="movi", dst="v2", imm=2))
        ops = module.all_instrs()
        assert [i.dst for i in ops] == ["v1", "v2"]

    def test_dump_smoke(self):
        module = Module()
        module.new_block("entry").emit(Instr(op="movi", dst="v1", imm=7))
        text = module.dump()
        assert "entry:" in text and "movi" in text


class TestIVInfo:
    def test_fields(self):
        info = IVInfo(iv="v3", coeff=2, offset=-1)
        assert (info.iv, info.coeff, info.offset) == ("v3", 2, -1)
