"""Codegen tests: LIR output validated against the source interpreter."""

import pytest

from repro.backend.codegen import CodegenError, compile_to_lir
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module


def roundtrip(source, env=None, predication=False):
    prog = parse_program(source)
    expected = run_program(prog, env=env)
    module = compile_to_lir(prog, use_predication=predication)
    actual = run_module(module, env=env)
    assert state_equal(expected, actual), source
    return module


class TestExpressions:
    def test_arithmetic(self):
        roundtrip("x = 1 + 2 * 3 - 4;")

    def test_float_arithmetic(self):
        roundtrip("x = 1.5 * 2.0 + 0.25;")

    def test_division_semantics(self):
        roundtrip("int a; a = -7 / 2; int b; b = -7 % 2; c = 7.0 / 2.0;")

    def test_comparisons_and_logic(self):
        roundtrip("a = (1 < 2) && (3 >= 3); b = (1 == 2) || !(0 != 0);")

    def test_ternary(self):
        roundtrip("x = 1 ? 10 : 20; y = 0 ? 10 : 20;")

    def test_unary(self):
        roundtrip("x = -5; y = -2.5; z = !3;")

    def test_intrinsics(self):
        roundtrip("a = max(2, 7); b = min(2, 7); c = abs(0 - 4); d = sqrt(16.0);")

    def test_float_to_int_truncation(self):
        roundtrip("int k; k = 7.9; int m; m = 0.0 - 7.9;")


class TestArrays:
    def test_1d_load_store(self):
        roundtrip("float A[8]; A[3] = 1.5; x = A[3];")

    def test_constant_index_folds_to_disp(self):
        module = roundtrip("float A[8]; A[3] = 1.0;")
        stores = [i for i in module.all_instrs() if i.op == "st"]
        assert stores[0].disp == 3
        assert stores[0].srcs[1:] == ()  # no index register needed

    def test_offset_folds_to_disp(self):
        module = roundtrip(
            "float A[8]; for (i = 0; i < 6; i++) A[i + 2] = 1.0;"
        )
        stores = [i for i in module.all_instrs() if i.op == "st"]
        assert stores[0].disp == 2

    def test_2d_row_major(self):
        roundtrip(
            "float X[3][4]; X[2][3] = 7.0; x = X[2][3];"
        )

    def test_2d_flattening_matches_interpreter(self):
        roundtrip(
            """
            float X[4][5];
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 5; j++) {
                    X[i][j] = i * 10 + j;
                }
            }
            s = 0.0;
            for (i = 0; i < 4; i++) s = s + X[i][2];
            """
        )

    def test_int_array(self):
        roundtrip("int A[4]; A[0] = 3; A[1] = A[0] * 2; x = A[1];")

    def test_undeclared_array_rejected(self):
        with pytest.raises(CodegenError):
            compile_to_lir(parse_program("x = B[0];"))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(CodegenError):
            compile_to_lir(parse_program("float A[4]; x = A[0][1];"))


class TestIVAnnotations:
    def test_simple_loop_annotated(self):
        module = roundtrip(
            "float A[16]; for (i = 0; i < 16; i++) A[i] = 1.0;"
        )
        stores = [i for i in module.all_instrs() if i.op == "st" and i.array == "A"]
        assert all(s.iv is not None and s.iv.coeff == 1 for s in stores)

    def test_offset_in_annotation(self):
        module = roundtrip(
            "float A[16]; for (i = 0; i < 12; i++) A[i + 3] = 1.0;"
        )
        stores = [i for i in module.all_instrs() if i.op == "st" and i.array == "A"]
        assert stores[0].iv.offset == 3

    def test_symbolic_subscript_not_annotated(self):
        module = roundtrip(
            "float A[32]; j = 2; for (i = 0; i < 8; i++) A[i + j] = 1.0;"
        )
        stores = [i for i in module.all_instrs() if i.op == "st" and i.array == "A"]
        assert stores[0].iv is None


class TestControlFlow:
    def test_if_else(self):
        roundtrip("x = 5; if (x > 3) y = 1; else y = 2;")
        roundtrip("x = 1; if (x > 3) y = 1; else y = 2;")

    def test_nested_if(self):
        roundtrip(
            "x = 5; if (x > 0) { if (x > 10) y = 1; else y = 2; } else y = 3;"
        )

    def test_while(self):
        roundtrip("int k = 100; n = 0; while (k > 1) { k = k / 3; n++; }")

    def test_for_with_break_continue(self):
        roundtrip(
            "c = 0; for (i = 0; i < 20; i++) {"
            " if (i % 3 == 0) continue; if (i > 11) break; c++; }"
        )

    def test_loop_metadata_recorded(self):
        module = roundtrip(
            "float A[8]; for (i = 0; i < 8; i++) A[i] = 1.0;"
        )
        assert len(module.loops) == 1
        assert module.loops[0].step == 1

    def test_branchy_body_not_ims_candidate(self):
        module = roundtrip(
            "float A[8]; for (i = 0; i < 8; i++) { if (i > 2) A[i] = 1.0; }"
        )
        assert module.loops == []


class TestPredication:
    def test_scalar_select(self):
        for x in (1.0, -1.0):
            prog = parse_program("if (x > 0.0) y = 1.0; else { }")
            # else-less single assign becomes select under predication
            module = compile_to_lir(
                parse_program("y = 5.0; if (x > 0.0) y = 1.0;"),
                use_predication=True,
            )
            out = run_module(module, env={"x": x})
            assert out["y"] == (1.0 if x > 0 else 5.0)

    def test_predicated_store(self):
        src = (
            "float A[4]; A[1] = 9.0;"
            "if (c > 0) A[1] = 1.0;"
        )
        for c in (1, -1):
            module = compile_to_lir(parse_program(src), use_predication=True)
            out = run_module(module, env={"c": c})
            assert out["A"][1] == (1.0 if c > 0 else 9.0)

    def test_predication_keeps_loop_single_block(self):
        src = (
            "float A[16], B[16];"
            "for (i = 0; i < 16; i++) { if (B[i] > 0.0) A[i] = B[i]; }"
        )
        module = compile_to_lir(parse_program(src), use_predication=True)
        assert len(module.loops) == 1
        plain = compile_to_lir(parse_program(src), use_predication=False)
        assert plain.loops == []
