"""List scheduler and machine-level IMS tests."""


from repro.backend.codegen import compile_to_lir
from repro.backend.compiler import FinalCompiler
from repro.backend.ims import build_loop_dependences, rec_mii, res_mii
from repro.backend.listsched import schedule_module
from repro.backend.lir import Instr
from repro.backend.rotate import rotate_loops
from repro.lang import parse_program
from repro.machines import arm7tdmi, itanium2, pentium
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module


def module_for(source, machine=None, rotate=False):
    module = compile_to_lir(parse_program(source))
    if rotate:
        rotate_loops(module)
    if machine is not None:
        schedule_module(module, machine)
    return module


class TestListScheduling:
    def test_schedule_covers_all_instructions(self):
        module = module_for(
            "float A[8], B[8]; for (i = 0; i < 8; i++) A[i] = B[i] + 1.0;",
            itanium2(),
        )
        for name in module.order:
            block = module.blocks[name]
            scheduled = sorted(i for cycle in block.schedule for i in cycle)
            assert scheduled == list(range(len(block.instrs)))

    def test_wide_machine_packs_tighter(self):
        src = (
            "float A[8], B[8], C[8], D[8];"
            "for (i = 0; i < 8; i++) {"
            " A[i] = A[i] + 1.0; B[i] = B[i] + 2.0;"
            " C[i] = C[i] + 3.0; D[i] = D[i] + 4.0; }"
        )
        wide = module_for(src, itanium2())
        narrow = module_for(src, arm7tdmi())
        body = lambda m: max(  # noqa: E731
            b.schedule_length for b in m.blocks.values() if b.instrs
        )
        assert body(wide) < body(narrow)

    def test_issue_width_respected(self):
        module = module_for(
            "float A[8]; for (i = 0; i < 8; i++) A[i] = A[i] + 1.0;",
            arm7tdmi(),
        )
        for block in module.blocks.values():
            for cycle in block.schedule or []:
                assert len(cycle) <= 1

    def test_unit_limits_respected(self):
        machine = pentium()  # 1 mem port
        module = module_for(
            "float A[8], B[8], C[8];"
            "for (i = 0; i < 8; i++) { A[i] = 1.0; B[i] = 2.0; C[i] = 3.0; }",
            machine,
        )
        for block in module.blocks.values():
            for cycle in block.schedule or []:
                mems = sum(
                    1
                    for idx in cycle
                    if block.instrs[idx].op_class() == "mem"
                )
                assert mems <= 1

    def test_latency_respected_for_dependent_ops(self):
        machine = itanium2()  # fmul latency 4
        module = module_for("x = 2.0; y = x * x; z = y * y;", machine)
        entry = module.blocks["entry"]
        pos = {}
        for cycle_idx, cycle in enumerate(entry.schedule):
            for instr_idx in cycle:
                pos[instr_idx] = cycle_idx
        fmuls = [
            i for i, ins in enumerate(entry.instrs) if ins.op == "fmul"
        ]
        assert pos[fmuls[1]] >= pos[fmuls[0]] + 4

    def test_scheduling_preserves_semantics_via_execution(self):
        # Scheduling never reorders the executed instruction list (it
        # only assigns cycles), so functional equality must hold.
        src = """
        float A[16];
        s = 0.0;
        for (i = 0; i < 16; i++) { A[i] = i * 0.25; s = s + A[i]; }
        """
        expected = run_program(parse_program(src))
        module = module_for(src, itanium2(), rotate=True)
        assert state_equal(expected, run_module(module))


class TestRotation:
    def test_rotation_count(self):
        module = compile_to_lir(
            parse_program(
                "float A[8]; for (i = 0; i < 8; i++) A[i] = 1.0;"
            )
        )
        assert rotate_loops(module) == 1

    def test_rotated_loop_still_correct(self):
        src = (
            "float A[9], B[9]; c = 0;"
            "for (i = 0; i < 9; i++) { A[i] = B[i] * 2.0; c = c + 1; }"
        )
        expected = run_program(parse_program(src))
        module = module_for(src, rotate=True)
        assert state_equal(expected, run_module(module))

    def test_rotated_body_ends_with_brt(self):
        module = module_for(
            "float A[8]; for (i = 0; i < 8; i++) A[i] = 1.0;", rotate=True
        )
        body = module.blocks[module.loops[0].body_block]
        assert body.instrs[-1].op == "brt"

    def test_zero_trip_guard_preserved(self):
        src = "float A[8]; n = 0; for (i = 0; i < n; i++) A[i] = 1.0;"
        expected = run_program(parse_program(src))
        module = module_for(src, rotate=True)
        assert state_equal(expected, run_module(module))


class TestResMII:
    def test_mem_bound(self):
        machine = pentium()  # 1 mem port
        instrs = [
            Instr(op="ld", dst="v1", array="A", disp=0),
            Instr(op="ld", dst="v2", array="A", disp=1),
            Instr(op="ld", dst="v3", array="A", disp=2),
        ]
        assert res_mii(instrs, machine) == 3

    def test_issue_width_bound(self):
        machine = arm7tdmi()  # 1-wide
        instrs = [Instr(op="add", dst=f"v{i}", srcs=()) for i in range(5)]
        assert res_mii(instrs, machine) >= 5


class TestRecMII:
    def test_accumulator_recurrence(self):
        # s = s + x each iteration: RecMII >= fadd latency.
        machine = itanium2()
        instrs = [
            Instr(op="fadd", dst="s", srcs=("s", "x")),
        ]
        edges, _ = build_loop_dependences(instrs, 1, machine)
        assert rec_mii(edges, 1) >= machine.latency("fadd")

    def test_independent_ops_mii_1(self):
        machine = itanium2()
        instrs = [
            Instr(op="add", dst="a", srcs=("b", "c")),
            Instr(op="add", dst="d", srcs=("e", "f")),
        ]
        edges, _ = build_loop_dependences(instrs, 1, machine)
        assert rec_mii(edges, 2) == 1

    def test_memory_recurrence(self):
        # A[i] written, A[i-1] read next iteration.
        machine = itanium2()
        instrs = [
            Instr(
                op="st",
                srcs=("v", "i"),
                array="A",
                disp=0,
                iv=__import__(
                    "repro.backend.lir", fromlist=["IVInfo"]
                ).IVInfo(iv="i", coeff=1, offset=0),
            ),
            Instr(
                op="ld",
                dst="w",
                srcs=("i",),
                array="A",
                disp=-1,
                iv=__import__(
                    "repro.backend.lir", fromlist=["IVInfo"]
                ).IVInfo(iv="i", coeff=1, offset=-1),
            ),
        ]
        edges, precise = build_loop_dependences(instrs, 1, machine)
        assert precise
        assert any(e.distance == 1 for e in edges)


class TestRunIMS:
    def _compiled(self, source, machine, ims=True):
        compiler = FinalCompiler(
            machine, "icc_O3" if ims else "gcc_O3"
        )
        return compiler.compile(source)

    def test_parallel_loop_gets_small_ii(self):
        src = (
            "float A[64], B[64];"
            "for (i = 0; i < 64; i++) A[i] = B[i] * 2.0 + 1.0;"
        )
        compiled = self._compiled(src, itanium2())
        assert compiled.ims_applied
        report = next(r for r in compiled.ims_reports if r.success)
        body = compiled.module.blocks[report.loop]
        assert body.ims_ii < body.schedule_length

    def test_big_loop_skipped(self):
        machine = itanium2()
        stmts = "".join(
            f"A[i] = A[i] + {k}.0;\n" for k in range(30)
        )
        src = f"float A[64]; for (i = 0; i < 64; i++) {{ {stmts} }}"
        compiled = self._compiled(src, machine)
        skipped = [r for r in compiled.ims_reports if not r.attempted]
        assert any("too large" in r.reason for r in skipped)

    def test_ims_respects_recurrence(self):
        src = (
            "float A[64]; s = 0.0;"
            "for (i = 0; i < 64; i++) s = s + A[i];"
        )
        compiled = self._compiled(src, itanium2())
        for r in compiled.ims_reports:
            if r.success:
                assert r.ii >= r.rec_mii

    def test_ims_execution_still_correct(self):
        src = """
        float A[64], B[64];
        for (i = 0; i < 64; i++) B[i] = i * 0.5;
        for (i = 0; i < 64; i++) A[i] = B[i] * 2.0 + 1.0;
        """
        expected = run_program(parse_program(src))
        compiled = self._compiled(src, itanium2())
        assert state_equal(expected, run_module(compiled.module))
