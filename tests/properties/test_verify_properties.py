"""Verification-layer properties.

* The schedule validator accepts every ``applied=True`` result the
  pipeline produces — on the whole benchmark corpus and on randomly
  generated canonical loops (the validator re-derives the dependence
  graph and replays the iteration space independently, so agreement is
  a real cross-check, not a tautology);
* the semantic checker reports no errors on any corpus workload.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions
from repro.lang.parser import parse_program
from repro.verify import check_program
from repro.workloads import all_workloads

SIZE = 96
ARRAYS = ["A", "B", "C"]
SCALARS = ["s", "t", "u"]


def _errors(diags):
    return [d for d in diags if d.severity == "error"]


# ---------------------------------------------------------------------------
# Corpus-wide guarantees
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda w: w.name
)
def test_validator_accepts_corpus_results(workload):
    outcome = slms(
        workload.full_source(), SLMSOptions(verify=True)
    )
    for report in outcome.loops:
        assert not _errors(report.diagnostics), (
            f"{workload.name}: validator rejected an applied schedule: "
            + "; ".join(d.format() for d in _errors(report.diagnostics))
        )


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda w: w.name
)
def test_semantic_checker_clean_on_corpus(workload):
    diags = check_program(parse_program(workload.full_source()))
    assert not _errors(diags), (
        f"{workload.name}: " + "; ".join(d.format() for d in _errors(diags))
    )


def test_forced_expansions_still_validate():
    """Even with the filter off and each expansion strategy forced, no
    applied result may fail validation."""
    option_sets = [
        SLMSOptions(verify=True, enable_filter=False, expansion="auto"),
        SLMSOptions(verify=True, enable_filter=False, expansion="scalar"),
        SLMSOptions(verify=True, enable_filter=False, expansion="none"),
    ]
    checked = 0
    for workload in all_workloads():
        for options in option_sets:
            outcome = slms(workload.full_source(), options)
            for report in outcome.loops:
                if report.applied:
                    checked += 1
                    assert not _errors(report.diagnostics), (
                        f"{workload.name} ({options.expansion}): "
                        + "; ".join(
                            d.format()
                            for d in _errors(report.diagnostics)
                        )
                    )
    assert checked > 50  # the sweep must actually exercise the validator


# ---------------------------------------------------------------------------
# Random canonical loops
# ---------------------------------------------------------------------------


@st.composite
def small_exprs(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 3))
    if choice == 0:
        off = draw(st.integers(-2, 2))
        idx = f"i + {off}".replace("+ -", "- ") if off else "i"
        return f"{draw(st.sampled_from(ARRAYS))}[{idx}]"
    if choice == 1:
        return draw(st.sampled_from(SCALARS))
    if choice == 2:
        return str(draw(st.integers(1, 4)))
    if choice == 3:
        return f"{draw(st.integers(1, 9))}.5"
    op = draw(st.sampled_from(["+", "-", "*"]))
    return (
        f"({draw(small_exprs(depth=depth + 1))} {op} "
        f"{draw(small_exprs(depth=depth + 1))})"
    )


@st.composite
def verify_loops(draw):
    n_stmts = draw(st.integers(1, 3))
    body = []
    for _ in range(n_stmts):
        if draw(st.booleans()):
            arr = draw(st.sampled_from(ARRAYS))
            off = draw(st.integers(-2, 2))
            idx = f"i + {off}".replace("+ -", "- ") if off else "i"
            body.append(f"{arr}[{idx}] = {draw(small_exprs())};")
        else:
            body.append(
                f"{draw(st.sampled_from(SCALARS))} = {draw(small_exprs())};"
            )
    lo = draw(st.integers(2, 4))
    hi = draw(st.integers(lo + 2, SIZE - 4))
    step = draw(st.sampled_from([1, 1, 2]))
    decls = (
        f"float A[{SIZE}], B[{SIZE}], C[{SIZE}];\n"
        "float s = 0.5, t = 1.5, u = 0.0;\n"
    )
    newline = "\n"
    return (
        decls
        + f"for (i = {lo}; i < {hi}; i += {step}) {{\n"
        + newline.join(body)
        + "\n}"
    )


@settings(max_examples=60, deadline=None)
@given(verify_loops())
def test_validator_accepts_random_applied_results(source):
    outcome = slms(source, SLMSOptions(verify=True, enable_filter=False))
    for report in outcome.loops:
        if report.applied:
            assert not _errors(report.diagnostics), (
                "validator rejected a pipeline result:\n"
                + source
                + "\n"
                + "; ".join(d.format() for d in _errors(report.diagnostics))
            )


@settings(max_examples=40, deadline=None)
@given(verify_loops())
def test_semantic_checker_no_errors_on_generated_loops(source):
    """Generated loops stay within declared bounds and initialize every
    scalar, so the checker must stay quiet about errors."""
    diags = check_program(parse_program(source))
    assert not _errors(diags), "; ".join(
        d.format() for d in _errors(diags)
    )
