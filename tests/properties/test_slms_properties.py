"""Property-based tests: SLMS preserves semantics on random affine loops.

A constrained grammar generates loops over float arrays with affine
subscripts, loop-carried recurrences, scalar temporaries, accumulators
and predicated statements.  For every generated program SLMS must either
decline (identity) or produce a program with bit-identical final memory
and original scalar values.
"""

from hypothesis import given, settings, strategies as st

from repro import SLMSOptions, slms
from repro.lang import parse_program, to_source
from repro.sim.interp import run_program, state_equal

ARRAYS = ["A", "B", "C"]
SCALARS = ["t", "u", "s"]
SIZE = 48
LO, HI = 4, 40  # offsets stay within [-3, +3]


@st.composite
def exprs(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 3))
    if choice == 0:
        return f"{draw(st.sampled_from(ARRAYS))}[i + {draw(st.integers(-3, 3))}]".replace(
            "+ -", "- "
        )
    if choice == 1:
        return draw(st.sampled_from(SCALARS))
    if choice == 2:
        return str(draw(st.integers(1, 4)))
    if choice == 3:
        return f"{draw(st.integers(1, 9))}.5"
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(exprs(depth=depth + 1))
    right = draw(exprs(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        arr = draw(st.sampled_from(ARRAYS))
        off = draw(st.integers(-3, 3))
        idx = f"i + {off}".replace("+ -", "- ") if off else "i"
        return f"{arr}[{idx}] = {draw(exprs())};"
    if kind == 1:
        return f"{draw(st.sampled_from(SCALARS))} = {draw(exprs())};"
    if kind == 2:
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        return f"{draw(st.sampled_from(SCALARS))} {op} {draw(exprs())};"
    cond = f"{draw(exprs(depth=2))} < {draw(exprs(depth=2))}"
    return f"if ({cond}) {draw(statements())}"


@st.composite
def loop_programs(draw):
    n_stmts = draw(st.integers(1, 4))
    body = "\n".join(draw(statements()) for _ in range(n_stmts))
    lo = draw(st.integers(LO, LO + 2))
    hi = draw(st.integers(lo + 1, HI))
    step = draw(st.sampled_from([1, 1, 1, 2]))
    decls = (
        f"float A[{SIZE}], B[{SIZE}], C[{SIZE}];\n"
        "float t = 0.5, u = 1.5, s = 0.0;\n"
    )
    init = (
        f"for (i = 0; i < {SIZE}; i++) "
        "{ A[i] = i * 0.5; B[i] = 7.0 - i; C[i] = i * i * 0.125; }\n"
    )
    loop = f"for (i = {lo}; i < {hi}; i += {step}) {{\n{body}\n}}"
    return decls + init + loop


def _check_one(source, options):
    original = parse_program(source)
    outcome = slms(original, options)
    base = run_program(original)
    transformed = run_program(outcome.program)
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= {k for k in transformed if k.endswith("Arr") and k not in base}
    assert state_equal(base, transformed, ignore=ignore), (
        f"semantics changed:\n{source}\n--- transformed:\n"
        f"{to_source(outcome.program)}"
    )
    # The transformed program must also be printable and reparseable.
    reparsed = parse_program(to_source(outcome.program))
    again = run_program(reparsed)
    assert state_equal(transformed, again)


@settings(max_examples=120, deadline=None)
@given(loop_programs())
def test_slms_auto_preserves_semantics(source):
    _check_one(source, SLMSOptions(enable_filter=False))


@settings(max_examples=60, deadline=None)
@given(loop_programs())
def test_slms_scalar_expansion_preserves_semantics(source):
    _check_one(source, SLMSOptions(enable_filter=False, expansion="scalar"))


@settings(max_examples=60, deadline=None)
@given(loop_programs())
def test_slms_plain_schedule_preserves_semantics(source):
    _check_one(source, SLMSOptions(enable_filter=False, expansion="none"))


@settings(max_examples=40, deadline=None)
@given(loop_programs(), st.integers(0, 6))
def test_slms_symbolic_bound_guard(source, n_extra):
    # Replace the literal upper bound with a runtime variable to force
    # the guard path, then check several trip counts including 0.
    lines = source.rsplit("for (i = ", 1)
    header, rest = lines[0], lines[1]
    loop_lo = rest.split(";")[0]
    body_part = rest.split("{", 1)[1]
    step_part = rest.split("i += ")[1].split(")")[0]
    symbolic = (
        header
        + f"for (i = {loop_lo}; i < nn; i += {step_part}) {{"
        + body_part
    )
    original = parse_program(symbolic)
    outcome = slms(original, SLMSOptions(enable_filter=False))
    for nn in {0, int(loop_lo) + n_extra, 40}:
        base = run_program(original, env={"nn": nn})
        transformed = run_program(outcome.program, env={"nn": nn})
        ignore = {n for r in outcome.loops for n in r.new_scalars}
        ignore |= {k for k in transformed if k.endswith("Arr") and k not in base}
        assert state_equal(base, transformed, ignore=ignore), (
            f"nn={nn}\n{symbolic}"
        )


@settings(max_examples=40, deadline=None)
@given(loop_programs())
def test_decline_returns_identical_program(source):
    original = parse_program(source)
    outcome = slms(original, SLMSOptions())  # filter enabled: many declines
    declined = [r for r in outcome.loops if not r.applied]
    if len(declined) == len(outcome.loops):
        # Nothing applied: the output must equal the input textually.
        assert to_source(outcome.program) == to_source(original)
