"""Property tests: classical loop transformations preserve semantics.

Unrolling, distribution, peeling and strip-mining are applied to
randomly generated affine loops (the transformations either succeed or
decline with :class:`TransformError`; success must be bit-exact).
"""

from hypothesis import given, settings, strategies as st

from repro.lang import parse_program, parse_stmt
from repro.sim.interp import run_program, state_equal
from repro.transforms import (
    TransformError,
    distribute,
    peel,
    reverse,
    strip_mine,
    unroll,
)

ARRAYS = ["A", "B", "C"]
SIZE = 48


@st.composite
def loop_sources(draw):
    """A random canonical loop over pre-initialized arrays."""
    n_stmts = draw(st.integers(1, 3))
    stmts = []
    for _ in range(n_stmts):
        dst = draw(st.sampled_from(ARRAYS))
        dst_off = draw(st.integers(-2, 2))
        src1 = draw(st.sampled_from(ARRAYS))
        src1_off = draw(st.integers(-2, 2))
        src2 = draw(st.sampled_from(ARRAYS))
        src2_off = draw(st.integers(-2, 2))
        op = draw(st.sampled_from(["+", "-", "*"]))

        def idx(off):
            if off == 0:
                return "i"
            return f"i + {off}" if off > 0 else f"i - {-off}"

        stmts.append(
            f"{dst}[{idx(dst_off)}] = {src1}[{idx(src1_off)}] {op} "
            f"{src2}[{idx(src2_off)}] * 0.5;"
        )
    lo = draw(st.integers(3, 5))
    hi = draw(st.integers(lo + 1, SIZE - 4))
    step = draw(st.sampled_from([1, 1, 2]))
    body = "\n".join(stmts)
    return f"for (i = {lo}; i < {hi}; i += {step}) {{\n{body}\n}}"


SETUP = (
    f"float A[{SIZE}], B[{SIZE}], C[{SIZE}];\n"
    f"for (i = 0; i < {SIZE}; i++) "
    "{ A[i] = 0.5 * i + 1.0; B[i] = 9.0 - 0.25 * i; C[i] = 0.125 * i; }\n"
)


def check_transform(loop_src, transform, ignore=()):
    loop = parse_stmt(loop_src)
    try:
        replacement = transform(loop)
    except TransformError:
        return  # declining is always acceptable
    if not isinstance(replacement, list):
        replacement = [replacement]
    base = run_program(parse_program(SETUP + loop_src))
    prog = parse_program(SETUP)
    prog.body.extend(replacement)
    out = run_program(prog)
    assert state_equal(base, out, ignore=set(ignore)), loop_src


@settings(max_examples=80, deadline=None)
@given(loop_sources(), st.integers(2, 4))
def test_unroll_preserves_semantics(loop_src, factor):
    check_transform(loop_src, lambda lp: unroll(lp, factor))


@settings(max_examples=80, deadline=None)
@given(loop_sources())
def test_distribute_preserves_semantics(loop_src):
    check_transform(loop_src, distribute)


@settings(max_examples=60, deadline=None)
@given(loop_sources(), st.integers(1, 4),
       st.sampled_from(["front", "back"]))
def test_peel_preserves_semantics(loop_src, count, where):
    check_transform(loop_src, lambda lp: peel(lp, count, where))


@settings(max_examples=60, deadline=None)
@given(loop_sources(), st.integers(2, 8))
def test_strip_mine_preserves_semantics(loop_src, width):
    check_transform(loop_src, lambda lp: strip_mine(lp, width), ignore={"is"})


@settings(max_examples=60, deadline=None)
@given(loop_sources())
def test_reverse_preserves_semantics(loop_src):
    # reverse() must either decline (loop-carried dep) or be exact;
    # the loop variable's final value legitimately differs.
    check_transform(loop_src, reverse, ignore={"i"})


@settings(max_examples=40, deadline=None)
@given(loop_sources(), st.integers(2, 3))
def test_unroll_then_slms(loop_src, factor):
    """Composition: unroll, then SLMS the unrolled main loop."""
    from repro import SLMSOptions, slms

    loop = parse_stmt(loop_src)
    try:
        replacement = unroll(loop, factor)
    except TransformError:
        return
    prog = parse_program(SETUP)
    prog.body.extend(replacement)
    outcome = slms(prog, SLMSOptions(enable_filter=False))
    base = run_program(parse_program(SETUP + loop_src))
    out = run_program(outcome.program)
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= {k for k in out if k.endswith("Arr") and k not in base}
    assert state_equal(base, out, ignore=ignore), loop_src
