"""Property tests for the scheduler backends (docs/SCHEDULERS.md).

* every schedule the exact backend returns satisfies every DDG edge
  constraint ``d·II + (σ(dst) − σ(src)) ≥ need`` and is a true
  permutation;
* refine never exceeds the heuristic's II, and budget-exhausted
  results are never claimed optimal;
* the source-level resMII behaves like a resource floor: on a machine
  wide enough to issue a whole MI row per cycle it never exceeds the
  achieved II on any corpus loop, it is monotone in machine width —
  and on the *narrow* presets it routinely exceeds the achieved II
  (pinned at 61 of 84 itanium2 loops), which is the paper's §7
  resource-blindness made measurable: SLMS schedules rows, not cycles,
  so a row may carry more operations than the machine can issue in II
  cycles and the final compiler absorbs the difference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ddg import Dependence, DependenceGraph
from repro.analysis.delays import edge_delay
from repro.core.mii import find_valid_ii
from repro.core.schedulers import ExactScheduler, edge_min_slack
from repro.core.schedulers.compare import compare_schedulers
from repro.machines.model import MachineModel, res_mii_for_counts


@st.composite
def dependence_graphs(draw):
    n = draw(st.integers(1, 6))
    graph = DependenceGraph(n=n)
    n_edges = draw(st.integers(1, 10))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        # Keep the DDG invariant: distance-0 edges go forward only;
        # self/backward edges carry distance >= 1.
        if dst > src:
            distance = draw(st.integers(0, 3))
        else:
            distance = draw(st.integers(1, 3))
        kind = draw(st.sampled_from(["flow", "anti", "output"]))
        graph.add(
            Dependence(
                kind=kind, src=src, dst=dst, var="v",
                distance=distance, delay=edge_delay(src, dst),
            )
        )
    return graph


def _check_schedule(graph, sched):
    assert sorted(sched.order) == list(range(graph.n))
    sigma = {v: r for r, v in enumerate(sched.order)}
    for edge in graph.edges:
        slack = edge.distance * sched.ii + (
            sigma[edge.dst] - sigma[edge.src]
        )
        assert slack >= edge_min_slack(edge.kind), (
            f"edge {edge.kind} {edge.src}->{edge.dst} d={edge.distance} "
            f"violated at II={sched.ii} order={sched.order}"
        )


@settings(max_examples=150, deadline=None)
@given(dependence_graphs())
def test_exact_schedules_respect_every_edge(graph):
    sched = ExactScheduler().find_schedule(graph, graph.n)
    if sched is None:
        # No II below n is feasible for any placement; in particular
        # the identity search must agree that nothing is valid.
        assert find_valid_ii(graph, graph.n) is None
        return
    assert 1 <= sched.ii < max(graph.n, 2)
    _check_schedule(graph, sched)


@settings(max_examples=150, deadline=None)
@given(dependence_graphs())
def test_refine_never_exceeds_heuristic_ii(graph):
    heuristic_ii = find_valid_ii(graph, graph.n)
    if heuristic_ii is None:
        return
    sched = ExactScheduler().refine(graph, heuristic_ii)
    assert sched.ii <= heuristic_ii
    _check_schedule(graph, sched)
    # Optimality claims and budget exhaustion are mutually exclusive.
    assert not (sched.proven_optimal and sched.exhausted)


@settings(max_examples=150, deadline=None)
@given(dependence_graphs())
def test_budget_exhaustion_is_never_reported_optimal(graph):
    heuristic_ii = find_valid_ii(graph, graph.n)
    if heuristic_ii is None:
        return
    sched = ExactScheduler(budget_nodes=1).refine(graph, heuristic_ii)
    assert sched.ii <= heuristic_ii
    _check_schedule(graph, sched)
    if sched.exhausted:
        assert not sched.proven_optimal


@st.composite
def census_and_machines(draw):
    counts = {
        cls: draw(st.integers(0, 30))
        for cls in ("alu", "fadd", "fmul", "div", "mem")
    }

    def machine(scale):
        return MachineModel(
            name=f"w{scale}",
            issue_width=2 * scale,
            units={
                "alu": scale, "fadd": scale, "fmul": scale,
                "div": scale, "mem": scale,
            },
            latencies={},
            num_registers=32,
        )

    narrow = draw(st.integers(1, 4))
    wider = narrow + draw(st.integers(1, 4))
    return counts, machine(narrow), machine(wider)


@settings(max_examples=150, deadline=None)
@given(census_and_machines())
def test_res_mii_monotone_in_machine_width(args):
    counts, narrow, wide = args
    assert res_mii_for_counts(wide, counts) <= res_mii_for_counts(
        narrow, counts
    )
    assert res_mii_for_counts(narrow, counts) >= 1


# A VLIW wide enough to issue any corpus MI row in one cycle (the peak
# per-row census over the corpus is mem 24, fadd 21, fmul 9, total 54).
ROW_WIDE = MachineModel(
    name="row-wide",
    issue_width=64,
    units={"alu": 32, "fadd": 32, "fmul": 32, "div": 8, "mem": 32},
    latencies={},
    num_registers=128,
)

# How many itanium2 corpus loops achieve an II *below* the machine's
# resource floor — the measurable form of §7's "SLMS ignores hardware
# resources".  A change here means the census, the corpus, or the
# scheduler moved.
ITANIUM2_RESOURCE_BLIND_LOOPS = 61
CORPUS_SCHEDULED_LOOPS = 84


@pytest.fixture(scope="module")
def itanium2_report():
    return compare_schedulers(machine="itanium2")


def test_res_mii_bounds_achieved_ii_on_row_wide_machine(itanium2_report):
    from repro.core.schedulers import op_class_counts, resource_mii
    from repro.core.pipeline import slms
    from repro.core.slms import SLMSOptions
    from repro.workloads.corpus import all_workloads

    checked = 0
    for workload in all_workloads():
        outcome = slms(workload.full_source(), SLMSOptions())
        for result in outcome.loops:
            if not result.applied:
                continue
            floor = resource_mii(result.final_mis, ROW_WIDE)
            assert floor <= result.ii, (
                f"{workload.name}: resMII {floor} > II {result.ii} on a "
                f"row-wide machine (census "
                f"{op_class_counts(result.final_mis)})"
            )
            checked += 1
    assert checked == CORPUS_SCHEDULED_LOOPS


def test_narrow_machine_floor_violations_are_pinned(itanium2_report):
    rows = [r for r in itanium2_report.rows if r.gap is not None]
    assert len(rows) == CORPUS_SCHEDULED_LOOPS
    violations = [r for r in rows if r.res_mii > r.exact_ii]
    assert len(violations) == ITANIUM2_RESOURCE_BLIND_LOOPS
    # The floor is informational: every one of these loops still passed
    # validation and proved its (resource-blind) II optimal.
    assert all(r.proven for r in violations)
