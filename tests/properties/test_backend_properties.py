"""Property tests: the final compiler preserves semantics at every
preset and machine, and schedules respect their dependence constraints.
"""

from hypothesis import given, settings, strategies as st

from repro.backend.codegen import compile_to_lir
from repro.backend.compiler import COMPILER_PRESETS, FinalCompiler
from repro.backend.listsched import build_dependences, schedule_block
from repro.lang import parse_program
from repro.machines import arm7tdmi, itanium2, pentium, power4
from repro.sim.executor import execute
from repro.sim.interp import run_program, state_equal
from repro.sim.lir_interp import run_module

MACHINES = [itanium2, pentium, power4, arm7tdmi]
SIZE = 32


@st.composite
def programs(draw):
    """Random straight-line + loop + branch programs."""
    lines = [
        f"float A[{SIZE}], B[{SIZE}];",
        "float s = 0.0, t = 1.5, u = 0.25;",
        f"for (i = 0; i < {SIZE}; i++) "
        "{ A[i] = 0.5 * i + 1.0; B[i] = 8.0 - 0.25 * i; }",
    ]
    n_stmts = draw(st.integers(1, 5))
    for _ in range(n_stmts):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            off = draw(st.integers(0, 3))
            lines.append(
                f"for (i = 0; i < {SIZE - 4}; i++) "
                f"A[i] = A[i + {off}] * u + B[i];"
            )
        elif kind == 1:
            lines.append(
                f"s = s + t * {draw(st.integers(1, 5))}.5 - u;"
            )
        elif kind == 2:
            cmp_rhs = draw(st.integers(0, 9))
            lines.append(
                f"if (s > {cmp_rhs}.0) {{ t = t + 1.0; }} "
                "else { u = u + 0.5; }"
            )
        else:
            lines.append(
                f"for (i = 1; i < {SIZE - 2}; i++) "
                "{ B[i] = B[i-1] * 0.5 + A[i]; s = s + B[i]; }"
            )
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(programs(), st.sampled_from(sorted(COMPILER_PRESETS)))
def test_compiler_presets_preserve_semantics(source, preset):
    prog = parse_program(source)
    expected = run_program(prog)
    for machine_factory in MACHINES:
        machine = machine_factory()
        compiled = FinalCompiler(machine, preset).compile(prog)
        result = execute(compiled.module, machine)
        assert state_equal(expected, result.state), (
            f"{preset} on {machine.name}:\n{source}"
        )


@settings(max_examples=30, deadline=None)
@given(programs())
def test_optimization_never_slower_than_O0(source):
    """The -O0 model is an upper bound on the scheduled cycle count."""
    prog = parse_program(source)
    for machine_factory in (itanium2, arm7tdmi):
        machine = machine_factory()
        o0 = FinalCompiler(machine, "gcc_O0").compile(prog)
        o3 = FinalCompiler(machine, "gcc_O3").compile(prog)
        c0 = execute(o0.module, machine).metrics.cycles
        c3 = execute(o3.module, machine).metrics.cycles
        assert c3 <= c0, f"{machine.name}:\n{source}"


@settings(max_examples=40, deadline=None)
@given(programs())
def test_schedule_respects_dependences(source):
    """Every dependence edge's latency holds in the emitted schedule."""
    machine = itanium2()
    module = compile_to_lir(parse_program(source))
    for name in module.order:
        block = module.blocks[name]
        schedule_block(block, machine)
        position = {}
        for cycle, ops in enumerate(block.schedule or []):
            for op in ops:
                position[op] = cycle
        for edge in build_dependences(block.instrs):
            src_cycle = position[edge.src]
            dst_cycle = position[edge.dst]
            if edge.latency == 0:
                assert dst_cycle >= src_cycle
            else:
                assert dst_cycle >= src_cycle + edge.latency, (
                    f"{block.instrs[edge.src]} -> {block.instrs[edge.dst]}"
                )


@settings(max_examples=40, deadline=None)
@given(programs())
def test_schedule_respects_resources(source):
    """No cycle exceeds issue width or per-class unit counts."""
    machine = pentium()
    module = compile_to_lir(parse_program(source))
    for name in module.order:
        block = module.blocks[name]
        schedule_block(block, machine)
        for ops in block.schedule or []:
            assert len(ops) <= machine.issue_width
            by_class = {}
            for op in ops:
                cls = block.instrs[op].op_class()
                by_class[cls] = by_class.get(cls, 0) + 1
            for cls, count in by_class.items():
                assert count <= machine.unit_count(cls)


@settings(max_examples=30, deadline=None)
@given(programs(), st.integers(6, 32))
def test_regalloc_any_register_count(source, num_registers):
    from repro.backend.regalloc import allocate

    prog = parse_program(source)
    expected = run_program(prog)
    module = compile_to_lir(prog)
    allocate(module, num_registers)
    assert state_equal(expected, run_module(module)), (
        f"K={num_registers}:\n{source}"
    )
