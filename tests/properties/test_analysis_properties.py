"""Property tests for the analysis layer.

* Fourier–Motzkin verdicts cross-checked against brute-force integer
  search over a bounded box;
* the difMin iterative-shortest-path PMII agrees with cycle-ratio
  enumeration on random dependence graphs;
* dependence-test soundness: a reported "no dependence" means the
  subscripts really never collide over the iteration space.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.analysis.affine import AffineExpr
from repro.analysis.ddg import Dependence, DependenceGraph
from repro.analysis.delays import edge_delay
from repro.analysis.deptests import test_dependence as dep_test
from repro.analysis.fourier_motzkin import (
    FEASIBLE,
    INFEASIBLE,
    IntegerSystem,
    is_feasible,
)
from repro.core.mii import difmin_feasible, pmii_cycle_ratio, pmii_difmin

BOX = 7  # brute-force search box: [-BOX, BOX] per variable


@st.composite
def small_systems(draw):
    """2-3 variable systems with box bounds (so brute force is complete)."""
    n_vars = draw(st.integers(1, 3))
    variables = [f"x{k}" for k in range(n_vars)]
    system = IntegerSystem()
    # Box constraints make FEASIBLE/INFEASIBLE decidable by enumeration.
    for var in variables:
        system.add_ge({var: 1}, BOX)  # x >= -BOX
        system.add_ge({var: -1}, BOX)  # x <= BOX
    n_cons = draw(st.integers(1, 3))
    raw = []
    for _ in range(n_cons):
        coeffs = {
            var: draw(st.integers(-3, 3)) for var in variables
        }
        const = draw(st.integers(-6, 6))
        is_eq = draw(st.booleans())
        raw.append((coeffs, const, is_eq))
        if is_eq:
            system.add_eq(coeffs, const)
        else:
            system.add_ge(coeffs, const)
    return system, variables, raw


def brute_force(variables, raw):
    for point in itertools.product(range(-BOX, BOX + 1), repeat=len(variables)):
        env = dict(zip(variables, point))
        ok = True
        for coeffs, const, is_eq in raw:
            value = sum(coeffs.get(v, 0) * env[v] for v in variables) + const
            if is_eq and value != 0:
                ok = False
                break
            if not is_eq and value < 0:
                ok = False
                break
        if ok:
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(small_systems())
def test_fourier_motzkin_sound(sys_vars_raw):
    system, variables, raw = sys_vars_raw
    verdict = is_feasible(system)
    truth = brute_force(variables, raw)
    if verdict == FEASIBLE:
        assert truth, "claimed feasible but no integer point exists"
    elif verdict == INFEASIBLE:
        assert not truth, "claimed infeasible but an integer point exists"
    # MAYBE makes no claim.


@st.composite
def dependence_graphs(draw):
    n = draw(st.integers(1, 6))
    graph = DependenceGraph(n=n)
    n_edges = draw(st.integers(1, 10))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        # Keep the DDG invariant: distance-0 edges go forward only;
        # self/backward edges carry distance >= 1.
        if dst > src:
            distance = draw(st.integers(0, 3))
        else:
            distance = draw(st.integers(1, 3))
        kind = draw(st.sampled_from(["flow", "anti", "output"]))
        graph.add(
            Dependence(
                kind=kind, src=src, dst=dst, var="v",
                distance=distance, delay=edge_delay(src, dst),
            )
        )
    return graph


@settings(max_examples=120, deadline=None)
@given(dependence_graphs())
def test_difmin_matches_cycle_ratio(graph):
    ratio = pmii_cycle_ratio(graph)
    difmin = pmii_difmin(graph)
    expected = ratio if ratio is not None else 1
    assert difmin == expected


@settings(max_examples=120, deadline=None)
@given(dependence_graphs(), st.integers(1, 8))
def test_difmin_monotone(graph, ii):
    if difmin_feasible(graph, ii):
        assert difmin_feasible(graph, ii + 1)


@st.composite
def subscript_pairs(draw):
    a1 = draw(st.integers(-3, 3))
    b1 = draw(st.integers(-6, 6))
    a2 = draw(st.integers(-3, 3))
    b2 = draw(st.integers(-6, 6))
    return AffineExpr(a1, b1), AffineExpr(a2, b2)


@settings(max_examples=200, deadline=None)
@given(subscript_pairs(), st.integers(0, 4), st.integers(5, 25))
def test_dependence_no_means_no(pair, lo, span):
    """Soundness: 'independent' must survive exhaustive checking."""
    s1, s2 = pair
    hi = lo + span
    result = dep_test((s1,), (s2,), lo=lo, hi=hi, step=1)
    values1 = {s1.coeff * i + s1.offset: i for i in range(lo, hi)}
    conflict = None
    for i2 in range(lo, hi):
        address = s2.coeff * i2 + s2.offset
        if address in values1:
            conflict = (values1[address], i2)
            break
    if not result.exists:
        assert conflict is None, (s1, s2, conflict)
    if result.is_constant and conflict is not None:
        # The reported constant distance must describe every collision.
        i1, i2 = conflict
        assert i2 - i1 == result.distance


@settings(max_examples=100, deadline=None)
@given(subscript_pairs(), st.integers(2, 3))
def test_dependence_respects_step(pair, step):
    s1, s2 = pair
    result = dep_test((s1,), (s2,), step=step)
    if result.is_constant:
        # A constant distance d means subscripts match when iterations
        # differ by exactly d (in step units).
        d = result.distance
        i1 = 10 * step
        i2 = i1 + d * step
        assert s1.coeff * i1 + s1.offset == s2.coeff * i2 + s2.offset
