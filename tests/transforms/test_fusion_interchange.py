"""Unit tests for fusion, interchange, distribution, reversal, peel, tiling."""

import pytest

from repro.lang import parse_program, parse_stmt, to_source
from repro.lang.ast_nodes import For
from repro.sim.interp import run_program, state_equal
from repro.transforms import (
    TransformError,
    can_fuse,
    distribute,
    fuse,
    interchange,
    peel,
    reverse,
    strip_mine,
    tile,
)

INIT = (
    "float A[40], B[40], C[40], X[12][12], Y[12][12];\n"
    "float t = 0.0, q = 0.0;\n"
    "for (i = 0; i < 40; i++) { A[i] = i * 0.5 + 1.0; B[i] = 40 - i; }\n"
    "for (i = 0; i < 12; i++) { for (j = 0; j < 12; j++) "
    "{ X[i][j] = i * 12 + j; } }\n"
)


def run_with(stmts_src_or_list, env=None):
    prog = parse_program(INIT)
    if isinstance(stmts_src_or_list, str):
        prog.body.extend(parse_program(stmts_src_or_list).body)
    else:
        prog.body.extend(stmts_src_or_list)
    return run_program(prog, env=env)


class TestFusion:
    def test_paper_fusable_pair(self):
        # §6: two loops with identical recurrences fuse into one.
        l1 = parse_stmt(
            "for (i = 1; i < 30; i++) { t = A[i-1]; B[i] = B[i] + t; A[i] = t + B[i]; }"
        )
        l2 = parse_stmt(
            "for (i = 1; i < 30; i++) { q = C[i-1]; B[i] = B[i] + q; C[i] = q * B[i]; }"
        )
        ok, reason = can_fuse(l1, l2)
        assert ok, reason
        fused = fuse(l1, l2)
        base = run_with(to_source(l1) + "\n" + to_source(l2))
        out = run_with([fused])
        assert state_equal(base, out)
        assert len(fused.body) == 6

    def test_negative_distance_blocks_fusion(self):
        # L2 reads A[i+1]: fused iteration i would read before L1 writes it.
        l1 = parse_stmt("for (i = 0; i < 30; i++) { A[i] = B[i] * 2.0; }")
        l2 = parse_stmt("for (i = 0; i < 30; i++) { C[i] = A[i+1]; }")
        ok, reason = can_fuse(l1, l2)
        assert not ok
        assert "fusion-preventing" in reason
        with pytest.raises(TransformError):
            fuse(l1, l2)

    def test_forward_distance_allows_fusion(self):
        l1 = parse_stmt("for (i = 1; i < 30; i++) { A[i] = B[i] * 2.0; }")
        l2 = parse_stmt("for (i = 1; i < 30; i++) { C[i] = A[i-1]; }")
        ok, reason = can_fuse(l1, l2)
        assert ok, reason
        fused = fuse(l1, l2)
        base = run_with(to_source(l1) + "\n" + to_source(l2))
        assert state_equal(base, run_with([fused]))

    def test_different_variable_names_renamed(self):
        l1 = parse_stmt("for (i = 0; i < 30; i++) { A[i] = A[i] + 1.0; }")
        l2 = parse_stmt("for (k = 0; k < 30; k++) { B[k] = B[k] * 2.0; }")
        fused = fuse(l1, l2)
        base = run_with(to_source(l1) + "\n" + to_source(l2))
        out = run_with([fused])
        # k is never assigned in the fused version.
        assert state_equal(base, out, ignore={"k"})

    def test_header_mismatch(self):
        l1 = parse_stmt("for (i = 0; i < 30; i++) { A[i] = 1.0; }")
        l2 = parse_stmt("for (i = 0; i < 20; i++) { B[i] = 1.0; }")
        assert not can_fuse(l1, l2)[0]

    def test_scalar_coupling_blocks(self):
        l1 = parse_stmt("for (i = 0; i < 30; i++) { t = A[i]; B[i] = t; }")
        l2 = parse_stmt("for (i = 0; i < 30; i++) { C[i] = t; }")
        ok, reason = can_fuse(l1, l2)
        assert not ok
        assert "scalar" in reason


class TestInterchange:
    def test_paper_interchange_example(self):
        # §6: for j { for i { t = a[i,j]; a[i,j+1] = t; } }
        nest = parse_stmt(
            "for (j = 0; j < 11; j++) { for (i = 0; i < 12; i++) "
            "{ t = X[i][j]; X[i][j+1] = t; } }"
        )
        swapped = interchange(nest)
        assert isinstance(swapped, For)
        assert to_source(swapped.init) == "i = 0;"
        base = run_with([nest.clone()])
        out = run_with([swapped])
        assert state_equal(base, out)

    def test_independent_nest_interchanges(self):
        nest = parse_stmt(
            "for (j = 0; j < 12; j++) { for (i = 0; i < 12; i++) "
            "{ Y[j][i] = X[j][i] * 2.0; } }"
        )
        swapped = interchange(nest)
        base = run_with([nest.clone()])
        assert state_equal(base, run_with([swapped]))

    def test_plus_minus_vector_blocks(self):
        # X[j][i] = X[j-1][i+1]: dependence vector (1, -1).
        nest = parse_stmt(
            "for (j = 1; j < 12; j++) { for (i = 0; i < 11; i++) "
            "{ X[j][i] = X[j-1][i+1] + 1.0; } }"
        )
        with pytest.raises(TransformError):
            interchange(nest)

    def test_plus_plus_vector_allows(self):
        nest = parse_stmt(
            "for (j = 1; j < 12; j++) { for (i = 1; i < 12; i++) "
            "{ X[j][i] = X[j-1][i-1] + 1.0; } }"
        )
        swapped = interchange(nest)
        base = run_with([nest.clone()])
        assert state_equal(base, run_with([swapped]))

    def test_imperfect_nest_rejected(self):
        nest = parse_stmt(
            "for (j = 0; j < 12; j++) { t = 0.0; for (i = 0; i < 12; i++) "
            "{ X[j][i] = t; } }"
        )
        with pytest.raises(TransformError):
            interchange(nest)

    def test_non_rectangular_rejected(self):
        nest = parse_stmt(
            "for (j = 0; j < 12; j++) { for (i = 0; i < j; i++) "
            "{ X[j][i] = 1.0; } }"
        )
        with pytest.raises(TransformError):
            interchange(nest)

    def test_carried_scalar_rejected(self):
        nest = parse_stmt(
            "for (j = 0; j < 12; j++) { for (i = 0; i < 12; i++) "
            "{ t = t + X[j][i]; } }"
        )
        with pytest.raises(TransformError):
            interchange(nest)


class TestDistribution:
    def test_independent_statements_split(self):
        loop = parse_stmt(
            "for (i = 0; i < 30; i++) { A[i] = A[i] + 1.0; B[i] = B[i] * 2.0; }"
        )
        loops = distribute(loop)
        assert len(loops) == 2
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(list(loops)))

    def test_dependent_statements_ordered(self):
        loop = parse_stmt(
            "for (i = 0; i < 30; i++) { C[i] = B[i]; A[i] = C[i] + 1.0; }"
        )
        loops = distribute(loop)
        assert len(loops) == 2
        assert "C[i] = B[i];" in to_source(loops[0])
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(list(loops)))

    def test_cycle_stays_together(self):
        loop = parse_stmt(
            "for (i = 1; i < 30; i++) { A[i] = C[i-1]; C[i] = A[i-1] + 1.0; "
            "B[i] = 2.0; }"
        )
        loops = distribute(loop)
        sizes = sorted(len(lp.body) for lp in loops)
        assert sizes == [1, 2]
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(list(loops)))

    def test_loop_carried_anti_ordering(self):
        # B[i] = A[i+1] must run before A gets overwritten.
        loop = parse_stmt(
            "for (i = 0; i < 30; i++) { B[i] = A[i+1]; A[i] = 0.0; }"
        )
        loops = distribute(loop)
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(list(loops)))


class TestReversal:
    def test_independent_loop_reverses(self):
        loop = parse_stmt("for (i = 0; i < 30; i++) { A[i] = A[i] * 2.0; }")
        rev = reverse(loop)
        base = run_with([loop.clone()])
        out = run_with([rev])
        assert state_equal(base, out, ignore={"i"})

    def test_carried_dependence_blocks(self):
        loop = parse_stmt("for (i = 1; i < 30; i++) { A[i] = A[i-1]; }")
        with pytest.raises(TransformError):
            reverse(loop)

    def test_accumulator_blocks(self):
        loop = parse_stmt("for (i = 0; i < 30; i++) { t += A[i]; }")
        with pytest.raises(TransformError):
            reverse(loop)

    def test_symbolic_bound_step1(self):
        loop = parse_stmt("for (i = 0; i < n; i++) { A[i] = A[i] + 1.0; }")
        rev = reverse(loop)
        for n in (0, 1, 17):
            base = run_with([loop.clone()], env={"n": n})
            out = run_with([rev], env={"n": n})
            assert state_equal(base, out, ignore={"i"})


class TestPeel:
    def test_front_peel(self):
        loop = parse_stmt("for (i = 0; i < 10; i++) { A[i] = A[i] + 1.0; }")
        stmts = peel(loop, 2, "front")
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(stmts))
        assert to_source(stmts[0]) == "A[0] = A[0] + 1.0;"

    def test_back_peel(self):
        loop = parse_stmt("for (i = 0; i < 10; i++) { A[i] = A[i] + 1.0; }")
        stmts = peel(loop, 3, "back")
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(stmts))

    def test_peel_entire_loop(self):
        loop = parse_stmt("for (i = 0; i < 3; i++) { A[i] = 9.0; }")
        stmts = peel(loop, 5, "front")
        base = run_with([loop.clone()])
        assert state_equal(base, run_with(stmts))

    def test_recurrence_peeled(self):
        loop = parse_stmt("for (i = 1; i < 12; i++) { A[i] = A[i-1] + B[i]; }")
        for where in ("front", "back"):
            stmts = peel(loop, 2, where)
            base = run_with([loop.clone()])
            assert state_equal(base, run_with(stmts)), where

    def test_symbolic_bound_rejected(self):
        loop = parse_stmt("for (i = 0; i < n; i++) { A[i] = 1.0; }")
        with pytest.raises(TransformError):
            peel(loop, 1)


class TestTiling:
    def test_strip_mine_semantics(self):
        loop = parse_stmt("for (i = 0; i < 37; i++) { A[i] = A[i] + 1.0; }")
        stripped = strip_mine(loop, 8)
        base = run_with([loop.clone()])
        out = run_with([stripped])
        assert state_equal(base, out, ignore={"is"})

    def test_strip_mine_recurrence(self):
        loop = parse_stmt("for (i = 1; i < 30; i++) { A[i] = A[i-1] * 1.5; }")
        stripped = strip_mine(loop, 4)
        base = run_with([loop.clone()])
        assert state_equal(base, run_with([stripped]), ignore={"is"})

    def test_tile_semantics(self):
        nest = parse_stmt(
            "for (j = 0; j < 12; j++) { for (i = 0; i < 12; i++) "
            "{ Y[j][i] = X[j][i] + 1.0; } }"
        )
        tiled = tile(nest, 4)
        base = run_with([nest.clone()])
        out = run_with(tiled)
        assert state_equal(base, out, ignore={"is"})

    def test_tile_illegal_nest_rejected(self):
        nest = parse_stmt(
            "for (j = 1; j < 12; j++) { for (i = 0; i < 11; i++) "
            "{ X[j][i] = X[j-1][i+1]; } }"
        )
        with pytest.raises(TransformError):
            tile(nest, 4)


class TestTransformThenSLMS:
    def test_interchange_enables_slms(self):
        """§6: interchange turns a non-SLMSable inner loop into II=1."""
        from repro import SLMSOptions, slms

        # Paper orientation: inner loop over j carries the flow dep
        # t = a[i,j] -> a[i,j+1] into the next j iteration.
        source = (
            "for (i = 0; i < 12; i++) { for (j = 0; j < 11; j++) "
            "{ t = X[i][j]; X[i][j+1] = t; } }"
        )
        nest = parse_stmt(source)
        options = SLMSOptions(enable_filter=False)

        # Direct SLMS on the inner loop fails (flow dep through X).
        prog_before = parse_program(INIT + source)
        before = slms(prog_before, options)
        assert not before.loops[-1].applied

        # After interchange the inner loop pipelines.
        swapped = interchange(nest)
        prog = parse_program(INIT)
        prog.body.append(swapped)
        after = slms(prog, options)
        assert after.loops[-1].applied
        base = run_with([nest.clone()])
        out = run_program(after.program)
        ignore = {n for r in after.loops for n in r.new_scalars} | {"t"}
        assert state_equal(base, out, ignore=ignore)
