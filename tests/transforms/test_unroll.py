"""Unit tests for loop unrolling."""

import pytest

from repro.lang import parse_program, parse_stmt, to_source
from repro.lang.ast_nodes import For
from repro.sim.interp import run_program, state_equal
from repro.transforms import TransformError, unroll


INIT = "float A[40], B[40];\nfor (i = 0; i < 40; i++) { A[i] = i * 0.5; }\n"


def check(loop_src, factor, env=None):
    loop = parse_stmt(loop_src)
    replacement = unroll(loop, factor)
    base = run_program(parse_program(INIT + loop_src), env=env)
    prog = parse_program(INIT)
    prog.body.extend(replacement)
    out = run_program(prog, env=env)
    assert state_equal(base, out), f"factor={factor}: {loop_src}"
    return replacement


class TestSemantics:
    def test_exact_multiple(self):
        stmts = check("for (i = 0; i < 40; i++) { B[i] = A[i] + 1.0; }", 4)
        assert len(stmts) == 1  # no remainder loop

    def test_with_remainder(self):
        stmts = check("for (i = 0; i < 39; i++) { B[i] = A[i] + 1.0; }", 4)
        assert len(stmts) == 2

    def test_factor_two(self):
        check("for (i = 0; i < 37; i++) { B[i] = A[i] * 2.0; }", 2)

    def test_recurrence_unrolled_correctly(self):
        check("for (i = 1; i < 33; i++) { A[i] = A[i-1] + 1.0; }", 3)

    def test_symbolic_bound(self):
        loop_src = "for (i = 0; i < n; i++) { B[i] = A[i] + 1.0; }"
        loop = parse_stmt(loop_src)
        replacement = unroll(loop, 2)
        for n in (0, 1, 2, 7, 40):
            base = run_program(parse_program(INIT + loop_src), env={"n": n})
            prog = parse_program(INIT)
            prog.body.extend(replacement)
            out = run_program(prog, env={"n": n})
            assert state_equal(base, out), f"n={n}"

    def test_downward_loop(self):
        check("for (i = 39; i > 3; i--) { B[i] = A[i] - 1.0; }", 2)

    def test_step_two(self):
        check("for (i = 0; i < 40; i += 2) { B[i] = A[i]; }", 3)


class TestStructure:
    def test_body_copies_shifted(self):
        loop = parse_stmt("for (i = 0; i < 40; i++) { B[i] = A[i]; }")
        stmts = unroll(loop, 2)
        main = stmts[0]
        assert isinstance(main, For)
        texts = [to_source(s) for s in main.body]
        assert texts == ["B[i] = A[i];", "B[i + 1] = A[i + 1];"]
        assert to_source(main.step) == "i += 2;"

    def test_invalid_factor(self):
        loop = parse_stmt("for (i = 0; i < 40; i++) { B[i] = A[i]; }")
        with pytest.raises(TransformError):
            unroll(loop, 1)

    def test_non_canonical_rejected(self):
        loop = parse_stmt("for (i = 0; A[i] < 3.0; i++) { B[i] = 1.0; }")
        with pytest.raises(TransformError):
            unroll(loop, 2)
