"""Unit tests for the pretty-printer, including round-trip guarantees."""

import pytest

from repro.lang import (
    Assign,
    IntLit,
    ParGroup,
    Var,
    parse_expr,
    parse_program,
    parse_stmt,
    to_source,
)


class TestExpressionPrinting:
    @pytest.mark.parametrize(
        "source",
        [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a / b / c",
            "a % 2",
            "-x",
            "!done",
            "-x * y",
            "a < b && c >= d",
            "x == 0 || y != 1",
            "c ? a + 1 : b",
            "A[i]",
            "A[i + 1]",
            "A[2 * i + 1]",
            "X[k][j]",
            "f(a, b + 1)",
            "max(a, b)",
            "a + (b ? 1 : 0)",
        ],
    )
    def test_round_trip(self, source):
        expr = parse_expr(source)
        assert parse_expr(to_source(expr)) == expr

    def test_precedence_parentheses_emitted(self):
        assert to_source(parse_expr("(a + b) * c")) == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        assert to_source(parse_expr("a + b + c")) == "a + b + c"

    def test_right_assoc_parens_kept(self):
        assert to_source(parse_expr("a - (b - c)")) == "a - (b - c)"

    def test_float_formatting(self):
        assert to_source(parse_expr("2.0")) == "2.0"
        assert to_source(parse_expr("0.5")) == "0.5"

    def test_multidim_prints_bracket_pairs(self):
        assert to_source(parse_expr("X[k, j]")) == "X[k][j]"


class TestStatementPrinting:
    @pytest.mark.parametrize(
        "source",
        [
            "x = 1;",
            "s += A[i];",
            "A[i + 1] = t;",
            "f(x);",
            "if (c) {\n    x = 1;\n}",
            "for (i = 0; i < n; i++) {\n    A[i] = 0;\n}",
            "while (x > 0) {\n    x--;\n}",
        ],
    )
    def test_statement_round_trip(self, source):
        stmt = parse_stmt(source)
        assert parse_stmt(to_source(stmt)) == stmt

    def test_increment_sugar(self):
        assert to_source(parse_stmt("i++;")) == "i++;"
        assert to_source(parse_stmt("i--;")) == "i--;"

    def test_compound_op_printed(self):
        assert to_source(parse_stmt("s += 2;")) == "s += 2;"

    def test_program_round_trip(self):
        source = """
        float A[100];
        float s = 0.0;
        for (i = 0; i < 100; i++) {
            s = s + A[i];
            if (s > 10.0) {
                s = 0.0;
            }
        }
        """
        prog = parse_program(source)
        assert parse_program(to_source(prog)) == prog


class TestParGroupPrinting:
    def _group(self):
        return ParGroup(
            [
                Assign(Var("x"), IntLit(1)),
                Assign(Var("y"), IntLit(2)),
            ]
        )

    def test_c_style_keeps_statements_separate(self):
        text = to_source(self._group())
        assert "x = 1;" in text
        assert "y = 2;" in text
        assert "/* || */" in text

    def test_paper_style_joins_with_bars(self):
        text = to_source(self._group(), style="paper")
        assert text == "x = 1; || y = 2;"

    def test_c_style_is_reparseable(self):
        # ParGroup flattens to plain C that parses back to the same
        # statements (minus the parallel annotation).
        text = to_source(self._group())
        prog = parse_program(text)
        assert [to_source(s) for s in prog.body] == ["x = 1;", "y = 2;"]

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            to_source(self._group(), style="fancy")
