"""Paper-style printing details."""

from repro.lang import ParGroup, parse_stmt, to_source


class TestPaperStyle:
    def test_predicated_single_statement_inline(self):
        stmt = parse_stmt("if (pred0) max0 = arr[i];")
        assert (
            to_source(stmt, style="paper")
            == "if (pred0) max0 = arr[i];"
        )

    def test_if_else_still_blocked(self):
        stmt = parse_stmt("if (c) x = 1; else x = 2;")
        text = to_source(stmt, style="paper")
        assert "{" in text  # else-ful ifs keep block form

    def test_pargroup_of_predicated_statements(self):
        group = ParGroup(
            [
                parse_stmt("if (p1) m1 = a[i];"),
                parse_stmt("p2 = m2 < a[i + 1];"),
            ]
        )
        text = to_source(group, style="paper")
        assert text == "if (p1) m1 = a[i]; || p2 = m2 < a[i + 1];"

    def test_c_style_unchanged(self):
        stmt = parse_stmt("if (pred0) max0 = arr[i];")
        text = to_source(stmt)  # default C style
        assert "{" in text

    def test_nested_pargroup_in_loop(self):
        loop = parse_stmt("for (i = 0; i < 4; i++) { x = 1; }")
        loop.body = [
            ParGroup([parse_stmt("x = 1;"), parse_stmt("y = 2;")])
        ]
        text = to_source(loop, style="paper")
        assert "x = 1; || y = 2;" in text
