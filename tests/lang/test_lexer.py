"""Unit tests for the C-subset lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop eof


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifier(self):
        toks = tokenize("reg1")
        assert toks[0].kind == "ident"
        assert toks[0].text == "reg1"

    def test_underscore_identifier(self):
        assert tokenize("_tmp_0")[0].text == "_tmp_0"

    def test_keywords_are_classified(self):
        for kw in ("int", "float", "for", "while", "if", "else", "break"):
            assert tokenize(kw)[0].kind == "keyword"

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("format")[0].kind == "ident"

    def test_int_literal(self):
        tok = tokenize("1234")[0]
        assert tok.kind == "int"
        assert tok.text == "1234"

    def test_float_literal(self):
        assert tokenize("3.5")[0].kind == "float"
        assert tokenize("0.0")[0].kind == "float"

    def test_float_exponent(self):
        assert tokenize("1e10")[0].kind == "float"
        assert tokenize("2.5e-3")[0].kind == "float"
        assert tokenize("1E+4")[0].kind == "float"

    def test_leading_dot_float(self):
        tok = tokenize(".5")[0]
        assert tok.kind == "float"
        assert tok.text == ".5"

    def test_number_then_ident(self):
        assert texts("2x") == ["2", "x"]


class TestOperators:
    def test_multichar_operators_maximal_munch(self):
        assert texts("a+=b") == ["a", "+=", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a==b") == ["a", "==", "b"]
        assert texts("a&&b") == ["a", "&&", "b"]
        assert texts("a||b") == ["a", "||", "b"]
        assert texts("i++") == ["i", "++"]
        assert texts("i--") == ["i", "--"]

    def test_adjacent_single_ops(self):
        assert texts("a<-b") == ["a", "<", "-", "b"]

    def test_brackets_and_punctuation(self):
        assert texts("A[i,j](x);{}") == [
            "A", "[", "i", ",", "j", "]", "(", "x", ")", ";", "{", "}",
        ]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x = 1; */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* line1\nline2 */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert texts("a\t b\r\n c") == ["a", "b", "c"]


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.col == 1
        assert toks[1].loc.line == 2 and toks[1].loc.col == 3

    def test_location_after_comment(self):
        toks = tokenize("// c\nx")
        assert toks[0].loc.line == 2


class TestErrors:
    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\n  @")
        assert exc.value.loc.line == 2
