"""Unit tests for the recursive-descent parser."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Decl,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    ParseError,
    Ternary,
    UnaryOp,
    Var,
    While,
    parse_expr,
    parse_program,
    parse_stmt,
)


class TestExpressions:
    def test_int_literal(self):
        assert parse_expr("42") == IntLit(42)

    def test_negative_literal_folds(self):
        assert parse_expr("-3") == IntLit(-3)

    def test_float_literal(self):
        assert parse_expr("2.5") == FloatLit(2.5)

    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert expr == BinOp("+", Var("a"), BinOp("*", Var("b"), Var("c")))

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr == BinOp("-", BinOp("-", Var("a"), Var("b")), Var("c"))

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr == BinOp("*", BinOp("+", Var("a"), Var("b")), Var("c"))

    def test_relational_below_additive(self):
        expr = parse_expr("a + 1 < b")
        assert expr == BinOp("<", BinOp("+", Var("a"), IntLit(1)), Var("b"))

    def test_logical_chain(self):
        expr = parse_expr("a < b && c != d || e")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary_not(self):
        assert parse_expr("!c") == UnaryOp("!", Var("c"))

    def test_unary_minus_variable(self):
        assert parse_expr("-x") == UnaryOp("-", Var("x"))

    def test_ternary(self):
        expr = parse_expr("c ? a : b")
        assert expr == Ternary(Var("c"), Var("a"), Var("b"))

    def test_ternary_right_associative(self):
        expr = parse_expr("c ? a : d ? b : e")
        assert isinstance(expr.els, Ternary)

    def test_array_ref_1d(self):
        assert parse_expr("A[i]") == ArrayRef("A", [Var("i")])

    def test_array_ref_2d_bracket_pairs(self):
        assert parse_expr("X[k][j]") == ArrayRef("X", [Var("k"), Var("j")])

    def test_array_ref_2d_comma_paper_syntax(self):
        # The paper writes X[k, i]; it must equal X[k][i].
        assert parse_expr("X[k, i]") == parse_expr("X[k][i]")

    def test_array_subscript_expression(self):
        assert parse_expr("A[2*i+1]") == ArrayRef(
            "A", [BinOp("+", BinOp("*", IntLit(2), Var("i")), IntLit(1))]
        )

    def test_call_no_args(self):
        assert parse_expr("f()") == Call("f", [])

    def test_call_with_args(self):
        assert parse_expr("max(a, b + 1)") == Call(
            "max", [Var("a"), BinOp("+", Var("b"), IntLit(1))]
        )

    def test_indexing_call_result_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("f()[0]")


class TestStatements:
    def test_plain_assignment(self):
        stmt = parse_stmt("x = 1;")
        assert stmt == Assign(Var("x"), IntLit(1))

    def test_compound_assignment(self):
        stmt = parse_stmt("s += A[i];")
        assert stmt == Assign(Var("s"), ArrayRef("A", [Var("i")]), "+")

    def test_all_compound_operators(self):
        for text, op in [("+=", "+"), ("-=", "-"), ("*=", "*"), ("/=", "/"), ("%=", "%")]:
            stmt = parse_stmt(f"x {text} 2;")
            assert stmt.op == op

    def test_postincrement(self):
        assert parse_stmt("i++;") == Assign(Var("i"), IntLit(1), "+")

    def test_postdecrement(self):
        assert parse_stmt("i--;") == Assign(Var("i"), IntLit(1), "-")

    def test_preincrement(self):
        assert parse_stmt("++i;") == Assign(Var("i"), IntLit(1), "+")

    def test_array_increment(self):
        assert parse_stmt("A[i]++;") == Assign(ArrayRef("A", [Var("i")]), IntLit(1), "+")

    def test_array_target_assignment(self):
        stmt = parse_stmt("A[i+1] = t;")
        assert isinstance(stmt.target, ArrayRef)

    def test_call_statement(self):
        assert parse_stmt("f(x);") == ExprStmt(Call("f", [Var("x")]))

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("1 = x;")

    def test_useless_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("a + b;")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")


class TestControlFlow:
    def test_for_loop_canonical(self):
        stmt = parse_stmt("for (i = 0; i < n; i++) { A[i] = 0; }")
        assert isinstance(stmt, For)
        assert stmt.init == Assign(Var("i"), IntLit(0))
        assert stmt.cond == BinOp("<", Var("i"), Var("n"))
        assert stmt.step == Assign(Var("i"), IntLit(1), "+")
        assert len(stmt.body) == 1

    def test_for_loop_unbraced_body(self):
        stmt = parse_stmt("for (i = 0; i < n; i++) A[i] = 0;")
        assert len(stmt.body) == 1

    def test_for_loop_step_two(self):
        stmt = parse_stmt("for (i = 0; i < n; i += 2) { }")
        assert stmt.step == Assign(Var("i"), IntLit(2), "+")

    def test_for_empty_header_parts(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None
        assert stmt.body == [Break()]

    def test_while_loop(self):
        stmt = parse_stmt("while (a[i+2] > 0) { i++; }")
        assert isinstance(stmt, While)

    def test_if_else(self):
        stmt = parse_stmt("if (x < y) x = x + 1; else y = y + 1;")
        assert isinstance(stmt, If)
        assert len(stmt.then) == 1 and len(stmt.els) == 1

    def test_if_without_else(self):
        stmt = parse_stmt("if (c) x = 1;")
        assert stmt.els == []

    def test_else_if_chain(self):
        stmt = parse_stmt("if (a) x = 1; else if (b) x = 2; else x = 3;")
        assert isinstance(stmt.els[0], If)
        assert stmt.els[0].els[0] == Assign(Var("x"), IntLit(3))

    def test_nested_loops(self):
        stmt = parse_stmt(
            "for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { A[i][j] = 0; } }"
        )
        assert isinstance(stmt.body[0], For)

    def test_empty_body_semicolon(self):
        stmt = parse_stmt("for (i = 0; i < n; i++) ;")
        assert stmt.body == []

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("for (i = 0; i < n; i++) { x = 1;")


class TestDeclarations:
    def test_scalar_decl(self):
        prog = parse_program("int x;")
        assert prog.body == [Decl("int", "x")]

    def test_scalar_decl_with_init(self):
        prog = parse_program("float s = 0.0;")
        assert prog.body == [Decl("float", "s", (), FloatLit(0.0))]

    def test_array_decl(self):
        prog = parse_program("float A[100];")
        assert prog.body == [Decl("float", "A", (100,))]

    def test_array_decl_2d(self):
        prog = parse_program("float X[10][20];")
        assert prog.body == [Decl("float", "X", (10, 20))]

    def test_double_is_float(self):
        prog = parse_program("double d;")
        assert prog.body[0].type == "float"

    def test_multi_declarator(self):
        prog = parse_program("int a, b = 1, c;")
        assert [d.name for d in prog.body] == ["a", "b", "c"]
        assert prog.body[1].init == IntLit(1)

    def test_decl_inside_loop_body(self):
        stmt = parse_stmt("for (i = 0; i < n; i++) { float t = 0.0; }")
        assert isinstance(stmt.body[0], Decl)


class TestPrograms:
    def test_paper_dot_product(self):
        prog = parse_program(
            """
            float A[1000], B[1000];
            float s = 0.0, t;
            for (i = 0; i < n; i++) {
                t = A[i] * B[i];
                s = s + t;
            }
            """
        )
        loops = [s for s in prog.body if isinstance(s, For)]
        assert len(loops) == 1
        assert len(loops[0].body) == 2

    def test_paper_swap_loop(self):
        prog = parse_program(
            """
            for (k = 0; k < n; k++) {
                CT = X[k, i];
                X[k, i] = X[k, j] * 2;
                X[k, j] = CT;
            }
            """
        )
        loop = prog.body[0]
        assert len(loop.body) == 3

    def test_structural_equality_ignores_location(self):
        a = parse_program("x = 1;\ny = 2;")
        b = parse_program("x = 1; y = 2;")
        assert a == b

    def test_clone_is_deep(self):
        prog = parse_program("for (i = 0; i < n; i++) { A[i] = 0; }")
        copy = prog.clone()
        assert copy == prog
        copy.body[0].body[0].target.indices[0] = Var("j")
        assert copy != prog
