"""Unit tests for AST traversal and rewriting utilities."""

from repro.lang import Var, parse_expr, parse_program, parse_stmt, to_source
from repro.lang.visitors import (
    collect_array_refs,
    collect_calls,
    collect_vars,
    count_ops,
    defined_scalars,
    fold_constants,
    rename_scalar,
    rename_scalars,
    substitute_expr,
    substitute_index,
    used_scalars,
    walk,
)


class TestWalk:
    def test_walk_yields_all_nodes(self):
        expr = parse_expr("a + b * c")
        names = {n.name for n in walk(expr) if isinstance(n, Var)}
        assert names == {"a", "b", "c"}

    def test_walk_includes_subscripts(self):
        stmt = parse_stmt("A[i+1] = B[j];")
        assert collect_vars(stmt) == {"i", "j"}


class TestCollectors:
    def test_collect_array_refs(self):
        stmt = parse_stmt("A[i] = B[i-1] + B[i+1];")
        refs = collect_array_refs(stmt)
        assert sorted(r.name for r in refs) == ["A", "B", "B"]

    def test_collect_calls(self):
        stmt = parse_stmt("x = f(g(1), 2);")
        assert [c.name for c in collect_calls(stmt)] == ["f", "g"]


class TestDefUse:
    def test_plain_assign_target_not_used(self):
        stmt = parse_stmt("x = y + z;")
        assert used_scalars(stmt) == {"y", "z"}
        assert defined_scalars(stmt) == {"x"}

    def test_compound_assign_target_is_used(self):
        stmt = parse_stmt("x += y;")
        assert used_scalars(stmt) == {"x", "y"}
        assert defined_scalars(stmt) == {"x"}

    def test_array_store_defines_no_scalar(self):
        stmt = parse_stmt("A[i] = t;")
        assert defined_scalars(stmt) == set()
        assert used_scalars(stmt) == {"i", "t"}

    def test_subscript_vars_are_uses(self):
        stmt = parse_stmt("x = A[i+k];")
        assert used_scalars(stmt) == {"i", "k"}

    def test_if_statement_def_use(self):
        stmt = parse_stmt("if (c) x = a; else y = b;")
        assert used_scalars(stmt) == {"c", "a", "b"}
        assert defined_scalars(stmt) == {"x", "y"}

    def test_increment_is_def_and_use(self):
        stmt = parse_stmt("i++;")
        assert used_scalars(stmt) == {"i"}
        assert defined_scalars(stmt) == {"i"}


class TestSubstituteIndex:
    def test_positive_shift(self):
        stmt = parse_stmt("A[i] = A[i-1];")
        shifted = substitute_index(stmt, "i", 2)
        assert to_source(shifted) == "A[i + 2] = A[i + 1];"

    def test_negative_shift(self):
        stmt = parse_stmt("A[i+1] = t;")
        shifted = substitute_index(stmt, "i", -1)
        assert to_source(shifted) == "A[i] = t;"

    def test_zero_shift_is_identity(self):
        stmt = parse_stmt("A[i] = A[i-1] + 1;")
        assert substitute_index(stmt, "i", 0) == stmt

    def test_shift_folds_constants(self):
        expr = parse_expr("A[i - 2]")
        shifted = substitute_index(expr, "i", 2)
        assert to_source(shifted) == "A[i]"

    def test_original_is_untouched(self):
        stmt = parse_stmt("A[i] = 0;")
        before = to_source(stmt)
        substitute_index(stmt, "i", 5)
        assert to_source(stmt) == before

    def test_only_named_var_substituted(self):
        stmt = parse_stmt("A[i] = B[j];")
        shifted = substitute_index(stmt, "i", 1)
        assert to_source(shifted) == "A[i + 1] = B[j];"

    def test_scaled_subscript(self):
        # A[2*i] shifted by 1 -> A[2*(i+1)] which folds to 2*i+2.
        expr = parse_expr("A[2*i]")
        shifted = substitute_index(expr, "i", 1)
        assert parse_expr(to_source(shifted)) == parse_expr("A[2 * (i + 1)]") or (
            "2" in to_source(shifted)
        )

    def test_substitute_arbitrary_expr(self):
        stmt = parse_stmt("x = A[i];")
        out = substitute_expr(stmt, "i", parse_expr("j * 2"))
        assert to_source(out) == "x = A[j * 2];"


class TestRenaming:
    def test_rename_scalar(self):
        stmt = parse_stmt("t = A[i] + t;")
        renamed = rename_scalar(stmt, "t", "t1")
        assert to_source(renamed) == "t1 = A[i] + t1;"

    def test_rename_does_not_touch_arrays(self):
        stmt = parse_stmt("t = t + 1;")
        prog = parse_stmt("A[t] = t;")
        renamed = rename_scalar(prog, "t", "u")
        assert to_source(renamed) == "A[u] = u;"
        assert to_source(rename_scalar(stmt, "A", "B")) == "t = t + 1;"

    def test_rename_many(self):
        stmt = parse_stmt("x = y + z;")
        renamed = rename_scalars(stmt, {"x": "a", "y": "b"})
        assert to_source(renamed) == "a = b + z;"


class TestFoldConstants:
    def test_fold_addition(self):
        assert to_source(fold_constants(parse_expr("1 + 2"))) == "3"

    def test_fold_nested_offsets(self):
        assert to_source(fold_constants(parse_expr("i + 2 - 2"))) == "i"

    def test_fold_in_subscript(self):
        assert to_source(fold_constants(parse_expr("A[i + 1 + 1]"))) == "A[i + 2]"

    def test_fold_respects_float(self):
        # Float arithmetic is not folded (keeps numerics bit-exact).
        assert to_source(fold_constants(parse_expr("1.5 + 2.5"))) == "1.5 + 2.5"


class TestCountOps:
    def test_dot_product_body(self):
        prog = parse_program("t = A[i] * B[i]; s = s + t;")
        counts = count_ops(prog)
        assert counts["load"] == 2
        assert counts["store"] == 0
        assert counts["arith"] == 2
        assert counts["mul"] == 1

    def test_store_counted(self):
        counts = count_ops(parse_stmt("A[i] = t;"))
        assert counts["store"] == 1
        assert counts["load"] == 0

    def test_compound_array_assign_is_load_and_store(self):
        counts = count_ops(parse_stmt("A[i] += 1;"))
        assert counts["load"] == 1
        assert counts["store"] == 1
        assert counts["arith"] == 1

    def test_subscript_arith_counted_separately(self):
        counts = count_ops(parse_stmt("x = A[i + 1];"))
        assert counts["arith"] == 0
        assert counts["addr_arith"] == 1

    def test_paper_swap_loop_ao_is_one(self):
        # §4: CT = X[k,i]; X[k,i] = X[k,j]*2; X[k,j] = CT; has AO = 1.
        prog = parse_program(
            "CT = X[k, i]; X[k, i] = X[k, j] * 2; X[k, j] = CT;"
        )
        counts = count_ops(prog)
        assert counts["arith"] == 1
        assert counts["load"] == 2
        assert counts["store"] == 2

    def test_div_and_call(self):
        counts = count_ops(parse_stmt("x = f(a) / b;"))
        assert counts["div"] == 1
        assert counts["call"] == 1
