"""Machine model and preset tests."""

import pytest

from repro.machines import (
    ALL_MACHINES,
    arm7tdmi,
    itanium2,
    machine_by_name,
    pentium,
    power4,
)
from repro.machines.model import CacheConfig, MachineModel, PowerProfile


class TestPresets:
    def test_all_presets_validate(self):
        for factory in (itanium2, pentium, power4, arm7tdmi):
            factory().validate()

    def test_lookup_by_name(self):
        for name in ALL_MACHINES:
            assert machine_by_name(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            machine_by_name("cray1")

    def test_relative_widths(self):
        assert itanium2().issue_width > power4().issue_width >= pentium().issue_width
        assert arm7tdmi().issue_width == 1

    def test_register_famine_ordering(self):
        assert pentium().num_registers < arm7tdmi().num_registers
        assert arm7tdmi().num_registers < power4().num_registers
        assert power4().num_registers < itanium2().num_registers

    def test_arm_soft_float_latencies(self):
        arm = arm7tdmi()
        assert arm.latency("fadd") > itanium2().latency("fadd")

    def test_unit_counts_defaults(self):
        model = itanium2()
        assert model.unit_count("mem") == 4
        assert model.unit_count("branch") >= 1


class TestModelValidation:
    def test_unknown_unit_class_rejected(self):
        model = MachineModel(
            name="bad",
            issue_width=2,
            units={"teleport": 1},
            latencies={},
            num_registers=16,
        )
        with pytest.raises(ValueError):
            model.validate()

    def test_degenerate_rejected(self):
        model = MachineModel(
            name="bad",
            issue_width=0,
            units={},
            latencies={},
            num_registers=16,
        )
        with pytest.raises(ValueError):
            model.validate()

    def test_latency_default(self):
        model = itanium2()
        assert model.latency("branch") == 1


class TestCacheConfig:
    def test_num_lines(self):
        config = CacheConfig(size_bytes=1024, line_bytes=64)
        assert config.num_lines == 16

    def test_tiny_cache_floor(self):
        config = CacheConfig(size_bytes=16, line_bytes=64)
        assert config.num_lines == 1


class TestPowerProfile:
    def test_op_energy_lookup(self):
        profile = PowerProfile()
        assert profile.op_energy("fmul") > profile.op_energy("alu")

    def test_unknown_class_default(self):
        assert PowerProfile().op_energy("mystery") > 0

    def test_arm_profile_cheaper_ops(self):
        assert (
            arm7tdmi().power.op_energy("alu")
            < itanium2().power.op_energy("alu")
        )
