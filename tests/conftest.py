"""Suite-wide fixtures.

The run ledger records every CLI engine run by default; tests must not
append to the developer's real ledger (or read state from it), so the
whole suite runs against a per-test temporary ledger directory.  Tests
that exercise the ledger deliberately just use the same variable.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("SLMS_LEDGER_DIR", str(tmp_path / "ledger"))
