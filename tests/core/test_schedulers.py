"""Unit tests for the pluggable scheduler backends (docs/SCHEDULERS.md).

Covers the registry, heuristic/``find_valid_ii`` parity, the exact
branch-and-bound search (wins, proofs, budgets, the refine fallback),
and the shared source-level resMII census.
"""

import pytest

from repro.analysis.ddg import Dependence, DependenceGraph
from repro.analysis.delays import edge_delay
from repro.core.mii import find_valid_ii
from repro.core.schedulers import (
    SCHEDULER_NAMES,
    ExactScheduler,
    HeuristicScheduler,
    get_scheduler,
    identity_feasible,
    op_class_counts,
    resource_mii,
)
from repro.core.slms import SLMSOptions
from repro.lang.parser import parse_program
from repro.machines.model import MachineModel, res_mii_for_counts
from repro.machines.presets import machine_by_name


def graph_from(edges, n):
    g = DependenceGraph(n=n)
    for kind, src, dst, distance in edges:
        g.add(
            Dependence(
                kind=kind,
                src=src,
                dst=dst,
                var="v",
                distance=distance,
                delay=edge_delay(src, dst),
            )
        )
    return g


# A 3-MI graph where the identity placement needs II=2 (flow edge
# 1 -> 0 with distance 1: 1*II + (0-1) >= 1 forces II >= 2) but the
# permutation [1, 0, 2] is valid at II=1.
GAP_EDGES = [("flow", 1, 0, 1)]


class TestRegistry:
    def test_names(self):
        assert SCHEDULER_NAMES == ("exact", "heuristic")

    def test_get_scheduler_constructs(self):
        assert isinstance(get_scheduler("heuristic"), HeuristicScheduler)
        assert isinstance(get_scheduler("exact"), ExactScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            get_scheduler("ilp")

    def test_options_validate_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SLMSOptions(scheduler="ilp")
        with pytest.raises(ValueError, match="sched_budget"):
            SLMSOptions(sched_budget=0)
        with pytest.raises(ValueError, match="unknown machine"):
            SLMSOptions(machine="z80")


class TestHeuristicBackend:
    def test_find_schedule_matches_find_valid_ii(self):
        graphs = [
            graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2),
            graph_from([("flow", 0, 0, 1), ("anti", 1, 0, 2)], 3),
            graph_from(GAP_EDGES, 3),
            graph_from([("flow", 2, 0, 1), ("output", 1, 1, 1)], 4),
        ]
        backend = HeuristicScheduler()
        for g in graphs:
            sched = backend.find_schedule(g, g.n)
            expected = find_valid_ii(g, g.n)
            if expected is None:
                assert sched is None
            else:
                assert sched.ii == expected
                assert sched.is_identity

    def test_schedule_rejects_out_of_range_ii(self):
        g = graph_from([("flow", 0, 1, 0)], 2)
        backend = HeuristicScheduler()
        assert backend.schedule(g, 0) is None
        assert backend.schedule(g, 2) is None  # II < n_mis bound

    def test_refine_returns_identity(self):
        g = graph_from(GAP_EDGES, 3)
        sched = HeuristicScheduler().refine(g, heuristic_ii=2)
        assert sched.ii == 2 and sched.is_identity


class TestExactBackend:
    def test_beats_identity_on_gap_graph(self):
        g = graph_from(GAP_EDGES, 3)
        assert find_valid_ii(g, g.n) == 2
        sched = ExactScheduler().refine(g, heuristic_ii=2)
        assert sched.ii == 1
        assert sched.order == (1, 0, 2)
        assert sched.proven_optimal
        assert not sched.exhausted

    def test_schedule_respects_all_edges(self):
        g = graph_from(
            [("flow", 1, 0, 1), ("flow", 0, 2, 0), ("anti", 2, 1, 1)], 3
        )
        sched = ExactScheduler().find_schedule(g, g.n)
        assert sched is not None
        sigma = {v: r for r, v in enumerate(sched.order)}
        for edge in g.edges:
            need = 1 if edge.kind == "flow" else 0
            slack = edge.distance * sched.ii + (
                sigma[edge.dst] - sigma[edge.src]
            )
            assert slack >= need

    def test_identity_kept_when_already_optimal(self):
        g = graph_from([("flow", 0, 1, 0)], 2)
        sched = ExactScheduler().find_schedule(g, g.n)
        assert sched.ii == 1 and sched.is_identity and sched.proven_optimal

    def test_infeasible_ii_detected_by_relaxation(self):
        # Self-dependence at distance 1 makes II=0 nonsense and the
        # positive-cycle test must reject nothing at II >= 1.
        g = graph_from([("flow", 0, 0, 1)], 2)
        backend = ExactScheduler()
        assert backend.schedule(g, 1) is not None

    def test_budget_exhaustion_is_flagged_not_proven(self):
        g = graph_from(GAP_EDGES, 3)
        sched = ExactScheduler(budget_nodes=1).refine(g, heuristic_ii=2)
        assert sched.ii == 2  # fell back to the identity placement
        assert sched.is_identity
        assert sched.exhausted
        assert not sched.proven_optimal

    def test_refine_honours_min_ii_floor(self):
        g = graph_from(GAP_EDGES, 3)
        sched = ExactScheduler().refine(g, heuristic_ii=2, min_ii=2)
        assert sched.ii == 2 and sched.is_identity
        assert sched.proven_optimal  # nothing below the floor was tried

    def test_refine_never_exceeds_heuristic_ii(self):
        for edges, n in [
            (GAP_EDGES, 3),
            ([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2),
            ([("flow", 2, 0, 1), ("flow", 0, 1, 0)], 4),
        ]:
            g = graph_from(edges, n)
            h_ii = find_valid_ii(g, g.n)
            if h_ii is None:
                continue
            sched = ExactScheduler().refine(g, h_ii)
            assert sched.ii <= h_ii


MIS_SRC = """\
float A[8];
float B[8];
int C[8];
int i;
for (i = 1; i < 8; i++) {
    A[i] = A[i - 1] * 2.0 + B[i];
    C[i] = C[i] + 1;
    B[i] = B[i] / 4.0;
}
"""


def _mis_and_types():
    program = parse_program(MIS_SRC)
    loop = next(s for s in program.body if hasattr(s, "body"))
    types = {"A": "float", "B": "float", "C": "int", "i": "int"}
    return list(loop.body), types


class TestResMII:
    def test_op_class_counts_census(self):
        mis, types = _mis_and_types()
        counts = op_class_counts(mis, types)
        # A[i], A[i-1], B[i] + compound C[i] (load+store) + B[i] twice.
        assert counts["mem"] == 7
        assert counts["fmul"] == 1
        assert counts["fadd"] == 1
        assert counts["div"] == 1
        # i-1 and the compound int increment are ALU work.
        assert counts["alu"] == 2

    def test_res_mii_for_counts_formula(self):
        machine = MachineModel(
            name="toy",
            issue_width=4,
            units={"mem": 2, "fadd": 1, "fmul": 1, "div": 1, "alu": 2},
            latencies={},
            num_registers=32,
        )
        counts = {"mem": 5, "fadd": 1, "alu": 2, "div": 0}
        # mem: ceil(5/2)=3 dominates; total 8 over width 4 gives 2.
        assert res_mii_for_counts(machine, counts) == 3

    def test_issue_width_bound(self):
        machine = MachineModel(
            name="narrow",
            issue_width=2,
            units={"mem": 4, "fadd": 4, "fmul": 4, "div": 4, "alu": 4},
            latencies={},
            num_registers=32,
        )
        counts = {"mem": 3, "alu": 3}
        assert res_mii_for_counts(machine, counts) == 3  # ceil(6/2)

    def test_branches_excluded(self):
        machine = machine_by_name("itanium2")
        assert res_mii_for_counts(machine, {"branch": 99}) == 1

    def test_source_res_mii_on_mis(self):
        mis, types = _mis_and_types()
        machine = machine_by_name("itanium2")
        expected = res_mii_for_counts(
            machine, op_class_counts(mis, types)
        )
        assert resource_mii(mis, machine, types) == expected
        assert expected >= 1

    def test_backend_res_mii_uses_shared_formula(self):
        # The machine-level resMII (backend/ims.py) and the shared
        # formula must agree on a hand-built census.
        from repro.backend.ims import res_mii as lir_res_mii
        from repro.backend.lir import Instr

        machine = machine_by_name("itanium2")
        instrs = [
            Instr(op="load", dst="r1", srcs=("A", "r0")),
            Instr(op="fadd", dst="r2", srcs=("r1", "r1")),
            Instr(op="store", dst=None, srcs=("A", "r0", "r2")),
        ]
        counts = {"mem": 2, "fadd": 1}
        assert lir_res_mii(instrs, machine) == res_mii_for_counts(
            machine, counts
        )


class TestIdentityFeasible:
    def test_matches_find_valid_ii_verdicts(self):
        g = graph_from(GAP_EDGES, 3)
        assert not identity_feasible(g, 1)
        assert identity_feasible(g, 2)
        assert find_valid_ii(g, g.n) == 2
