"""Unit tests for MI partitioning and multi-def scalar renaming."""

import pytest

from repro.core.mi import NotPartitionable, partition_mis
from repro.core.names import NamePool
from repro.lang import parse_program, to_source
from repro.lang.ast_nodes import Program
from repro.sim.interp import run_program, state_equal


def partition(source, index_var="i", rename=True):
    prog = parse_program(source)
    pool = NamePool({index_var} | {"A", "B", "C", "t", "s", "x"})
    return partition_mis(list(prog.body), index_var, pool, rename_multi_defs=rename)


class TestPartitioning:
    def test_assignments_become_mis(self):
        p = partition("t = A[i]; B[i] = t;")
        assert p.n == 2

    def test_decl_hoisted(self):
        p = partition("float t = A[i]; B[i] = t;")
        assert p.n == 2
        assert [d.name for d in p.hoisted_decls] == ["t"]
        assert to_source(p.mis[0]) == "t = A[i];"

    def test_decl_without_init_hoisted_silently(self):
        p = partition("float t; B[i] = 1.0;")
        assert p.n == 1
        assert p.hoisted_decls[0].name == "t"

    def test_predicated_if_is_one_mi(self):
        p = partition("if (c) x = A[i];")
        assert p.n == 1

    def test_call_statement_is_mi(self):
        p = partition("f(i);")
        assert p.n == 1

    def test_unconverted_if_rejected(self):
        with pytest.raises(NotPartitionable):
            partition("if (c) x = 1; else x = 2;")

    def test_nested_loop_rejected(self):
        with pytest.raises(NotPartitionable):
            partition("for (j = 0; j < 4; j++) A[j] = 0;")

    def test_array_decl_rejected(self):
        with pytest.raises(NotPartitionable):
            partition("float T[8];")


class TestMultiDefRenaming:
    def test_independent_webs_split(self):
        p = partition("t = A[i]; B[i] = t; t = C[i]; x = t;")
        texts = [to_source(s) for s in p.mis]
        # First web renamed, last web keeps the original name.
        assert texts[0] == "t_w1 = A[i];"
        assert texts[1] == "B[i] = t_w1;"
        assert texts[2] == "t = C[i];"
        assert texts[3] == "x = t;"
        assert p.renamed == {"t": ["t_w1"]}

    def test_def_reading_previous_web(self):
        p = partition("t = A[i]; t = t + 1.0; B[i] = t;")
        texts = [to_source(s) for s in p.mis]
        assert texts[0] == "t_w1 = A[i];"
        assert texts[1] == "t = t_w1 + 1.0;"
        assert texts[2] == "B[i] = t;"

    def test_single_def_untouched(self):
        p = partition("t = A[i]; B[i] = t;")
        assert p.renamed == {}

    def test_compound_def_blocks_renaming(self):
        p = partition("t = A[i]; t += B[i]; C[i] = t;")
        assert p.renamed == {}

    def test_use_before_first_def_blocks_renaming(self):
        # B[i] = t reads last iteration's value: webs wrap the back edge.
        p = partition("B[i] = t; t = A[i]; t = C[i];")
        assert p.renamed == {}

    def test_conditional_def_blocks_renaming(self):
        p = partition("t = A[i]; if (c) t = B[i]; C[i] = t;")
        assert p.renamed == {}

    def test_renaming_disabled(self):
        p = partition("t = A[i]; B[i] = t; t = C[i]; x = t;", rename=False)
        assert p.renamed == {}
        assert to_source(p.mis[0]) == "t = A[i];"

    def test_renaming_preserves_semantics(self):
        source = """
        float A[8], B[8], C[8], D[8];
        float t = 0.0, x = 0.0;
        for (i = 0; i < 8; i++) { A[i] = i; C[i] = 10 + i; }
        for (i = 0; i < 8; i++) {
            t = A[i];
            B[i] = t * 2.0;
            t = C[i];
            D[i] = t + 1.0;
        }
        """
        prog = parse_program(source)
        pool = NamePool({"A", "B", "C", "D", "t", "x", "i"})
        # Partition only the second loop body, then rebuild the program.
        loop = [s for s in prog.body if type(s).__name__ == "For"][1]
        p = partition_mis(list(loop.body), "i", pool)
        loop_clone = loop.clone()
        loop_clone.body = p.mis
        new_body = []
        for stmt in prog.body:
            if stmt is loop:
                new_body.extend(p.hoisted_decls)
                new_body.append(loop_clone)
            else:
                new_body.append(stmt)
        a = run_program(prog)
        b = run_program(Program(new_body))
        ignore = {n for names in p.renamed.values() for n in names}
        assert state_equal(a, b, ignore=ignore)

    def test_fresh_names_avoid_collisions(self):
        prog = parse_program("t = A[i]; B[i] = t; t = C[i]; x = t;")
        pool = NamePool({"t", "t_w1", "A", "B", "C", "x", "i"})
        p = partition_mis(list(prog.body), "i", pool)
        assert p.renamed["t"] != ["t_w1"]


class TestWebTypes:
    # Regression: web declarations used to be hardcoded float, which
    # silently changed % and / semantics for int scalars (found by the
    # differential fuzzer; see tests/fuzz/corpus/).

    def test_web_decls_inherit_the_scalar_type(self):
        prog = parse_program("t = A[i]; B[i] = t; t = C[i]; x = t;")
        pool = NamePool({"t", "A", "B", "C", "x", "i"})
        p = partition_mis(
            list(prog.body), "i", pool, elem_types={"t": "int"}
        )
        assert p.renamed["t"]
        for decl in p.hoisted_decls:
            assert decl.type == "int", f"{decl.name} typed {decl.type}"

    def test_web_decls_default_to_float(self):
        p = partition("t = A[i]; B[i] = t; t = C[i]; x = t;")
        assert all(d.type == "float" for d in p.hoisted_decls)
