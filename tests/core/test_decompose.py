"""Unit tests for MI decomposition (§3.2)."""

from repro.analysis.loopinfo import LoopInfo
from repro.core.decompose import decompose_by_resources, decompose_mi
from repro.core.names import NamePool
from repro.lang import parse_stmt, to_source


def try_decompose(loop_src, mi_index=0):
    loop = parse_stmt(loop_src)
    info = LoopInfo.from_for(loop)
    pool = NamePool({"A", "B", "C", "D", "x", "i", "reg"})
    return decompose_mi(loop.body[mi_index], loop.body, info, pool)


class TestLoadHoisting:
    def test_paper_recurrence_example(self):
        # §3.2: A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2]
        d = try_decompose(
            "for (i = 2; i < 60; i++) "
            "{ A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2]; }"
        )
        assert d is not None
        # Largest read-ahead wins: A[i+2].
        assert to_source(d.load_mi) == "reg1 = A[i + 2];"
        assert (
            to_source(d.rest_mi)
            == "A[i] = A[i - 1] + A[i - 2] + A[i + 1] + reg1;"
        )

    def test_flow_dependent_loads_rejected(self):
        # Every read has a flow dependence with the store: no candidate.
        d = try_decompose("for (i = 1; i < 60; i++) { A[i] = A[i-1] * 2.0; }")
        assert d is None

    def test_other_array_is_candidate(self):
        d = try_decompose("for (i = 1; i < 60; i++) { A[i] = A[i-1] + B[i]; }")
        assert d is not None
        assert d.array == "B"
        assert to_source(d.load_mi) == "reg1 = B[i];"

    def test_scalar_target_any_read(self):
        d = try_decompose("for (i = 0; i < 60; i++) { x = B[i] + 1.0; }")
        assert d is not None
        assert d.array == "B"

    def test_compound_assignment(self):
        # §8: temp -= x[lw] * y[j] style; here s += A[i] * B[i].
        d = try_decompose("for (i = 0; i < 60; i++) { s += A[i] * B[i]; }")
        assert d is not None
        assert to_source(d.rest_mi).startswith("s = ")

    def test_read_written_elsewhere_respects_stores(self):
        # B is written by MI1 at B[i]; hoisting B[i-1] from MI0 would
        # carry a flow dependence — but B[i+1] is fine.
        d = try_decompose(
            "for (i = 1; i < 60; i++) { A[i] = B[i-1] + B[i+1]; B[i] = A[i-1]; }",
            mi_index=0,
        )
        assert d is not None
        assert to_source(d.load_mi) == "reg1 = B[i + 1];"

    def test_predicated_mi_not_decomposed(self):
        d = try_decompose(
            "for (i = 0; i < 60; i++) { if (c) A[i] = B[i]; }"
        )
        assert d is None

    def test_fresh_temp_name(self):
        loop = parse_stmt("for (i = 0; i < 60; i++) { x = B[i] + 1.0; }")
        info = LoopInfo.from_for(loop)
        pool = NamePool({"reg1", "reg2", "B", "x", "i"})
        d = decompose_mi(loop.body[0], loop.body, info, pool)
        assert d.temp == "reg3"


class TestResourceDecomposition:
    def test_paper_four_load_example(self):
        # §3.2: x = A[i]+B[i]+C[i]+D[i] with a 2-load cap.
        stmt = parse_stmt("x = A[i] + B[i] + C[i] + D[i];")
        pool = NamePool({"A", "B", "C", "D", "x", "i"})
        parts = decompose_by_resources(stmt, max_loads=2, max_arith=2, pool=pool)
        assert parts is not None
        assert to_source(parts[0]) == "reg1 = A[i] + B[i];"
        assert to_source(parts[1]) == "x = reg1 + C[i] + D[i];"

    def test_fitting_mi_untouched(self):
        stmt = parse_stmt("x = A[i] + B[i];")
        pool = NamePool(set())
        assert decompose_by_resources(stmt, 2, 2, pool) is None

    def test_multiplication_chain(self):
        stmt = parse_stmt("x = A[i] * B[i] * C[i] * D[i];")
        pool = NamePool(set())
        parts = decompose_by_resources(stmt, 2, 2, pool)
        assert parts is not None

    def test_split_preserves_association_order(self):
        # Left-leaning split keeps FP evaluation order bit-exact:
        # ((A+B)+C)+D -> t=(A+B); ((t+C)+D).
        stmt = parse_stmt("x = a + b + c + d;")
        pool = NamePool(set())
        parts = decompose_by_resources(stmt, 0, 1, pool)
        assert to_source(parts[0]) == "reg1 = a + b;"
        assert to_source(parts[1]) == "x = reg1 + c + d;"

    def test_short_chain_not_split(self):
        stmt = parse_stmt("x = a + b;")
        assert decompose_by_resources(stmt, 0, 0, NamePool(set())) is None

    def test_compound_not_split(self):
        stmt = parse_stmt("x += a + b + c + d;")
        assert decompose_by_resources(stmt, 0, 1, NamePool(set())) is None
