"""Tests for the SLC diagnostics (explain / MS table / DOT export)."""

import pytest

from repro import SLMSOptions, slms
from repro.core.explain import ddg_to_dot, explain, render_ms_table
from repro.lang import parse_program, parse_stmt
from repro.lang.ast_nodes import For


def loop_and_report(source, options=None):
    prog = parse_program(source)
    outcome = slms(prog, options)
    loops = [s for s in prog.body if isinstance(s, For)]
    return loops[-1], outcome.loops[-1]


DOT_SOURCE = """
float A[64];
for (i = 0; i < 64; i++) A[i] = 0.25 * i + 1.0;
for (i = 2; i < 60; i++)
    A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
"""


class TestExplain:
    def test_applied_report_contents(self):
        loop, report = loop_and_report(DOT_SOURCE)
        text = explain(loop, report)
        assert "APPLIED" in text
        assert "II=1" in text
        assert "MI0: reg1 = A[i + 2];" in text
        assert "loop-carried" in text
        assert "Fig. 1 view" in text
        assert "<- kernel" in text

    def test_declined_report(self):
        loop, report = loop_and_report(
            "float A[8], B[8]; for (i = 0; i < 8; i++) A[i] = B[i];"
        )
        text = explain(loop, report)
        assert "DECLINED" in text
        assert "memory-ref ratio" in text

    def test_filter_numbers_shown(self):
        loop, report = loop_and_report(DOT_SOURCE)
        text = explain(loop, report)
        assert "memory-ref ratio 0.625" in text

    def test_binding_edge_reported_when_ii_above_1(self):
        source = """
        float x[128], y[128];
        float temp = 100.0;
        int lw;
        lw = 6;
        for (j = 4; j < 100; j = j + 2) {
            temp -= x[lw] * y[j];
            lw++;
        }
        """
        loop, report = loop_and_report(
            source, SLMSOptions(enable_filter=False)
        )
        assert report.ii == 2
        text = explain(loop, report)
        assert "II = 1 fails" in text


class TestMSTable:
    def test_figure1_shape(self):
        mis = [
            parse_stmt(f"S{k}[i] = 0.0;") for k in range(6)
        ]
        table = render_ms_table(mis, ii=2, iterations=4)
        lines = table.splitlines()
        # header + separator + (iterations-1)*II + n rows
        assert len(lines) == 2 + 3 * 2 + 6
        # Row 4 holds S4(i), S2(i+1), S0(i+2) — the Fig. 1 kernel row.
        kernel_row = lines[2 + 4]
        assert "S4[i]" in kernel_row and "S2[i]" in kernel_row
        assert "<- kernel" in kernel_row

    def test_single_mi_ii1(self):
        table = render_ms_table([parse_stmt("A[i] = 0.0;")], ii=1, iterations=3)
        assert table.count("A[i] = 0.0;") == 3

    def test_bad_ii_rejected(self):
        with pytest.raises(ValueError):
            render_ms_table([parse_stmt("x = 1;")], ii=0)


class TestDot:
    def test_dot_structure(self):
        loop, report = loop_and_report(DOT_SOURCE)
        dot = ddg_to_dot(report.ddg, report.final_mis)
        assert dot.startswith("digraph ddg {")
        assert dot.rstrip().endswith("}")
        assert "mi0 -> mi1" in dot or "mi1 -> mi0" in dot
        assert "style=dashed" in dot  # anti edges present

    def test_dot_without_labels(self):
        loop, report = loop_and_report(DOT_SOURCE)
        dot = ddg_to_dot(report.ddg)
        assert 'label="MI0"' in dot


class TestCLIExplain:
    def test_cli_explain(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "loop.c"
        path.write_text(DOT_SOURCE)
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "APPLIED" in out
        assert "loop 0" in out

    def test_cli_explain_dot(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "loop.c"
        path.write_text(DOT_SOURCE)
        main(["explain", str(path), "--dot"])
        assert "digraph ddg" in capsys.readouterr().out
