"""Unit tests for the §4 bad-case filter."""

from repro.core.filters import bad_case_filter, memory_ref_ratio
from repro.lang import parse_program


def body(source):
    return list(parse_program(source).body)


class TestPaperSwapLoop:
    SRC = "CT = X[k, i]; X[k, i] = X[k, j] * 2; X[k, j] = CT;"

    def test_counts_match_paper(self):
        # §4 gives LS = 6, AO = 1 for this body.
        v = memory_ref_ratio(body(self.SRC), "k")
        assert v.loads + v.stores + v.scalar_accesses == 6
        assert v.arith == 1

    def test_ratio_is_0857(self):
        v = memory_ref_ratio(body(self.SRC), "k")
        assert abs(v.memory_ref_ratio - 6 / 7) < 1e-9

    def test_filtered_at_default_threshold(self):
        v = bad_case_filter(body(self.SRC), "k")
        assert not v.apply_slms
        assert "0.85" in v.reason


class TestGoodCases:
    def test_dot_product_passes(self):
        v = bad_case_filter(body("t = A[i] * B[i]; s = s + t;"), "i")
        assert v.apply_slms
        assert v.memory_ref_ratio < 0.85

    def test_compute_heavy_loop_passes(self):
        v = bad_case_filter(
            body("X[i] = X[i-1] * X[i-1] * X[i-1] + X[i+1] * X[i+1];"), "i"
        )
        assert v.apply_slms

    def test_pure_copy_filtered(self):
        v = bad_case_filter(body("A[i] = B[i];"), "i")
        assert not v.apply_slms
        assert v.memory_ref_ratio == 1.0


class TestCountingRules:
    def test_index_var_not_a_scalar_access(self):
        v = memory_ref_ratio(body("A[i] = B[i] + 1.0;"), "i")
        assert v.scalar_accesses == 0

    def test_loop_invariant_scalar_not_counted(self):
        # q is read-only (defined outside): not a body temp.
        v = memory_ref_ratio(body("A[i] = q * B[i];"), "i")
        assert v.scalar_accesses == 0

    def test_body_temp_def_and_use_counted(self):
        v = memory_ref_ratio(body("t = A[i]; B[i] = t;"), "i")
        assert v.scalar_accesses == 2

    def test_subscript_arith_not_ao(self):
        v = memory_ref_ratio(body("A[i+1] = B[i-1];"), "i")
        assert v.arith == 0

    def test_empty_body(self):
        v = memory_ref_ratio([], "i")
        assert v.memory_ref_ratio == 0.0


class TestThresholds:
    SRC = "A[i] = B[i];"

    def test_custom_threshold_admits(self):
        v = bad_case_filter(body(self.SRC), "i", ratio_threshold=1.01)
        assert v.apply_slms

    def test_arith_per_ref_heuristic(self):
        # 1 arith per 2 refs = 0.5 < 6 required -> filtered.
        v = bad_case_filter(
            body("A[i] = B[i] + 1.0;"),
            "i",
            ratio_threshold=1.01,
            min_arith_per_ref=6.0,
        )
        assert not v.apply_slms
        assert "§11" in v.reason

    def test_arith_per_ref_disabled_by_default(self):
        v = bad_case_filter(body("t = A[i] * B[i]; s = s + t;"), "i")
        assert v.apply_slms
