"""Reduction lane splitting tests (§5's max-loop MVE)."""

import pytest

from repro import SLMSOptions, slms, to_source
from repro.analysis.loopinfo import LoopInfo
from repro.core.reductions import find_reduction
from repro.lang import parse_program, parse_stmt
from repro.sim.interp import run_program, state_equal


def body_of(loop_src):
    loop = parse_stmt(loop_src)
    info = LoopInfo.from_for(loop)
    return loop, loop.body, info.var


class TestDetection:
    def test_paper_max_pattern(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) if (max < arr[i]) max = arr[i];"
        )
        info = find_reduction(body, iv, allow_reassociation=False)
        assert info is not None
        assert info.var == "max" and info.kind == "max" and info.exact

    def test_flipped_orientation(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) if (arr[i] > max) max = arr[i];"
        )
        info = find_reduction(body, iv, allow_reassociation=False)
        assert info is not None and info.kind == "max"

    def test_min_pattern(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) if (lo > arr[i]) lo = arr[i];"
        )
        info = find_reduction(body, iv, allow_reassociation=False)
        assert info is not None and info.kind == "min"

    def test_sum_needs_reassociation_flag(self):
        _, body, iv = body_of("for (i = 0; i < 40; i++) s += arr[i];")
        assert find_reduction(body, iv, allow_reassociation=False) is None
        info = find_reduction(body, iv, allow_reassociation=True)
        assert info is not None and info.kind == "sum" and not info.exact

    def test_product_pattern(self):
        _, body, iv = body_of("for (i = 1; i < 20; i++) p = p * arr[i];")
        info = find_reduction(body, iv, allow_reassociation=True)
        assert info is not None and info.kind == "product"

    def test_escaping_variable_declined(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) { if (max < arr[i]) max = arr[i]; "
            "out[i] = max; }"
        )
        assert find_reduction(body, iv, allow_reassociation=True) is None

    def test_self_referential_expr_declined(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) s = s + s * 0.5;"
        )
        assert find_reduction(body, iv, allow_reassociation=True) is None

    def test_call_in_body_declined(self):
        _, body, iv = body_of(
            "for (i = 0; i < 40; i++) { if (max < f(i)) max = f(i); }"
        )
        assert find_reduction(body, iv, allow_reassociation=True) is None


MAX_SOURCE = """
float arr[64];
float max;
for (i = 0; i < 64; i++) arr[i] = (i * 29) % 64 + 0.25;
max = arr[0];
for (i = 0; i < 61; i++)
    if (max < arr[i]) max = arr[i];
"""


class TestSplitSemantics:
    def _check(self, source, options, ignore_extra=()):
        outcome = slms(source, options)
        base = run_program(parse_program(source))
        out = run_program(outcome.program)
        ignore = {n for r in outcome.loops for n in r.new_scalars}
        ignore |= set(ignore_extra)
        ignore |= {k for k in out if k not in base}
        assert state_equal(base, out, ignore=ignore)
        return outcome

    def test_max_loop_bit_exact(self):
        outcome = self._check(
            MAX_SOURCE,
            SLMSOptions(force=True, reduction_lanes=2),
        )
        report = outcome.loops[-1]
        assert report.applied
        text = to_source(outcome.program)
        # The paper's max0/max1 lanes and final merge.
        assert "max0" in text and "max1" in text
        assert "max(max0, max1)" in text

    def test_odd_trip_count_remainder(self):
        for hi in (60, 61, 62, 63):
            src = MAX_SOURCE.replace("i < 61", f"i < {hi}")
            self._check(src, SLMSOptions(force=True, reduction_lanes=2))

    def test_three_lanes(self):
        self._check(
            MAX_SOURCE, SLMSOptions(force=True, reduction_lanes=3)
        )

    def test_sum_with_reassociation_close(self):
        source = """
        float arr[64];
        float s = 0.0;
        for (i = 0; i < 64; i++) arr[i] = 0.5 * i + 1.0;
        for (i = 0; i < 60; i++) s += arr[i];
        """
        outcome = slms(
            source,
            SLMSOptions(
                force=True, reduction_lanes=2, allow_reassociation=True
            ),
        )
        assert outcome.loops[-1].applied
        base = run_program(parse_program(source))
        out = run_program(outcome.program)
        # Reassociated: approximately equal, not bit-exact.
        assert out["s"] == pytest.approx(base["s"], rel=1e-12)

    def test_off_by_default(self):
        outcome = slms(MAX_SOURCE, SLMSOptions(force=True))
        text = to_source(outcome.program)
        assert "max0" not in text

    def test_symbolic_bounds(self):
        source = MAX_SOURCE.replace("i < 61", "i < n")
        outcome = slms(
            source, SLMSOptions(force=True, reduction_lanes=2)
        )
        if outcome.loops[-1].applied:
            for n in (0, 1, 2, 5, 64):
                base = run_program(parse_program(source), env={"n": n})
                out = run_program(outcome.program, env={"n": n})
                ignore = {k for k in out if k not in base}
                assert state_equal(base, out, ignore=ignore), f"n={n}"
