"""NamePool and name-collection tests."""

from repro.core.names import NamePool, all_names
from repro.lang import parse_program


class TestNamePool:
    def test_fresh_returns_base_when_free(self):
        pool = NamePool()
        assert pool.fresh("reg") == "reg"

    def test_fresh_suffixes_on_collision(self):
        pool = NamePool({"reg"})
        assert pool.fresh("reg") == "reg_2"
        assert pool.fresh("reg") == "reg_3"

    def test_fresh_registers_result(self):
        pool = NamePool()
        first = pool.fresh("t")
        assert pool.fresh("t") != first

    def test_numbered_skips_taken(self):
        pool = NamePool({"reg1", "reg2"})
        assert pool.numbered("reg") == "reg3"

    def test_numbered_start(self):
        pool = NamePool()
        assert pool.numbered("pred", start=0) == "pred0"

    def test_numbered_sequence(self):
        pool = NamePool()
        assert [pool.numbered("r") for _ in range(3)] == ["r1", "r2", "r3"]

    def test_reserve(self):
        pool = NamePool()
        pool.reserve({"a", "b"})
        assert pool.fresh("a") == "a_2"


class TestAllNames:
    def test_collects_scalars_and_arrays(self):
        prog = parse_program(
            "float A[4]; x = A[i] + y; B[j] = 0.0;"
        )
        names = all_names(prog)
        assert {"A", "B", "x", "y", "i", "j"} <= names

    def test_decl_names_included(self):
        # Declared-but-unused names must be reserved too, or an SLMS
        # temporary could clobber a user variable.
        prog = parse_program("float q;")
        assert "q" in all_names(prog)

    def test_call_names_included(self):
        prog = parse_program("x = helper(1);")
        assert "helper" in all_names(prog)
