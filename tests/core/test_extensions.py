"""Tests for the §10 extensions: while-loop SLMS and frequent-path SLMS."""

import pytest

from repro.core.extensions import frequent_path_slms, pipeline_while, unroll_while
from repro.lang import parse_program, parse_stmt, to_source
from repro.lang.ast_nodes import While
from repro.sim.interp import run_program, state_equal
from repro.transforms.errors import TransformError


def _check(setup, loop_src, transform, ignore=(), envs=(None,)):
    loop = parse_stmt(loop_src)
    replacement = transform(loop)
    for env in envs:
        base = run_program(parse_program(setup + loop_src), env=env)
        prog = parse_program(setup)
        prog.body.extend(replacement)
        out = run_program(prog, env=env)
        assert state_equal(base, out, ignore=set(ignore)), loop_src
    return replacement


STRING_COPY_SETUP = """
float a[64];
for (k = 0; k < 40; k++) a[k] = 40 - k;
a[40] = 0.0;
int i = 0;
"""


class TestUnrollWhile:
    def test_paper_string_copy(self):
        stmts = _check(
            STRING_COPY_SETUP,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            lambda lp: unroll_while(lp, 2),
        )
        unrolled = stmts[0]
        assert isinstance(unrolled, While)
        assert "&&" in to_source(unrolled.cond)

    def test_factor_three(self):
        _check(
            STRING_COPY_SETUP,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            lambda lp: unroll_while(lp, 3),
        )

    def test_odd_length_residual(self):
        setup = STRING_COPY_SETUP.replace("a[40] = 0.0;", "a[37] = 0.0;")
        _check(
            setup,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            lambda lp: unroll_while(lp, 2),
        )

    def test_empty_string(self):
        setup = "float a[64];\nint i = 0;\n"  # all zeros: zero trips
        _check(
            setup,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            lambda lp: unroll_while(lp, 2),
        )

    def test_condition_clobber_rejected(self):
        # Store a[i+3] lands exactly on the next shifted condition read.
        loop = parse_stmt("while (a[i+2]) { a[i+3] = 0.0; i++; }")
        with pytest.raises(TransformError):
            unroll_while(loop, 2)

    def test_no_increment_rejected(self):
        loop = parse_stmt("while (a[0] > 0.0) { a[0] -= 1.0; }")
        with pytest.raises(TransformError):
            unroll_while(loop, 2)

    def test_downward_index(self):
        setup = """
        float a[64];
        for (k = 20; k < 60; k++) a[k] = k;
        a[19] = 0.0;
        int i = 57;
        """
        _check(
            setup,
            "while (a[i-2]) { a[i] = a[i-2]; i--; }",
            lambda lp: unroll_while(lp, 2),
        )


class TestPipelineWhile:
    def test_paper_string_copy(self):
        stmts = _check(
            STRING_COPY_SETUP,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            pipeline_while,
            ignore={"reg1", "reg2"},
        )
        text = "\n".join(to_source(s, style="paper") for s in stmts)
        assert "reg1" in text and "reg2" in text
        assert "||" in text

    def test_various_lengths(self):
        for stop in (2, 3, 4, 5, 11, 38):
            setup = (
                "float a[64];\n"
                "for (k = 0; k < 40; k++) a[k] = 40 - k;\n"
                f"a[{stop}] = 0.0;\n"
                "int i = 0;\n"
            )
            _check(
                setup,
                "while (a[i+2]) { a[i] = a[i+2]; i++; }",
                pipeline_while,
                ignore={"reg1", "reg2"},
            )

    def test_zero_trip(self):
        setup = "float a[64];\nint i = 0;\n"
        _check(
            setup,
            "while (a[i+2]) { a[i] = a[i+2]; i++; }",
            pipeline_while,
            ignore={"reg1", "reg2"},
        )

    def test_flow_dependent_copy_rejected(self):
        loop = parse_stmt("while (a[i+2]) { a[i+2] = a[i]; i++; }")
        with pytest.raises(TransformError):
            pipeline_while(loop)

    def test_unguarded_load_rejected(self):
        # Condition tests a[i+2] but the load reads b[i+2]: the rotated
        # load would touch unchecked memory.
        loop = parse_stmt("while (a[i+2]) { a[i] = b[i+2]; i++; }")
        with pytest.raises(TransformError):
            pipeline_while(loop)

    def test_multi_statement_rejected(self):
        loop = parse_stmt(
            "while (a[i+2]) { a[i] = a[i+2]; b[i] = a[i]; i++; }"
        )
        with pytest.raises(TransformError):
            pipeline_while(loop)


FREQ_SETUP = """
float x[128], y[128], z[128];
for (k = 0; k < 128; k++) {
    x[k] = 0.5 * k + 1.0;
    y[k] = 0.0;
    z[k] = 128 - k;
}
x[50] = -1.0;
x[51] = -2.0;
x[90] = -3.0;
"""


class TestFrequentPath:
    LOOP = (
        "for (i = 0; i < 120; i++) {"
        " if (x[i] > 0.0) { y[i] = x[i] * 2.0; }"
        " else { y[i] = 0.0 - x[i]; }"
        " z[i] = z[i] + y[i];"
        "}"
    )

    def test_semantics_mixed_paths(self):
        _check(FREQ_SETUP, self.LOOP, frequent_path_slms, ignore={"i"})

    def test_all_hot(self):
        setup = FREQ_SETUP.replace("x[50] = -1.0;", "").replace(
            "x[51] = -2.0;", ""
        ).replace("x[90] = -3.0;", "")
        _check(setup, self.LOOP, frequent_path_slms, ignore={"i"})

    def test_all_cold(self):
        setup = FREQ_SETUP + "for (k = 0; k < 128; k++) x[k] = -1.0;\n"
        _check(setup, self.LOOP, frequent_path_slms, ignore={"i"})

    def test_zero_trip(self):
        loop = self.LOOP.replace("i < 120", "i < 0")
        _check(FREQ_SETUP, loop, frequent_path_slms, ignore={"i"})

    def test_kernel_row_is_pargroup(self):
        loop = parse_stmt(self.LOOP)
        stmts = frequent_path_slms(loop)
        text = "\n".join(to_source(s, style="paper") for s in stmts)
        assert "||" in text

    def test_multi_statement_sections(self):
        loop_src = (
            "for (i = 0; i < 100; i++) {"
            " if (x[i] > 0.0) { y[i] = x[i]; z[i] = x[i] * 0.5; }"
            " else { y[i] = 0.0; }"
            " z[i+1] = z[i+1] + 1.0;"
            "}"
        )
        _check(FREQ_SETUP, loop_src, frequent_path_slms, ignore={"i"})

    def test_store_feeding_condition_rejected(self):
        loop = parse_stmt(
            "for (i = 0; i < 100; i++) {"
            " if (x[i] > 0.0) { y[i] = 1.0; } else { y[i] = 2.0; }"
            " x[i+1] = 0.0 - x[i+1];"
            "}"
        )
        with pytest.raises(TransformError):
            frequent_path_slms(loop)

    def test_scalar_feeding_condition_rejected(self):
        loop = parse_stmt(
            "for (i = 0; i < 100; i++) {"
            " if (t > 0.0) { y[i] = 1.0; } else { y[i] = 2.0; }"
            " t = x[i];"
            "}"
        )
        with pytest.raises(TransformError):
            frequent_path_slms(loop)

    def test_no_else_rejected(self):
        loop = parse_stmt(
            "for (i = 0; i < 10; i++) { if (x[i] > 0.0) y[i] = 1.0; z[i] = 1.0; }"
        )
        with pytest.raises(TransformError):
            frequent_path_slms(loop)

    def test_missing_tail_rejected(self):
        loop = parse_stmt(
            "for (i = 0; i < 10; i++) { if (x[i] > 0.0) y[i] = 1.0; else y[i] = 2.0; }"
        )
        with pytest.raises(TransformError):
            frequent_path_slms(loop)
