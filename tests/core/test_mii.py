"""Unit tests for MII computation: cycle ratio, difMin, valid-II search."""

import pytest

from repro.analysis.ddg import Dependence, DependenceGraph, build_ddg
from repro.analysis.delays import edge_delay
from repro.analysis.loopinfo import LoopInfo
from repro.core.mii import (
    difmin_feasible,
    find_valid_ii,
    pmii_cycle_ratio,
    pmii_difmin,
)
from repro.lang import parse_stmt


def graph_from(edges, n):
    g = DependenceGraph(n=n)
    for kind, src, dst, distance in edges:
        g.add(
            Dependence(
                kind=kind,
                src=src,
                dst=dst,
                var="v",
                distance=distance,
                delay=edge_delay(src, dst),
            )
        )
    return g


def ddg_of(source):
    loop = parse_stmt(source)
    info = LoopInfo.from_for(loop)
    return build_ddg(loop.body, info)


class TestDelays:
    def test_self_delay(self):
        assert edge_delay(3, 3) == 1

    def test_consecutive_delay(self):
        assert edge_delay(2, 3) == 1

    def test_forward_delay_is_span(self):
        assert edge_delay(1, 4) == 3

    def test_back_edge_delay(self):
        assert edge_delay(4, 1) == 1


class TestCycleRatio:
    def test_acyclic_graph_has_no_pmii(self):
        g = graph_from([("flow", 0, 1, 0)], 2)
        assert pmii_cycle_ratio(g) is None

    def test_self_loop_distance_one(self):
        g = graph_from([("flow", 0, 0, 1)], 1)
        assert pmii_cycle_ratio(g) == 1

    def test_self_loop_distance_two(self):
        # delay 1 over distance 2: ratio ceil(1/2) = 1.
        g = graph_from([("flow", 0, 0, 2)], 1)
        assert pmii_cycle_ratio(g) == 1

    def test_two_node_cycle(self):
        # 0->1 (delay 1, d 0), 1->0 (delay 1, d 1): (1+1)/1 = 2.
        g = graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2)
        assert pmii_cycle_ratio(g) == 2

    def test_figure8_graph(self):
        # Paper Fig. 8: nodes c,d,e,f at positions 0..3.
        # C1 = c->d->e->f->c with distances 0,2,0,2 (delay 1 each): MII 1.
        # C2 = c->d->f->c with d->f forward delay 2, distances 0,0,2: MII 2.
        g = graph_from(
            [
                ("flow", 0, 1, 0),
                ("flow", 1, 2, 2),
                ("flow", 2, 3, 0),
                ("flow", 3, 0, 2),
                ("flow", 1, 3, 0),
            ],
            4,
        )
        assert pmii_cycle_ratio(g) == 2

    def test_zero_distance_cycle_rejected(self):
        g = graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 0)], 2)
        with pytest.raises(ValueError):
            pmii_cycle_ratio(g)


class TestDifMin:
    def test_agrees_with_cycle_ratio_on_small_graphs(self):
        cases = [
            graph_from([("flow", 0, 0, 1)], 1),
            graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2),
            graph_from(
                [
                    ("flow", 0, 1, 0),
                    ("flow", 1, 2, 2),
                    ("flow", 2, 3, 0),
                    ("flow", 3, 0, 2),
                    ("flow", 1, 3, 0),
                ],
                4,
            ),
            graph_from(
                [("flow", 0, 2, 0), ("flow", 2, 0, 3), ("anti", 1, 1, 1)], 3
            ),
        ]
        for g in cases:
            ratio = pmii_cycle_ratio(g)
            difmin = pmii_difmin(g)
            assert difmin == (ratio if ratio is not None else 1)

    def test_feasibility_monotone_in_ii(self):
        g = graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2)
        feasible = [difmin_feasible(g, ii) for ii in range(1, 5)]
        # Once feasible, stays feasible.
        first = feasible.index(True)
        assert all(feasible[first:])

    def test_infeasible_below_pmii(self):
        g = graph_from([("flow", 0, 1, 0), ("flow", 1, 0, 1)], 2)
        assert not difmin_feasible(g, 1)
        assert difmin_feasible(g, 2)


class TestValidII:
    def test_no_edges_gives_ii_1(self):
        g = graph_from([], 3)
        assert find_valid_ii(g, 3) == 1

    def test_dot_product_ii_1(self):
        # t = A[i]*B[i]; s = s + t; — anti back edge allows II=1.
        g = ddg_of(
            "for (i = 0; i < 100; i++) { t = A[i] * B[i]; s = s + t; }"
        )
        assert find_valid_ii(g, 2) == 1

    def test_flow_back_edge_forces_larger_ii(self):
        # Value defined in MI1 consumed by MI0 next iteration: II >= 2
        # is impossible with only 2 MIs -> None.
        g = graph_from([("flow", 1, 0, 1)], 2)
        assert find_valid_ii(g, 2) is None

    def test_flow_back_edge_with_three_mis(self):
        g = graph_from([("flow", 2, 0, 1)], 3)
        # slack = II - 2 >= 1 -> II = 3, but II < 3 required -> None.
        assert find_valid_ii(g, 3) is None
        # Distance 2 halves the requirement: 2*II - 2 >= 1 -> II = 2.
        g2 = graph_from([("flow", 2, 0, 2)], 3)
        assert find_valid_ii(g2, 3) == 2

    def test_ii_must_beat_sequential(self):
        g = graph_from([("flow", 1, 0, 1)], 2)
        assert find_valid_ii(g, 2, max_ii=10) is None

    def test_valid_ii_at_least_pmii(self):
        # Fixed placement can never beat the recurrence bound.
        samples = [
            "for (i = 0; i < 50; i++) { t = A[i] * B[i]; s = s + t; }",
            "for (i = 1; i < 50; i++) { A[i] = B[i]; C[i] = A[i-1]; }",
            "for (i = 1; i < 50; i++) { t = A[i-1]; A[i] = t + 1.0; B[i] = t; }",
        ]
        for src in samples:
            g = ddg_of(src)
            ii = find_valid_ii(g, g.n)
            pmii = pmii_cycle_ratio(g)
            if ii is not None and pmii is not None:
                assert ii >= min(pmii, g.n - 1) or ii >= 1

    def test_hydro_like_loop_ii_1(self):
        g = ddg_of(
            """
            for (ky = 1; ky < 100; ky++) {
                DU1[ky] = U1[ky+1] - U1[ky-1];
                U1[ky+101] = U1[ky] + 2.0 * DU1[ky];
            }
            """
        )
        assert find_valid_ii(g, 2) == 1
