"""Unit tests for prologue/kernel/epilogue construction."""

import pytest

from repro.analysis.loopinfo import LoopInfo
from repro.core.schedule import ShortTripCount, build_modulo_schedule
from repro.lang import ParGroup, parse_program, parse_stmt, to_source
from repro.sim.interp import run_program, state_equal


def schedule_loop(source, ii):
    loop = parse_stmt(source)
    info = LoopInfo.from_for(loop)
    assert info is not None
    return build_modulo_schedule(loop.body, info, ii), loop, info


class TestStructure:
    SRC = (
        "for (i = 0; i < 10; i++) { A[i] = B[i]; C[i] = A[i]; "
        "D[i] = C[i]; E[i] = D[i]; }"
    )

    def test_stage_count(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert sched.stages == 2

    def test_prologue_row_count(self):
        # (S-1)*II rows.
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert len(sched.prologue) == 2

    def test_kernel_row_count(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert len(sched.kernel_rows) == 2

    def test_epilogue_rows_plus_index_restore(self):
        # n - II rows plus the loop-variable restoration statement.
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert len(sched.epilogue) == (4 - 2) + 1

    def test_kernel_bound_shrinks(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert to_source(sched.kernel_loop.cond) == "i < 9"

    def test_kernel_rows_are_pargroups_when_parallel(self):
        sched, _, _ = schedule_loop(self.SRC, 1)
        assert any(isinstance(s, ParGroup) for s in sched.kernel_loop.body)

    def test_invalid_ii_rejected(self):
        with pytest.raises(ValueError):
            schedule_loop(self.SRC, 4)  # II must be < n
        with pytest.raises(ValueError):
            schedule_loop(self.SRC, 0)

    def test_single_mi_rejected(self):
        with pytest.raises(ValueError):
            schedule_loop("for (i = 0; i < 10; i++) { A[i] = 0.0; }", 1)

    def test_short_trip_raises(self):
        with pytest.raises(ShortTripCount):
            schedule_loop(
                "for (i = 0; i < 1; i++) { A[i] = B[i]; C[i] = A[i]; }", 1
            )


class TestPaperFigure1:
    """The 6-MI, II=2 table of Fig. 1 (checked structurally)."""

    SRC = (
        "for (i = 1; i < 9; i++) { S0[i] = 0.0; S1[i] = 0.0; S2[i] = 0.0;"
        " S3[i] = 0.0; S4[i] = 0.0; S5[i] = 0.0; }"
    )

    def test_stages(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        assert sched.stages == 3

    def test_kernel_row_contents(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        row0 = [to_source(s) for s in sched.kernel_rows[0]]
        row1 = [to_source(s) for s in sched.kernel_rows[1]]
        # Fig. 1 kernel: S4(i); S2(i+1); S0(i+2) / S5(i); S3(i+1); S1(i+2)
        assert row0 == ["S4[i] = 0.0;", "S2[i + 1] = 0.0;", "S0[i + 2] = 0.0;"]
        assert row1 == ["S5[i] = 0.0;", "S3[i + 1] = 0.0;", "S1[i + 2] = 0.0;"]

    def test_prologue_first_rows(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        texts = [to_source(s, style="paper") for s in sched.prologue]
        assert texts[0] == "S0[1] = 0.0;"
        assert texts[1] == "S1[1] = 0.0;"
        assert texts[2] == "S2[1] = 0.0; || S0[2] = 0.0;"
        assert texts[3] == "S3[1] = 0.0; || S1[2] = 0.0;"

    def test_epilogue_first_rows(self):
        sched, _, _ = schedule_loop(self.SRC, 2)
        texts = [to_source(s, style="paper") for s in sched.epilogue]
        # After the kernel i = 7 (= n-2 in paper terms, n = 9).
        assert texts[0] == "S4[i] = 0.0; || S2[i + 1] = 0.0;"
        assert texts[1] == "S5[i] = 0.0; || S3[i + 1] = 0.0;"
        assert texts[2] == "S4[i + 1] = 0.0;"
        assert texts[3] == "S5[i + 1] = 0.0;"


class TestSemanticPreservation:
    def _check(self, body, n=17, lo=0, decls="float A[40], B[40], C[40], D[40], E[40];", ii_list=(1, 2, 3)):
        init = (
            f"{decls}\n"
            f"for (i = 0; i < 40; i++) {{ A[i] = i * 0.5; B[i] = 40 - i; }}\n"
        )
        loop_src = f"for (i = {lo}; i < {n}; i++) {{ {body} }}"
        original = parse_program(init + loop_src)
        base = run_program(original)
        loop = parse_stmt(loop_src)
        info = LoopInfo.from_for(loop)
        n_mis = len(loop.body)
        for ii in ii_list:
            if not 1 <= ii < n_mis:
                continue
            try:
                sched = build_modulo_schedule(loop.body, info, ii)
            except ShortTripCount:
                continue
            pipelined = parse_program(init)
            pipelined.body.extend(sched.stmts())
            out = run_program(pipelined)
            assert state_equal(base, out), f"ii={ii} body={body}"

    def test_independent_statements(self):
        self._check("C[i] = A[i] + 1.0; D[i] = B[i] * 2.0; E[i] = A[i] - B[i];")

    def test_forward_flow(self):
        self._check("C[i] = A[i]; D[i] = C[i] + 1.0;")

    def test_loop_carried_flow(self):
        self._check("C[i+1] = A[i]; D[i] = C[i];", lo=0)

    def test_read_ahead(self):
        self._check("C[i] = A[i+2] + B[i]; D[i] = C[i];", n=30)

    def test_step_two(self):
        loop_src = "for (i = 0; i < 20; i += 2) { C[i] = A[i]; D[i] = C[i] + B[i]; }"
        init = (
            "float A[40], B[40], C[40], D[40];\n"
            "for (i = 0; i < 40; i++) { A[i] = i * 1.5; B[i] = i; }\n"
        )
        original = parse_program(init + loop_src)
        base = run_program(original)
        loop = parse_stmt(loop_src)
        info = LoopInfo.from_for(loop)
        sched = build_modulo_schedule(loop.body, info, 1)
        pipelined = parse_program(init)
        pipelined.body.extend(sched.stmts())
        assert state_equal(base, run_program(pipelined))

    def test_downward_loop(self):
        loop_src = "for (i = 19; i > 1; i--) { C[i] = A[i]; D[i] = C[i] + 1.0; }"
        init = (
            "float A[40], C[40], D[40];\n"
            "for (i = 0; i < 40; i++) { A[i] = i * 2.0; }\n"
        )
        original = parse_program(init + loop_src)
        base = run_program(original)
        loop = parse_stmt(loop_src)
        info = LoopInfo.from_for(loop)
        assert info is not None and info.step == -1
        sched = build_modulo_schedule(loop.body, info, 1)
        pipelined = parse_program(init)
        pipelined.body.extend(sched.stmts())
        assert state_equal(base, run_program(pipelined))

    def test_trip_equals_stages(self):
        # Minimum legal trip count: everything lands in prologue+epilogue.
        loop_src = "for (i = 0; i < 2; i++) { C[i] = A[i]; D[i] = C[i]; }"
        init = "float A[8], C[8], D[8];\nfor (i = 0; i < 8; i++) A[i] = i;\n"
        original = parse_program(init + loop_src)
        base = run_program(original)
        loop = parse_stmt(loop_src)
        sched = build_modulo_schedule(loop.body, LoopInfo.from_for(loop), 1)
        pipelined = parse_program(init)
        pipelined.body.extend(sched.stmts())
        assert state_equal(base, run_program(pipelined))


class TestSymbolicBoundsGuard:
    def test_guard_emitted_for_symbolic_bound(self):
        loop = parse_stmt("for (i = 0; i < n; i++) { C[i] = A[i]; D[i] = C[i]; }")
        info = LoopInfo.from_for(loop)
        sched = build_modulo_schedule(loop.body, info, 1)
        assert sched.guard is not None
        assert len(sched.stmts()) == 1

    def test_guard_semantics_across_trip_counts(self):
        loop_src = "for (i = 0; i < n; i++) { C[i] = A[i]; D[i] = C[i] + 1.0; }"
        init = "float A[30], C[30], D[30];\nfor (i = 0; i < 30; i++) A[i] = i;\n"
        loop = parse_stmt(loop_src)
        info = LoopInfo.from_for(loop)
        sched = build_modulo_schedule(loop.body, info, 1)
        for n in [0, 1, 2, 3, 7, 30]:
            original = parse_program(init + loop_src)
            base = run_program(original, env={"n": n})
            pipelined = parse_program(init)
            pipelined.body.extend(sched.stmts())
            out = run_program(pipelined, env={"n": n})
            assert state_equal(base, out), f"n={n}"
