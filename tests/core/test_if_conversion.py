"""Unit tests for source-level if-conversion (§3.1)."""

from repro.core.if_conversion import if_convert
from repro.core.names import NamePool
from repro.lang import If, parse_program, to_source
from repro.sim.interp import run_program, state_equal

import numpy as np


def convert(source):
    prog = parse_program(source)
    pool = NamePool({"x", "y", "c", "A", "i", "max", "arr"})
    return if_convert(list(prog.body), pool)


class TestBasicConversion:
    def test_paper_example_shape(self):
        # §3.1: if (x<y) { x=x+1; A[i]+=x; } else y=y+1;
        result = convert(
            "if (x < y) { x = x + 1; A[i] += x; } else y = y + 1;"
        )
        texts = [to_source(s) for s in result.stmts]
        assert texts[0] == "pred0 = x < y;"
        assert texts[1] == "if (pred0) {\n    x = x + 1;\n}"
        assert texts[2] == "if (pred0) {\n    A[i] += x;\n}"
        assert texts[3] == "if (!pred0) {\n    y = y + 1;\n}"
        assert result.predicates == ["pred0"]
        assert result.converted

    def test_if_without_else(self):
        result = convert("if (max < arr[i]) max = arr[i];")
        assert len(result.stmts) == 2
        assert to_source(result.stmts[0]) == "pred0 = max < arr[i];"

    def test_plain_statements_pass_through(self):
        result = convert("x = 1; y = 2;")
        assert len(result.stmts) == 2
        assert not result.converted
        assert result.predicates == []

    def test_each_output_is_single_mi(self):
        result = convert("if (c) { x = 1; y = 2; }")
        for stmt in result.stmts:
            if isinstance(stmt, If):
                assert len(stmt.then) == 1
                assert not stmt.els

    def test_fresh_predicate_names(self):
        prog = parse_program("if (c > 0) x = 1;")
        pool = NamePool({"pred0", "c", "x"})
        result = if_convert(list(prog.body), pool)
        assert result.predicates == ["pred1"]

    def test_bare_variable_condition_needs_no_temp(self):
        # if (c) s; is already in predicated form — reused as-is.
        prog = parse_program("if (c) x = 1;")
        pool = NamePool({"c", "x"})
        result = if_convert(list(prog.body), pool)
        assert result.predicates == []
        assert to_source(result.stmts[0]) == "if (c) {\n    x = 1;\n}"


class TestNestedIfs:
    def test_nested_then(self):
        result = convert("if (c) { if (x < y) x = 1; }")
        # pred for outer, pred for inner; inner statement guarded by both.
        assert len(result.predicates) == 2
        inner = result.stmts[-1]
        assert isinstance(inner, If)
        assert "&&" in to_source(inner.cond)

    def test_else_if_chain(self):
        result = convert("if (c) x = 1; else if (x < y) x = 2; else x = 3;")
        assert len(result.predicates) == 2


class TestSemantics:
    def _states(self, body_src, env):
        original = parse_program(body_src)
        pool = NamePool(set(env) | {"pred0", "pred1"})
        result = if_convert(list(original.body), pool)
        from repro.lang.ast_nodes import Program

        converted = Program(result.stmts)
        a = run_program(original, env=env)
        b = run_program(converted, env=env)
        return a, b, set(result.predicates)

    def test_then_branch_semantics(self):
        a, b, preds = self._states(
            "if (x < y) { x = x + 1; } else { y = y + 1; }",
            {"x": 1, "y": 5},
        )
        assert state_equal(a, b, ignore=preds)

    def test_else_branch_semantics(self):
        a, b, preds = self._states(
            "if (x < y) { x = x + 1; } else { y = y + 1; }",
            {"x": 9, "y": 5},
        )
        assert state_equal(a, b, ignore=preds)

    def test_predicate_frozen_before_mutation(self):
        # The then-branch changes x, which appears in the condition; the
        # frozen predicate must keep the else branch suppressed.
        a, b, preds = self._states(
            "if (x < y) { x = 100; } else { y = 100; }",
            {"x": 0, "y": 1},
        )
        assert state_equal(a, b, ignore=preds)

    def test_array_side_effects(self):
        a, b, preds = self._states(
            "if (A[0] > 0.0) { A[1] = 5.0; A[2] = 6.0; } else A[3] = 7.0;",
            {"A": np.array([1.0, 0.0, 0.0, 0.0])},
        )
        assert state_equal(a, b, ignore=preds)

    def test_nested_semantics(self):
        for x, y in [(0, 5), (5, 0), (3, 3)]:
            a, b, preds = self._states(
                "if (x < y) { if (x < 2) x = 10; else x = 20; } else y = 30;",
                {"x": x, "y": y},
            )
            assert state_equal(a, b, ignore=preds), (x, y)
