"""Unit tests for scalar expansion (§3.4)."""

import pytest

from repro.analysis.loopinfo import LoopInfo
from repro.core.names import NamePool
from repro.core.scalar_expansion import apply_scalar_expansion
from repro.core.schedule import build_modulo_schedule
from repro.lang import parse_program, parse_stmt, to_source
from repro.sim.interp import run_program, state_equal


def loop_parts(loop_src):
    loop = parse_stmt(loop_src)
    info = LoopInfo.from_for(loop)
    assert info is not None
    return loop.body, info


class TestRewriting:
    def test_def_and_use_become_array_refs(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { reg = A[i+2]; B[i] = reg; }"
        )
        result = apply_scalar_expansion(mis, info, NamePool({"reg", "A", "B"}))
        texts = [to_source(s) for s in result.mis]
        assert texts[0] == "regArr[i + 1] = A[i + 2];"
        assert texts[1] == "B[i] = regArr[i + 1];"

    def test_array_declared_with_margin(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { reg = A[i]; B[i] = reg; }"
        )
        result = apply_scalar_expansion(mis, info, NamePool(set()))
        decl = result.new_decls[0]
        assert decl.name == "regArr"
        assert decl.dims[0] >= 21

    def test_previous_iteration_use(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { B[i] = t; t = A[i]; }"
        )
        result = apply_scalar_expansion(mis, info, NamePool(set()))
        texts = [to_source(s) for s in result.mis]
        assert texts[0] == "B[i] = tArr[i];"
        assert texts[1] == "tArr[i + 1] = A[i];"
        assert len(result.preheader) == 1
        assert to_source(result.preheader[0]) == "tArr[0] = t;"

    def test_liveout_restored(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { t = A[i]; B[i] = t; }"
        )
        result = apply_scalar_expansion(mis, info, NamePool(set()))
        assert [to_source(s) for s in result.liveout] == ["t = tArr[20];"]

    def test_symbolic_bounds_rejected(self):
        mis, info = loop_parts(
            "for (i = 0; i < n; i++) { t = A[i]; B[i] = t; }"
        )
        with pytest.raises(ValueError):
            apply_scalar_expansion(mis, info, NamePool(set()))

    def test_only_filter(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { t = A[i]; u = B[i]; C[i] = t + u; }"
        )
        result = apply_scalar_expansion(
            mis, info, NamePool(set()), only={"t"}
        )
        assert len(result.plans) == 1
        assert result.plans[0].var == "t"


class TestSemantics:
    INIT = (
        "float A[64], B[64], C[64];\n"
        "float t = 0.0, reg = 0.0;\n"
        "for (i = 0; i < 64; i++) { A[i] = 0.5 * i + 1.0; }\n"
    )

    def _check(self, loop_src, ii=1):
        mis, info = loop_parts(loop_src)
        pool = NamePool({"A", "B", "C", "t", "reg", "i"})
        expanded = apply_scalar_expansion(mis, info, pool)
        schedule = build_modulo_schedule(expanded.mis, info, ii)
        original = parse_program(self.INIT + loop_src)
        base = run_program(original)
        transformed = parse_program(self.INIT)
        transformed.body.extend(expanded.new_decls)
        transformed.body.extend(expanded.preheader)
        transformed.body.extend(schedule.stmts())
        transformed.body.extend(expanded.liveout)
        out = run_program(transformed)
        new_arrays = {p.array for p in expanded.plans}
        assert state_equal(base, out, ignore=new_arrays)

    def test_paper_34_example(self):
        self._check(
            "for (i = 2; i < 60; i++) { reg = A[i+2]; "
            "A[i] = A[i-1] + A[i-2] + A[i+1] + reg; }"
        )

    def test_previous_iteration_value(self):
        self._check(
            "for (i = 0; i < 40; i++) { B[i] = t; t = A[i] * 2.0; }"
        )

    def test_step_two(self):
        self._check(
            "for (i = 0; i < 40; i += 2) { t = A[i+2]; B[i] = t + 1.0; }"
        )

    def test_with_ii_2(self):
        self._check(
            "for (i = 1; i < 40; i++) { t = A[i+1]; B[i] = t; "
            "reg = A[i]; C[i] = reg * t; }",
            ii=2,
        )
