"""Unit tests for Modulo Variable Expansion (§3.3)."""

from repro.analysis.loopinfo import LoopInfo
from repro.core.mve import apply_mve, eligible_scalars, plan_rotations
from repro.core.names import NamePool
from repro.lang import parse_program, parse_stmt, to_source
from repro.sim.interp import run_program, state_equal


def loop_parts(loop_src):
    loop = parse_stmt(loop_src)
    info = LoopInfo.from_for(loop)
    assert info is not None
    return loop.body, info


class TestEligibility:
    def test_plain_single_def_eligible(self):
        mis, _ = loop_parts(
            "for (i = 0; i < 10; i++) { t = A[i]; B[i] = t; }"
        )
        assert eligible_scalars(mis, "i") == {"t": 0}

    def test_compound_def_excluded(self):
        mis, _ = loop_parts("for (i = 0; i < 10; i++) { s += A[i]; }")
        assert eligible_scalars(mis, "i") == {}

    def test_self_reading_def_excluded(self):
        mis, _ = loop_parts("for (i = 0; i < 10; i++) { t = t + A[i]; }")
        assert eligible_scalars(mis, "i") == {}

    def test_conditional_def_excluded(self):
        mis, _ = loop_parts(
            "for (i = 0; i < 10; i++) { if (c) t = A[i]; B[i] = t; }"
        )
        assert eligible_scalars(mis, "i") == {}

    def test_multi_def_excluded(self):
        mis, _ = loop_parts(
            "for (i = 0; i < 10; i++) { t = A[i]; B[i] = t; t = C[i]; }"
        )
        assert eligible_scalars(mis, "i") == {}

    def test_index_var_excluded(self):
        mis, _ = loop_parts("for (i = 0; i < 10; i++) { A[i] = 1.0; }")
        assert "i" not in eligible_scalars(mis, "i")


class TestRotationPlanning:
    def test_paper_332_lifetime(self):
        # reg defined in MI0 (stage 0), used in MI1 (stage 1) at II=1:
        # lifetime 1, unroll 2 — the paper's reg1/reg2.
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { reg = A[i+2]; "
            "A[i] = A[i-1] + reg; }"
        )
        plans = plan_rotations(mis, info, 1, NamePool({"reg", "A", "i"}))
        assert len(plans) == 1
        assert plans[0].lifetime == 1
        assert plans[0].names == ["reg1", "reg2"]

    def test_same_stage_use_needs_no_rotation(self):
        # II=2 puts def and use in the same stage: lifetime 0.
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { t = A[i]; B[i] = t; }"
        )
        plans = plan_rotations(mis, info, 2, NamePool(set()))
        assert plans == []

    def test_fig7_two_scalars_two_names_each(self):
        mis, info = loop_parts(
            "for (i = 1; i < 20; i++) { reg = A[i+1]; A[i] = A[i-1] + reg;"
            " scal = B[i] / 2.0; C[i] = scal * 3.0; }"
        )
        plans = plan_rotations(mis, info, 1, NamePool({"reg", "scal"}))
        names = {p.var: p.names for p in plans}
        assert names == {
            "reg": ["reg1", "reg2"],
            "scal": ["scal1", "scal2"],
        }

    def test_longer_lifetime_more_names(self):
        mis, info = loop_parts(
            "for (i = 0; i < 20; i++) { t = A[i]; B[i] = 1.0; C[i] = 1.0;"
            " D[i] = t; }"
        )
        plans = plan_rotations(mis, info, 1, NamePool({"t"}))
        assert len(plans[0].names) == 4  # lifetime 3 at II=1


class TestApplyMVESemantics:
    INIT = (
        "float A[64], B[64], C[64], D[64];\n"
        "float reg = 0.0, scal = 0.0, t = 0.0;\n"
        "for (i = 0; i < 64; i++) { A[i] = i * 0.25 + 1.0; B[i] = 64 - i; }\n"
    )

    def _check(self, loop_src, ii):
        mis, info = loop_parts(loop_src)
        pool = NamePool({"A", "B", "C", "D", "reg", "scal", "t", "i"})
        plans = plan_rotations(mis, info, ii, pool)
        assert plans, "expected rotation plans"
        result = apply_mve(mis, info, ii, plans)
        original = parse_program(self.INIT + loop_src)
        base = run_program(original)
        transformed = parse_program(self.INIT)
        transformed.body.extend(result.new_decls)
        transformed.body.extend(result.stmts)
        out = run_program(transformed)
        new_names = {n for p in result.plans for n in p.names}
        assert state_equal(base, out, ignore=new_names)
        return result

    def test_paper_332_example(self):
        self._check(
            "for (i = 2; i < 60; i++) { reg = A[i+2]; "
            "A[i] = A[i-1] + A[i-2] + A[i+1] + reg; }",
            ii=1,
        )

    def test_fig7_example(self):
        result = self._check(
            "for (i = 1; i < 60; i++) { reg = A[i+1]; A[i] = A[i-1] + reg;"
            " scal = B[i] / 2.0; C[i] = scal * 3.0; }",
            ii=1,
        )
        assert result.unroll == 2

    def test_trip_count_not_divisible_by_unroll(self):
        # 57 iterations, U=2: residual single-kernel instances execute.
        self._check(
            "for (i = 2; i < 59; i++) { reg = A[i+2]; "
            "A[i] = A[i-1] + A[i-2] + reg; }",
            ii=1,
        )

    def test_odd_and_even_trip_counts(self):
        for hi in (58, 59, 60, 61):
            self._check(
                f"for (i = 2; i < {hi}; i++) {{ reg = A[i+2]; "
                "A[i] = A[i-1] + reg; }",
                ii=1,
            )

    def test_live_out_scalar_restored(self):
        result = self._check(
            "for (i = 0; i < 40; i++) { t = A[i] * 2.0; D[i] = t; }",
            ii=1,
        )
        texts = [to_source(s) for s in result.stmts]
        assert any(t.startswith("t = t") for t in texts)

    def test_ii_2_with_four_mis(self):
        self._check(
            "for (i = 1; i < 40; i++) { reg = A[i+1]; C[i] = reg + 1.0;"
            " scal = B[i]; D[i] = scal * reg; }",
            ii=2,
        )

    def test_step_two_loop(self):
        self._check(
            "for (i = 0; i < 40; i += 2) { reg = A[i+2]; "
            "C[i] = reg * 0.5; }",
            ii=1,
        )


class TestKernelShape:
    def test_kernel_is_unrolled(self):
        mis, info = loop_parts(
            "for (i = 2; i < 62; i++) { reg = A[i+2]; A[i] = A[i-1] + reg; }"
        )
        pool = NamePool({"reg", "A", "i"})
        plans = plan_rotations(mis, info, 1, pool)
        result = apply_mve(mis, info, 1, plans)
        loops = [s for s in result.stmts if type(s).__name__ == "For"]
        assert len(loops) == 1
        assert to_source(loops[0].step) == "i += 2;"

    def test_rotated_names_alternate(self):
        mis, info = loop_parts(
            "for (i = 2; i < 62; i++) { reg = A[i+2]; A[i] = A[i-1] + reg; }"
        )
        pool = NamePool({"reg", "A", "i"})
        plans = plan_rotations(mis, info, 1, pool)
        result = apply_mve(mis, info, 1, plans)
        loop = next(s for s in result.stmts if type(s).__name__ == "For")
        text = to_source(loop)
        # Copy 0 consumes reg1 and defines reg2; copy 1 the reverse.
        assert "reg1" in text and "reg2" in text
