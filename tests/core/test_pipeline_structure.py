"""Pipeline structural tests: nesting, while wrappers, report pairing."""


from repro import SLMSOptions, slms
from repro.lang import parse_program, to_source
from repro.sim.interp import run_program, state_equal

OPTIONS = SLMSOptions(enable_filter=False)


def check(source, options=OPTIONS, env=None):
    outcome = slms(source, options)
    base = run_program(parse_program(source), env=env)
    out = run_program(outcome.program, env=env)
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= {k for k in out if k not in base}
    assert state_equal(base, out, ignore=ignore)
    return outcome


class TestNestingShapes:
    def test_loop_inside_while(self):
        source = """
        float A[32];
        k = 0;
        while (k < 3) {
            for (i = 1; i < 30; i++) { A[i] = A[i+1] * 0.5; A[i+1] = A[i]; }
            k = k + 1;
        }
        """
        outcome = check(source)
        assert len(outcome.loops) == 1

    def test_triple_nest_inner_only(self):
        source = """
        float X[6][6][6];
        for (a = 0; a < 6; a++) {
            for (b = 0; b < 6; b++) {
                for (c = 0; c < 5; c++) {
                    X[a][b][c] = X[a][b][c+1] + 1.0;
                    X[a][b][c+1] = X[a][b][c] * 0.5;
                }
            }
        }
        """
        outcome = check(source)
        # Only the innermost loop is attempted.
        assert len(outcome.loops) == 1

    def test_sequential_loops_all_attempted(self):
        source = """
        float A[32], B[32];
        for (i = 0; i < 30; i++) { A[i] = A[i] + 1.0; B[i] = A[i] * 2.0; }
        for (i = 0; i < 30; i++) { B[i] = B[i] - 1.0; A[i] = B[i] * 0.5; }
        """
        outcome = check(source)
        assert len(outcome.loops) == 2
        assert all(r.applied for r in outcome.loops)

    def test_loop_in_if_branch(self):
        source = """
        float A[32];
        c = 1;
        if (c > 0) {
            for (i = 0; i < 30; i++) { A[i] = A[i] + 1.0; A[i] = A[i] * 2.0; }
        }
        """
        # Loops inside if branches are left untransformed (the walker
        # only descends loop bodies) — but semantics must hold.
        outcome = check(source)
        assert to_source(outcome.program)  # still printable

    def test_decl_only_program(self):
        outcome = slms("float A[4];")
        assert outcome.loops == []

    def test_empty_program(self):
        outcome = slms("")
        assert outcome.loops == []


class TestReportsPairing:
    def test_reports_in_traversal_order(self):
        source = """
        float A[32], B[32], CT;
        for (i = 0; i < 30; i++) { A[i] = A[i] + 1.0; B[i] = A[i]; }
        for (i = 0; i < 30; i++) { CT = A[i]; A[i] = B[i]; B[i] = CT; }
        """
        outcome = slms(source)  # filter ON: second loop is the swap
        assert outcome.loops[0].applied
        assert not outcome.loops[1].applied
        assert "memory-ref" in outcome.loops[1].reason
