"""Pinned heuristic-vs-exact gap table over the full corpus.

The refine architecture makes three facts checkable end to end and this
module freezes them:

* both backends reach identical apply/decline verdicts on every corpus
  loop, and the exact backend proves optimality everywhere (no budget
  exhaustion at the default budget);
* the paper's fixed placement is optimal on the whole corpus except one
  loop — kernel16 loop 1, where branch-and-bound finds II 2 against the
  heuristic's 3;
* the default backend stays the heuristic: a default-options transform
  is byte-identical to an explicit ``scheduler="heuristic"`` transform
  (the frozen sweep digest guard in tests/obs/test_overhead.py covers
  the same property against the committed BENCH_sweep.json baseline).
"""

import pytest

from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions
from repro.core.schedulers.compare import compare_schedulers
from repro.lang.printer import to_source
from repro.obs import Tracer, tracing
from repro.workloads.corpus import all_workloads

# The one corpus loop where the identity placement is suboptimal.
EXPECTED_WINS = {("kernel16", 1): (3, 2)}
EXPECTED_SCHEDULED = 84  # loops applied by both backends


@pytest.fixture(scope="module")
def corpus_report():
    return compare_schedulers()


class TestCorpusGapTable:
    def test_verdicts_never_diverge(self, corpus_report):
        bad = [r for r in corpus_report.rows if r.mismatched]
        assert not bad, [
            (r.workload, r.loop, r.heuristic_applied, r.exact_applied)
            for r in bad
        ]

    def test_exact_never_loses(self, corpus_report):
        negative = [
            r for r in corpus_report.rows
            if r.gap is not None and r.gap < 0
        ]
        assert not negative, [
            (r.workload, r.loop, r.heuristic_ii, r.exact_ii)
            for r in negative
        ]

    def test_pinned_win_table(self, corpus_report):
        wins = {
            (r.workload, r.loop): (r.heuristic_ii, r.exact_ii)
            for r in corpus_report.rows
            if r.gap is not None and r.gap > 0
        }
        assert wins == EXPECTED_WINS

    def test_all_proven_at_default_budget(self, corpus_report):
        scheduled = [r for r in corpus_report.rows if r.gap is not None]
        assert len(scheduled) == EXPECTED_SCHEDULED
        assert all(r.proven for r in scheduled)
        assert not any(r.exhausted for r in scheduled)

    def test_report_is_clean_and_schema_tagged(self, corpus_report):
        assert corpus_report.clean
        payload = corpus_report.to_dict()
        assert payload["schema"] == "slms-sched/1"
        assert payload["summary"]["negative_gaps"] == 0
        assert payload["summary"]["wins"] == [
            {
                "workload": "kernel16",
                "loop": 1,
                "heuristic_ii": 3,
                "exact_ii": 2,
            }
        ]


class TestDefaultBackendUnchanged:
    def test_default_transform_matches_explicit_heuristic(self):
        for workload in all_workloads():
            source = workload.full_source()
            default = slms(source, SLMSOptions())
            explicit = slms(source, SLMSOptions(scheduler="heuristic"))
            assert to_source(default.program) == to_source(
                explicit.program
            ), workload.name

    def test_heuristic_path_emits_no_sched_decision_event(self):
        workload = all_workloads()[0]
        with tracing(Tracer()) as tracer:
            slms(workload.full_source(), SLMSOptions())
        names = {e["name"] for e in tracer.to_dict()["events"]}
        assert "sched.decision" not in names

    def test_exact_path_emits_sched_decision_event(self):
        with tracing(Tracer()) as tracer:
            slms(
                "float a[100], b[100];\n"
                "for (i = 0; i < 100; i++) { a[i] = a[i] * 0.5 + b[i]; }",
                SLMSOptions(scheduler="exact"),
            )
        events = [
            e
            for e in tracer.to_dict()["events"]
            if e["name"] == "sched.decision"
        ]
        assert events
        assert events[0]["attrs"]["backend"] == "exact"
