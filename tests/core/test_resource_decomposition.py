"""Driver-level tests for resource-driven decomposition (§3.2, 2nd form)."""

import pytest

from repro import SLMSOptions, slms, to_source
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal

SOURCE = """
float A[64], B[64], C[64], D[64], x[64];
for (i = 0; i < 64; i++) {
    A[i] = 0.1 * i; B[i] = 0.2 * i; C[i] = 0.3 * i; D[i] = 0.4 * i;
}
for (i = 0; i < 60; i++) {
    x[i] = A[i] + B[i] + C[i] + D[i];
}
"""


def outcome_for(options):
    return slms(SOURCE, options)


class TestResourceDecomposition:
    def test_wide_mi_split_under_limits(self):
        # The paper's example: four loads, cap of two -> split in half.
        outcome = outcome_for(
            SLMSOptions(enable_filter=False, resource_limits=(2, 2))
        )
        report = outcome.loops[-1]
        assert report.applied
        text = to_source(outcome.program)
        assert "reg" in text  # the resource temp

    def test_semantics_preserved(self):
        outcome = outcome_for(
            SLMSOptions(enable_filter=False, resource_limits=(2, 2))
        )
        base = run_program(parse_program(SOURCE))
        out = run_program(outcome.program)
        ignore = {n for r in outcome.loops for n in r.new_scalars}
        assert state_equal(base, out, ignore=ignore)

    def test_resource_split_preempts_dependence_decomposition(self):
        # Without limits the single wide MI needs a §3.2 load-hoist
        # decomposition to become pipelineable; with limits the resource
        # split already produced two MIs, so no dependence-driven
        # decomposition is needed.
        wide = outcome_for(SLMSOptions(enable_filter=False))
        narrow = outcome_for(
            SLMSOptions(enable_filter=False, resource_limits=(2, 2))
        )
        assert wide.loops[-1].decompositions == 1
        assert narrow.loops[-1].decompositions == 0
        assert narrow.loops[-1].applied

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            SLMSOptions(resource_limits=(0, 2))

    def test_fitting_body_untouched(self):
        src = """
        float A[32], B[32];
        for (i = 0; i < 30; i++) { B[i] = A[i] + 1.0; A[i] = B[i] * 0.5; }
        """
        with_limits = slms(
            src, SLMSOptions(enable_filter=False, resource_limits=(4, 4))
        )
        without = slms(src, SLMSOptions(enable_filter=False))
        assert with_limits.loops[-1].n_mis == without.loops[-1].n_mis

    def test_split_improves_wide_machine_rows(self):
        # After splitting, each MI fits a 2-load row, so the kernel rows
        # interleave cleanly; just assert the transformation is usable
        # end-to-end through the backend.
        from repro.backend.compiler import compile_and_run
        from repro.machines import itanium2

        outcome = outcome_for(
            SLMSOptions(enable_filter=False, resource_limits=(2, 2))
        )
        _, run = compile_and_run(outcome.program, itanium2(), "gcc_O3")
        base = run_program(parse_program(SOURCE))
        ignore = {n for r in outcome.loops for n in r.new_scalars}
        ignore |= set(run.state) - set(base)
        assert state_equal(base, run.state, ignore=ignore)
