"""Driver-level tests for the full SLMS algorithm (§5)."""

import pytest

from repro import SLMSOptions, slms, slms_loop, to_source
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal


def check_equivalent(source, options=None, env=None):
    """Transform, run both versions, compare state; return reports."""
    outcome = slms(source, options)
    a = run_program(parse_program(source), env=env)
    b = run_program(outcome.program, env=env)
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= {
        p.array
        for r in outcome.loops
        if r.applied and r.expansion == "scalar"
        for p in []
    }
    # Scalar-expansion temp arrays end in "Arr" by construction.
    ignore |= {k for k in b if k.endswith("Arr") and k not in a}
    assert state_equal(a, b, ignore=ignore), source
    return outcome


class TestApplication:
    def test_dot_product_pipelines_at_ii_1(self):
        outcome = check_equivalent(
            """
            float A[32], B[32];
            float s = 0.0, t;
            for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }
            """
        )
        report = outcome.loops[0]
        assert report.applied
        assert report.ii == 1
        assert report.expansion == "mve"

    def test_recurrence_needs_decomposition(self):
        outcome = check_equivalent(
            """
            float A[64];
            for (i = 0; i < 64; i++) A[i] = 1.0 + i;
            for (i = 2; i < 60; i++)
                A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
            """
        )
        report = outcome.loops[-1]
        assert report.applied
        assert report.decompositions == 1
        assert report.ii == 1

    def test_no_dependence_loop_ii_1_no_mve(self):
        outcome = check_equivalent(
            """
            float A[40], B[40], C[40];
            for (i = 1; i < 30; i++) {
                A[i] = A[i] + 1.0;
                B[i] = B[i] * 2.0;
                C[i] = C[i] - 1.0;
            }
            """,
            options=SLMSOptions(enable_filter=False),
        )
        report = outcome.loops[0]
        assert report.applied
        assert report.ii == 1
        assert report.expansion in ("none", "mve")

    def test_scalar_expansion_mode(self):
        outcome = check_equivalent(
            """
            float A[64], B[64];
            for (i = 0; i < 64; i++) A[i] = i * 0.5;
            for (i = 2; i < 60; i++)
                A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
            """,
            options=SLMSOptions(expansion="scalar"),
        )
        report = outcome.loops[-1]
        assert report.applied
        assert report.expansion == "scalar"

    def test_expansion_none_still_correct(self):
        outcome = check_equivalent(
            """
            float A[64], B[64];
            float t;
            for (i = 0; i < 64; i++) B[i] = i;
            for (i = 0; i < 60; i++) { t = B[i+2]; A[i] = t * 2.0; }
            """,
            options=SLMSOptions(expansion="none"),
        )
        report = outcome.loops[-1]
        assert report.applied
        assert report.expansion == "none"

    def test_symbolic_bounds_get_guard(self):
        source = """
        float A[64], B[64];
        for (i = 0; i < n; i++) { A[i] = B[i] + 1.0; B[i] = A[i] * 0.5; }
        """
        for n in [0, 1, 2, 5, 64]:
            check_equivalent(
                source,
                options=SLMSOptions(enable_filter=False),
                env={"n": n},
            )

    def test_predicated_loop_with_force(self):
        outcome = check_equivalent(
            """
            float arr[40];
            float max;
            arr[7] = 9.5;
            max = arr[0];
            for (i = 0; i < 40; i++)
                if (max < arr[i]) max = arr[i];
            """,
            options=SLMSOptions(force=True),
        )
        report = outcome.loops[0]
        assert report.applied
        assert report.decompositions >= 1


class TestDeclines:
    def run(self, source, options=None):
        outcome = slms(source, options)
        return outcome.loops[0]

    def test_memory_bound_loop_filtered(self):
        report = self.run(
            """
            float X[40][40];
            float CT;
            for (k = 0; k < 40; k++) {
                CT = X[k][1];
                X[k][1] = X[k][2] * 2;
                X[k][2] = CT;
            }
            """
        )
        assert not report.applied
        assert "memory-ref ratio" in report.reason

    def test_force_overrides_filter(self):
        report = self.run(
            "float A[40], B[40]; for (i = 0; i < 40; i++) "
            "{ A[i] = B[i]; B[i] = A[i]; }",
            SLMSOptions(force=True),
        )
        assert report.applied

    def test_non_canonical_loop_declined(self):
        report = self.run(
            "float A[40]; for (i = 0; A[i] < 10.0; i++) A[i] = 1.0;"
        )
        assert not report.applied
        assert "canonical" in report.reason

    def test_non_affine_subscript_declined(self):
        report = self.run(
            "float A[40]; int B[40]; for (i = 0; i < 6; i++) "
            "{ A[B[i]] = 1.0; A[i] = A[i] + 2.0; }",
            SLMSOptions(enable_filter=False),
        )
        assert not report.applied
        assert "imprecise" in report.reason

    def test_call_declined(self):
        report = self.run(
            "float A[40]; for (i = 0; i < 40; i++) "
            "{ A[i] = f(i); A[i] = A[i] + 1.0; }",
            SLMSOptions(enable_filter=False),
        )
        assert not report.applied

    def test_undecomposable_recurrence_declined(self):
        # A[i] = A[i-1]*2: the only read has a flow dep with the store.
        report = self.run(
            "float A[40]; for (i = 1; i < 40; i++) A[i] = A[i-1] * 2.0;",
            SLMSOptions(enable_filter=False),
        )
        assert not report.applied

    def test_short_trip_declined(self):
        report = self.run(
            "float A[8], B[8]; for (i = 0; i < 1; i++) "
            "{ A[i] = B[i] * 2.0; B[i] = A[i] + 1.0; }",
            SLMSOptions(enable_filter=False),
        )
        assert not report.applied

    def test_break_declined(self):
        report = self.run(
            "float A[40]; for (i = 0; i < 40; i++) "
            "{ A[i] = A[i] + 1.0; if (i > 3) break; }",
            SLMSOptions(enable_filter=False),
        )
        assert not report.applied


class TestNestedLoops:
    def test_inner_loop_transformed(self):
        source = """
        float X[10][20], Y[20];
        for (j = 0; j < 10; j++) {
            for (i = 1; i < 18; i++) {
                X[j][i] = X[j][i+1] + 1.0;
                Y[i] = X[j][i] * 2.0;
            }
        }
        """
        outcome = check_equivalent(
            source, options=SLMSOptions(enable_filter=False)
        )
        assert any(r.applied for r in outcome.loops)

    def test_outer_loop_untouched(self):
        source = """
        float X[6][6];
        for (j = 0; j < 6; j++) {
            for (i = 0; i < 6; i++) {
                X[j][i] = 1.0;
            }
        }
        """
        outcome = slms(source, SLMSOptions(enable_filter=False))
        # Inner loop has one MI -> needs decomposition; the only read
        # is none (constant RHS), so it declines; outer is skipped.
        assert len(outcome.loops) == 1


class TestReporting:
    def test_report_fields_populated(self):
        _, report = slms_loop(
            """
            float A[32], B[32];
            float t, s = 0.0;
            for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }
            """
        )
        assert report.n_mis == 2
        assert report.stages == 2
        assert report.pmii is None or report.pmii >= 1
        assert report.filter_verdict is not None
        assert report.ddg is not None

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SLMSOptions(expansion="bogus")

    def test_no_loop_raises(self):
        with pytest.raises(ValueError):
            slms_loop("x = 1;")

    def test_input_program_not_mutated(self):
        source = """
        float A[32], B[32];
        float t, s = 0.0;
        for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }
        """
        prog = parse_program(source)
        before = to_source(prog)
        slms(prog)
        assert to_source(prog) == before


class TestParallelismExposed:
    def test_kernel_contains_pargroups(self):
        transformed, report = slms_loop(
            """
            float A[32], B[32];
            float t, s = 0.0;
            for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }
            """
        )
        assert report.applied
        text = to_source(transformed, style="paper")
        assert "||" in text
