"""Unit tests for the integer feasibility core (omega-lite)."""

from repro.analysis.fourier_motzkin import (
    FEASIBLE,
    INFEASIBLE,
    MAYBE,
    IntegerSystem,
    is_feasible,
)


class TestEqualities:
    def test_trivially_feasible(self):
        s = IntegerSystem()
        s.add_eq({"x": 1}, -5)  # x = 5
        assert is_feasible(s) == FEASIBLE

    def test_contradictory_constants(self):
        s = IntegerSystem()
        s.add_eq({}, 3)  # 3 = 0
        assert is_feasible(s) == INFEASIBLE

    def test_gcd_test_refutes(self):
        s = IntegerSystem()
        s.add_eq({"x": 2, "y": 4}, 1)  # 2x + 4y + 1 = 0: parity
        assert is_feasible(s) == INFEASIBLE

    def test_gcd_passes_then_feasible(self):
        s = IntegerSystem()
        s.add_eq({"x": 2, "y": 4}, 2)  # x = -1 - 2y works
        assert is_feasible(s) == FEASIBLE

    def test_substitution_chain(self):
        s = IntegerSystem()
        s.add_eq({"x": 1, "y": -1})  # x = y
        s.add_eq({"y": 1}, -7)  # y = 7
        s.add_ge({"x": 1}, -7)  # x >= 7
        assert is_feasible(s) == FEASIBLE

    def test_substitution_reveals_contradiction(self):
        s = IntegerSystem()
        s.add_eq({"x": 1, "y": -1})  # x = y
        s.add_ge({"x": 1, "y": -1}, -1)  # x - y >= 1  -> 0 >= 1
        assert is_feasible(s) == INFEASIBLE


class TestInequalities:
    def test_empty_system(self):
        assert is_feasible(IntegerSystem()) == FEASIBLE

    def test_simple_interval(self):
        s = IntegerSystem()
        s.add_ge({"x": 1})  # x >= 0
        s.add_ge({"x": -1}, 10)  # x <= 10
        assert is_feasible(s) == FEASIBLE

    def test_empty_interval(self):
        s = IntegerSystem()
        s.add_ge({"x": 1}, -5)  # x >= 5
        s.add_ge({"x": -1}, 3)  # x <= 3
        assert is_feasible(s) == INFEASIBLE

    def test_two_variable_chain(self):
        s = IntegerSystem()
        s.add_ge({"x": 1, "y": -1})  # x >= y
        s.add_ge({"y": 1}, -3)  # y >= 3
        s.add_ge({"x": -1}, 2)  # x <= 2
        assert is_feasible(s) == INFEASIBLE

    def test_integer_hole_detected_or_maybe(self):
        # 2 <= 2x <= 3 has no integer solution; real shadow is feasible.
        # Dark shadow (a=b=2) is infeasible, so the verdict must not be
        # a false FEASIBLE.
        s = IntegerSystem()
        s.add_ge({"x": 2}, -2)  # 2x >= 2  -> x >= 1 ... wait: 2x - 2 >= 0
        s.add_ge({"x": -2}, 3)  # 3 - 2x >= 0 -> x <= 1.5
        # x = 1 is integral and satisfies both; ensure FEASIBLE.
        assert is_feasible(s) == FEASIBLE

    def test_true_integer_hole(self):
        # 3 <= 2x <= 3: only x = 1.5.
        s = IntegerSystem()
        s.add_ge({"x": 2}, -3)
        s.add_ge({"x": -2}, 3)
        assert is_feasible(s) in (INFEASIBLE, MAYBE)
        # Normalization tightens 2x >= 3 to x >= 2 and 2x <= 3 to x <= 1,
        # so this specific hole is proven infeasible.
        assert is_feasible(s) == INFEASIBLE

    def test_unbounded_variable(self):
        s = IntegerSystem()
        s.add_ge({"x": 1, "y": 1})  # x + y >= 0: always satisfiable
        assert is_feasible(s) == FEASIBLE


class TestDependenceShapedSystems:
    def test_siv_conflict(self):
        # i1 = i2 - 1, 0 <= i1,i2 < 100.
        s = IntegerSystem()
        s.add_eq({"i1": 1, "i2": -1}, 1)
        s.add_ge({"i1": 1})
        s.add_ge({"i2": 1})
        s.add_ge({"i1": -1}, 99)
        s.add_ge({"i2": -1}, 99)
        assert is_feasible(s) == FEASIBLE

    def test_siv_out_of_range(self):
        # i1 = i2 - 200 cannot hold within [0, 100).
        s = IntegerSystem()
        s.add_eq({"i1": 1, "i2": -1}, 200)
        s.add_ge({"i1": 1})
        s.add_ge({"i2": 1})
        s.add_ge({"i1": -1}, 99)
        s.add_ge({"i2": -1}, 99)
        assert is_feasible(s) == INFEASIBLE

    def test_coupled_subscripts(self):
        # A[i, i] vs A[j, j+1]: i = j and i = j+1 simultaneously.
        s = IntegerSystem()
        s.add_eq({"i": 1, "j": -1})
        s.add_eq({"i": 1, "j": -1}, -1)
        assert is_feasible(s) == INFEASIBLE

    def test_variables_listing(self):
        s = IntegerSystem()
        s.add_eq({"b": 1, "a": 2})
        s.add_ge({"c": 1})
        assert s.variables() == ["a", "b", "c"]
