"""The static applicability advisor must agree exactly with the real
driver: for every loop in the corpus the predicted verdict, reason
string, II, stage count, expansion strategy, and unroll factor match
what ``slms()`` actually does.  This is the contract that makes
``slms advise`` trustworthy without running the scheduler."""

import pytest

from repro.core.advisor import Advice, advise_program, render_advice
from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions
from repro.workloads import all_workloads


def _compare(workload, options):
    """Return a list of mismatch descriptions (empty == exact match)."""
    advices = advise_program(workload.full_program(), options)
    actual = slms(workload.full_program(), options).loops
    problems = []
    if len(advices) != len(actual):
        return [
            f"{workload.name}: advisor saw {len(advices)} loops, "
            f"driver saw {len(actual)}"
        ]
    for idx, (adv, res) in enumerate(zip(advices, actual)):
        tag = f"{workload.name}[{idx}]"
        if adv.applies != res.applied:
            problems.append(
                f"{tag}: predicted {adv.verdict}, driver "
                f"{'applied' if res.applied else 'declined'} "
                f"({res.reason!r})"
            )
            continue
        if not res.applied and adv.reason != res.reason:
            problems.append(
                f"{tag}: reason {adv.reason!r} != {res.reason!r}"
            )
        if res.applied:
            for field in ("ii", "stages", "expansion", "unroll",
                          "res_mii", "heuristic_ii", "sched_proven"):
                want = getattr(res, field)
                got = getattr(adv, field)
                if got != want:
                    problems.append(
                        f"{tag}: {field} predicted {got!r}, "
                        f"actual {want!r}"
                    )
    return problems


class TestAdvisorAgreement:
    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_default_options_exact(self, workload):
        """The headline gate: prediction == actual across the corpus."""
        assert _compare(workload, SLMSOptions()) == []

    @pytest.mark.parametrize(
        "options",
        [
            SLMSOptions(expansion="mve"),
            SLMSOptions(expansion="scalar"),
            SLMSOptions(expansion="none"),
            SLMSOptions(force=True),
            SLMSOptions(enable_filter=False, max_unroll=2),
            SLMSOptions(max_decompositions=0),
            SLMSOptions(scheduler="exact"),
            SLMSOptions(scheduler="exact", machine="itanium2"),
        ],
        ids=[
            "mve", "scalar", "none", "force",
            "nofilter-unroll2", "nodecomp",
            "exact", "exact-itanium2",
        ],
    )
    def test_option_sweeps_exact(self, options):
        """The agreement must hold under every driver knob, not just
        the defaults — declines shift families as options change."""
        problems = []
        for workload in all_workloads():
            problems.extend(_compare(workload, options))
        assert problems == []


class TestAdviceShape:
    def test_corpus_has_both_verdicts(self):
        verdicts = set()
        for workload in all_workloads():
            for adv in advise_program(workload.full_program()):
                verdicts.add(adv.verdict)
        assert verdicts == {"apply", "decline"}

    def test_decline_carries_suggestion(self):
        """Every declined loop should come with at least one actionable
        suggestion so `slms advise` is never a bare 'no'."""
        seen_decline = False
        for workload in all_workloads():
            for adv in advise_program(workload.full_program()):
                if not adv.applies:
                    seen_decline = True
                    assert adv.suggestions, (
                        f"{workload.name}: decline {adv.reason!r} "
                        "has no suggestion"
                    )
        assert seen_decline

    def test_render_apply_and_decline(self):
        apply = Advice(
            line=3, verdict="apply", ii=2, stages=3, n_mis=5,
            expansion="mve", unroll=3, rec_mii=2, trip_count=100,
        )
        text = render_advice(apply)
        assert "APPLY" in text and "II=2" in text and "unroll=3" in text
        decline = Advice(
            line=7, verdict="decline",
            reason="nested loop in body",
            suggestions=["distribute the inner loop"],
        )
        text = render_advice(decline)
        assert "DECLINE" in text
        assert "nested loop in body" in text
        assert "distribute the inner loop" in text

    def test_to_dict_round_trips_fields(self):
        adv = Advice(line=1, verdict="decline", reason="x",
                     suggestions=["s"])
        payload = adv.to_dict()
        assert payload["verdict"] == "decline"
        assert payload["reason"] == "x"
        assert payload["suggestions"] == ["s"]
