"""Unit tests for scalar dependence analysis with kill analysis."""

from repro.analysis.scalars import ScalarDep, scalar_dependences
from repro.lang import parse_program


def deps(source, index_var="i"):
    prog = parse_program(source)
    return scalar_dependences(list(prog.body), index_var)


def has(edges, kind, src, dst, var, distance):
    return ScalarDep(kind, src, dst, var, distance) in edges


class TestFlowDeps:
    def test_intra_iteration_flow(self):
        edges = deps("t = A[i]; B[i] = t;")
        assert has(edges, "flow", 0, 1, "t", 0)

    def test_def_kills_loop_carried_flow(self):
        # t's previous-iteration value is overwritten before the use.
        edges = deps("t = A[i]; B[i] = t;")
        assert not has(edges, "flow", 0, 1, "t", 1)

    def test_accumulator_self_flow(self):
        edges = deps("s = s + A[i];")
        assert has(edges, "flow", 0, 0, "s", 1)

    def test_use_before_def_is_loop_carried(self):
        edges = deps("B[i] = t; t = A[i];")
        assert has(edges, "flow", 1, 0, "t", 1)
        assert not has(edges, "flow", 1, 0, "t", 0)

    def test_kill_between_defs(self):
        edges = deps("t = A[i]; t = B[i]; C[i] = t;")
        assert has(edges, "flow", 1, 2, "t", 0)
        assert not has(edges, "flow", 0, 2, "t", 0)


class TestAntiDeps:
    def test_intra_iteration_anti(self):
        edges = deps("B[i] = t; t = A[i];")
        assert has(edges, "anti", 0, 1, "t", 0)

    def test_loop_carried_anti(self):
        # Use at MI1 (of t defined in MI0) then MI0 redefines next iter.
        edges = deps("t = A[i]; B[i] = t;")
        assert has(edges, "anti", 1, 0, "t", 1)

    def test_compound_assign_is_use_and_def(self):
        edges = deps("s += A[i];")
        assert has(edges, "anti", 0, 0, "s", 1)
        assert has(edges, "output", 0, 0, "s", 1)


class TestOutputDeps:
    def test_intra_iteration_output(self):
        edges = deps("t = A[i]; t = B[i];")
        assert has(edges, "output", 0, 1, "t", 0)

    def test_loop_carried_output_self(self):
        edges = deps("t = A[i]; B[i] = t;")
        assert has(edges, "output", 0, 0, "t", 1)


class TestPredication:
    def test_conditional_def_does_not_kill(self):
        # if (c) t = A[i]; preserves the previous t when c is false, so
        # the loop-carried flow from MI0's def to MI2's use survives the
        # conditional def at MI1.
        edges = deps("t = A[i]; if (c) t = B[i]; C[i] = t;", index_var="i")
        assert has(edges, "flow", 0, 2, "t", 0)
        assert has(edges, "flow", 1, 2, "t", 0)

    def test_conditional_self_flow(self):
        # if (max < arr[i]) max = arr[i]: max flows across iterations.
        edges = deps("if (max < arr[i]) max = arr[i];")
        assert has(edges, "flow", 0, 0, "max", 1)


class TestIndexVarExcluded:
    def test_index_var_generates_no_edges(self):
        edges = deps("A[i] = i; B[i] = i;")
        assert all(e.var != "i" for e in edges)

    def test_index_increment_excluded(self):
        # lw++ style statements over the *index* don't self-depend here,
        # but a non-index counter does.
        edges = deps("lw = lw + 1;")
        assert has(edges, "flow", 0, 0, "lw", 1)


class TestReadOnlyScalars:
    def test_pure_reads_no_edges(self):
        edges = deps("A[i] = c * B[i];")
        assert edges == []
