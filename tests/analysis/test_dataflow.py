"""Dataflow framework: CFG construction, the worklist solver, and the
three client analyses (reaching defs, liveness, intervals)."""

import pytest

from repro.analysis.dataflow import (
    Interval,
    build_cfg,
    eval_interval,
    interval_envs,
    live_sets,
    reaching_defs,
)
from repro.analysis.dataflow.cfg import FALSE, TRUE, node_defs, node_uses
from repro.analysis.dataflow.intervals import refine_env
from repro.lang.parser import parse_program


def cfg_of(source: str):
    return build_cfg(list(parse_program(source).body))


# ---------------------------------------------------------------------------
# CFG shape
# ---------------------------------------------------------------------------


class TestCFG:
    def test_straight_line(self):
        cfg = cfg_of("int s; s = 1; s = s + 2;")
        stmt_nodes = cfg.stmt_nodes()
        assert len(stmt_nodes) == 3
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert order[-1] == cfg.exit

    def test_if_branches_carry_labels(self):
        cfg = cfg_of(
            "int s; s = 0; if (s < 1) { s = 1; } else { s = 2; }"
        )
        branch = [n for n in cfg.nodes if n.kind == "branch"]
        assert len(branch) == 1
        labels = sorted(
            label for _, label in cfg.succs[branch[0].id]
        )
        assert labels == [FALSE, TRUE]

    def test_for_loop_has_widen_point_and_back_edge(self):
        cfg = cfg_of(
            "float a[10]; for (i = 0; i < 10; i += 1) { a[i] = 1.0; }"
        )
        assert cfg.widen_points, "loop head must be a widen point"
        head = next(iter(cfg.widen_points))
        # The head must be reachable from inside the body (back edge).
        preds = {src for src, _ in cfg.preds[head]}
        assert len(preds) >= 2

    def test_while_lowering(self):
        cfg = cfg_of(
            "int i; i = 0; while (i < 4) { i = i + 1; }"
        )
        assert cfg.widen_points
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert cfg.exit in order

    def test_node_uses_and_defs(self):
        cfg = cfg_of("int s; int t; s = 1; t = s + 2;")
        assigns = [
            n for n in cfg.stmt_nodes()
            if n.kind == "stmt"
            and type(n.stmt).__name__ == "Assign"
            and node_defs(n) == {"t"}
        ]
        assert len(assigns) == 1
        assert node_uses(assigns[0]) == {"s"}


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------


class TestReachingDefs:
    def test_kill_and_gen(self):
        cfg = cfg_of("int s; s = 1; s = 2; int t; t = s;")
        result = reaching_defs(cfg)
        use = [
            n for n in cfg.stmt_nodes() if "s" in node_uses(n)
        ][0]
        reaching = {
            d for d in result.inputs[use.id] if d.var == "s"
        }
        # Only the second definition of s survives.
        assert len(reaching) == 1
        assert not next(iter(reaching)).uninit

    def test_uninit_pseudo_def(self):
        cfg = cfg_of("int s; int t; t = s;")
        result = reaching_defs(cfg)
        use = [n for n in cfg.stmt_nodes() if "s" in node_uses(n)][0]
        assert any(
            d.var == "s" and d.uninit for d in result.inputs[use.id]
        )

    def test_branch_merges_both_defs(self):
        cfg = cfg_of(
            "int s; s = 0; int c; c = 1;"
            "if (c < 2) { s = 1; } else { s = 2; }"
            "int t; t = s;"
        )
        result = reaching_defs(cfg)
        use = [n for n in cfg.stmt_nodes() if "s" in node_uses(n)][-1]
        defs = {d for d in result.inputs[use.id] if d.var == "s"}
        assert len(defs) == 2


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------


class TestLiveness:
    def test_dead_store_not_live(self):
        cfg = cfg_of("int s; s = 1; s = 2; int t; t = s;")
        result = live_sets(cfg)
        first = cfg.stmt_nodes()[1]  # s = 1
        # Backward analysis: inputs[] is live-out.
        assert "s" not in result.inputs[first.id]

    def test_declared_scalars_live_at_exit(self):
        # Final scalar values are observable program state: a store
        # with no later read is still live at exit.
        cfg = cfg_of("int s; s = 1;")
        result = live_sets(cfg)
        assign = cfg.stmt_nodes()[1]
        assert "s" in result.inputs[assign.id]

    def test_loop_carried_liveness(self):
        cfg = cfg_of(
            "float a[20]; float s; s = 0.0;"
            "for (i = 0; i < 10; i += 1) { s = s + a[i]; }"
        )
        result = live_sets(cfg)
        init = [
            n for n in cfg.stmt_nodes()
            if n.kind == "stmt"
            and type(n.stmt).__name__ == "Assign"
            and node_defs(n) == {"s"}
        ][0]  # s = 0.0 — its value feeds the loop-carried recurrence
        assert "s" in result.inputs[init.id]


# ---------------------------------------------------------------------------
# intervals
# ---------------------------------------------------------------------------


class TestInterval:
    def test_arith(self):
        a, b = Interval(0, 10), Interval(-2, 3)
        assert a + b == Interval(-2, 13)
        assert a - b == Interval(-3, 12)
        assert a * b == Interval(-20, 30)
        assert (-a) == Interval(-10, 0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_hull_meet_widen(self):
        a, b = Interval(0, 5), Interval(3, 9)
        assert a.hull(b) == Interval(0, 9)
        assert a.meet(b) == Interval(3, 5)
        assert a.meet(Interval(6, 7)) is None
        widened = a.widened(Interval(0, 6))
        assert widened.hi == float("inf") and widened.lo == 0

    def test_predicates(self):
        assert Interval(2, 4).inside(0, 9)
        assert Interval(10, 12).disjoint(0, 9)
        assert not Interval(8, 12).disjoint(0, 9)
        assert not Interval(8, 12).inside(0, 9)

    def test_str(self):
        assert str(Interval(0, 299)) == "[0, 299]"
        assert str(Interval.top()) == "[-inf, +inf]"


class TestEvalInterval:
    def test_division_only_when_divisor_nonzero(self):
        env = {"x": Interval(10, 20)}
        prog = parse_program("int y; y = x / 2;")
        expr = prog.body[1].value
        assert eval_interval(expr, env) == Interval(5, 10)

    def test_mod_bounded(self):
        env = {"x": Interval(0, 1000)}
        expr = parse_program("int y; y = x % 7;").body[1].value
        rng = eval_interval(expr, env)
        assert rng.inside(0, 6)

    def test_refine_env_narrows(self):
        cond = parse_program("int c; c = i < 300;").body[1].value
        env = refine_env(cond, True, {"i": Interval(0, 10**9)})
        assert env["i"] == Interval(0, 299)
        env = refine_env(cond, False, {"i": Interval(0, 10**9)})
        assert env["i"].lo == 300

    def test_refine_env_unreachable(self):
        cond = parse_program("int c; c = i < 0;").body[1].value
        assert refine_env(cond, True, {"i": Interval(0, 9)}) is None


class TestIntervalAnalysis:
    def test_loop_index_exact(self):
        cfg = cfg_of(
            "float a[300]; for (i = 0; i < 300; i += 1) { a[i] = 1.0; }"
        )
        result = interval_envs(cfg)
        # Widening + branch refinement: i is exactly [0, 299] inside.
        stores = [
            n for n in cfg.stmt_nodes()
            if n.kind == "stmt"
            and type(n.stmt).__name__ == "Assign"
            and "a[" in str(n.stmt)
        ]
        env = result.inputs[stores[0].id]
        assert env["i"] == Interval(0, 299)

    def test_unreachable_branch_is_none(self):
        cfg = cfg_of(
            "int s; s = 1; if (s > 5) { s = 99; } int t; t = s;"
        )
        result = interval_envs(cfg)
        dead = [
            n for n in cfg.stmt_nodes()
            if n.kind == "stmt" and "99" in str(n.stmt)
        ]
        assert result.inputs[dead[0].id] is None

    def test_symbolic_constant_propagates(self):
        cfg = cfg_of(
            "int n; n = 12; float a[20];"
            "for (i = 0; i < n; i += 1) { a[i] = 0.0; }"
        )
        result = interval_envs(cfg)
        stores = [
            n for n in cfg.stmt_nodes()
            if n.kind == "stmt"
            and type(n.stmt).__name__ == "Assign"
            and "a[" in str(n.stmt)
        ]
        env = result.inputs[stores[0].id]
        assert env["i"] == Interval(0, 11)
