"""Unit tests for affine subscript normalization."""

from repro.analysis.affine import AffineExpr, analyze_subscript
from repro.lang import parse_expr


def sub(text, var="i"):
    return analyze_subscript(parse_expr(text), var)


class TestBasicForms:
    def test_constant(self):
        assert sub("3") == AffineExpr.constant(3)

    def test_negative_constant(self):
        assert sub("-2") == AffineExpr.constant(-2)

    def test_index(self):
        assert sub("i") == AffineExpr.index()

    def test_other_var_is_symbol(self):
        assert sub("j") == AffineExpr.symbol("j")

    def test_index_plus_constant(self):
        assert sub("i + 1") == AffineExpr(1, 1)

    def test_index_minus_constant(self):
        assert sub("i - 3") == AffineExpr(1, -3)

    def test_scaled_index(self):
        assert sub("2 * i") == AffineExpr(2, 0)

    def test_index_times_constant_right(self):
        assert sub("i * 4") == AffineExpr(4, 0)

    def test_full_affine(self):
        assert sub("2 * i + j - 5") == AffineExpr(2, -5, (("j", 1),))

    def test_negated_index(self):
        assert sub("-i") == AffineExpr(-1, 0)

    def test_subtraction_of_index(self):
        assert sub("10 - i") == AffineExpr(-1, 10)

    def test_nested_parens(self):
        assert sub("2 * (i + 1)") == AffineExpr(2, 2)

    def test_symbol_coefficient(self):
        assert sub("3 * n + i") == AffineExpr(1, 0, (("n", 3),))

    def test_symbol_cancellation(self):
        assert sub("j - j + i") == AffineExpr(1, 0)


class TestNonAffine:
    def test_index_squared(self):
        assert sub("i * i") is None

    def test_product_of_symbols(self):
        assert sub("i * j") is None

    def test_array_subscript(self):
        assert sub("B[i]") is None

    def test_modulo(self):
        assert sub("i % 2") is None

    def test_float_literal(self):
        assert sub("1.5") is None

    def test_call(self):
        assert sub("f(i)") is None

    def test_inexact_division(self):
        assert sub("i / 2") is None

    def test_exact_division(self):
        assert sub("(4 * i + 8) / 2") == AffineExpr(2, 4)


class TestArithmetic:
    def test_add(self):
        assert AffineExpr(1, 2) + AffineExpr(3, -1) == AffineExpr(4, 1)

    def test_sub_cancels_symbols(self):
        a = AffineExpr(1, 2, (("j", 1),))
        b = AffineExpr(1, 0, (("j", 1),))
        assert a - b == AffineExpr(0, 2)

    def test_scale(self):
        assert AffineExpr(2, 3, (("j", 1),)).scale(-2) == AffineExpr(
            -4, -6, (("j", -2),)
        )

    def test_same_shape(self):
        assert AffineExpr(1, 2, (("j", 1),)).same_shape(AffineExpr(1, 9, (("j", 1),)))
        assert not AffineExpr(1, 2).same_shape(AffineExpr(2, 2))

    def test_is_constant(self):
        assert AffineExpr(0, 7).is_constant
        assert not AffineExpr(1, 0).is_constant
        assert not AffineExpr(0, 0, (("j", 1),)).is_constant

    def test_canonical_zero_coeff_symbols_removed(self):
        a = AffineExpr.symbol("j") - AffineExpr.symbol("j")
        assert a.syms == ()
