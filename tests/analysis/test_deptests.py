"""Unit tests for the array dependence tests."""

import pytest

from repro.analysis.affine import analyze_subscript
from repro.analysis.deptests import test_dependence as dep_test
from repro.lang import parse_expr


def subs(*texts, var="i"):
    return tuple(analyze_subscript(parse_expr(t), var) for t in texts)


class TestZIV:
    def test_same_constant_conflicts_everywhere(self):
        r = dep_test(subs("0"), subs("0"))
        assert r.exists and r.all_distances

    def test_different_constants_independent(self):
        r = dep_test(subs("0"), subs("1"))
        assert not r.exists

    def test_same_symbol_conflicts(self):
        r = dep_test(subs("j"), subs("j"))
        assert r.exists and r.all_distances

    def test_symbol_plus_offset_independent(self):
        r = dep_test(subs("j"), subs("j + 1"))
        assert not r.exists

    def test_different_symbols_unknown(self):
        r = dep_test(subs("j"), subs("k"))
        assert r.exists and not r.exact


class TestStrongSIV:
    def test_distance_one(self):
        # A[i] (write) vs A[i-1] (read): read at iter i+1 touches what
        # the write produced at iter i -> delta = +1.
        r = dep_test(subs("i"), subs("i - 1"))
        assert r.is_constant and r.distance == 1

    def test_distance_negative(self):
        r = dep_test(subs("i"), subs("i + 2"))
        assert r.is_constant and r.distance == -2

    def test_distance_zero(self):
        r = dep_test(subs("i"), subs("i"))
        assert r.is_constant and r.distance == 0

    def test_scaled_integral(self):
        r = dep_test(subs("2 * i"), subs("2 * i - 4"))
        assert r.is_constant and r.distance == 2

    def test_scaled_nonintegral_independent(self):
        r = dep_test(subs("2 * i"), subs("2 * i + 1"))
        assert not r.exists

    def test_symbolic_offset_cancels(self):
        r = dep_test(subs("i + j"), subs("i + j - 1"))
        assert r.is_constant and r.distance == 1

    def test_symbolic_mismatch_unknown(self):
        r = dep_test(subs("i + j"), subs("i + k"))
        assert r.exists and not r.exact


class TestStep:
    def test_step_two_halves_distance(self):
        r = dep_test(subs("i"), subs("i - 4"), step=2)
        assert r.is_constant and r.distance == 2

    def test_step_two_odd_delta_independent(self):
        r = dep_test(subs("i"), subs("i - 3"), step=2)
        assert not r.exists

    def test_negative_step(self):
        # Downward loop: i, i-1, ...; A[i] written then A[i+1] read one
        # iteration later.
        r = dep_test(subs("i"), subs("i + 1"), step=-1)
        assert r.is_constant and r.distance == 1

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            dep_test(subs("i"), subs("i"), step=0)


class TestBounds:
    def test_distance_beyond_trip_count_killed(self):
        r = dep_test(subs("i"), subs("i - 100"), lo=0, hi=50)
        assert not r.exists

    def test_distance_within_trip_count_kept(self):
        r = dep_test(subs("i"), subs("i - 10"), lo=0, hi=50)
        assert r.is_constant and r.distance == 10

    def test_unbounded_keeps_dependence(self):
        r = dep_test(subs("i"), subs("i - 100"))
        assert r.exists


class TestWeakSIVAndFM:
    def test_nonconstant_distance_unknown(self):
        # A[i] vs A[2i]: conflicts exist but at varying distances.
        r = dep_test(subs("i"), subs("2 * i"), lo=0, hi=100)
        assert r.exists and not r.exact

    def test_fm_refutes_parity(self):
        # 2i vs 2i'+1: never equal.
        r = dep_test(subs("2 * i"), subs("2 * i + 1"))
        assert not r.exists

    def test_fm_refutes_disjoint_ranges(self):
        # i in [0,10); 2i' + 100 >= 100 > 9: no conflict within bounds.
        r = dep_test(subs("i"), subs("2 * i + 100"), lo=0, hi=10)
        assert not r.exists

    def test_multidim_consistent(self):
        r = dep_test(subs("i", "0"), subs("i - 1", "0"))
        assert r.is_constant and r.distance == 1

    def test_multidim_conflicting_distances_independent(self):
        # dim0 demands delta=1, dim1 demands delta=2: impossible.
        r = dep_test(subs("i", "i"), subs("i - 1", "i - 2"))
        assert not r.exists

    def test_multidim_different_const_dim_independent(self):
        r = dep_test(subs("i", "0"), subs("i", "1"))
        assert not r.exists

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            dep_test(subs("i"), subs("i", "0"))


class TestPaperExamples:
    def test_recurrence_a_i_minus_1(self):
        # A[i] += A[i-1]: the Fig. 6 self dependence, distance 1.
        r = dep_test(subs("i"), subs("i - 1"))
        assert r.distance == 1

    def test_read_ahead_is_anti(self):
        # A[i] written, A[i+2] read: read of iter i touches the element
        # written at iter i+2 -> delta -2 (anti when roles applied).
        r = dep_test(subs("i"), subs("i + 2"))
        assert r.distance == -2

    def test_mi_with_two_distances(self):
        # §3.6: edge with several <distance, delay> pairs comes from two
        # reference pairs; each is tested independently.
        r1 = dep_test(subs("i"), subs("i - 2"))
        r2 = dep_test(subs("i"), subs("i - 3"))
        assert (r1.distance, r2.distance) == (2, 3)
