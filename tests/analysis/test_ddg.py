"""Unit tests for dependence graph construction."""

from repro.analysis.ddg import build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.lang import parse_stmt


def ddg_of(source):
    loop = parse_stmt(source)
    info = LoopInfo.from_for(loop)
    assert info is not None
    return build_ddg(loop.body, info)


def find(graph, kind, src, dst, var, distance):
    return any(
        e.kind == kind
        and e.src == src
        and e.dst == dst
        and e.var == var
        and e.distance == distance
        for e in graph.edges
    )


class TestArrayEdges:
    def test_recurrence_self_flow(self):
        g = ddg_of("for (i = 1; i < 100; i++) { A[i] = A[i-1] + 1; }")
        assert find(g, "flow", 0, 0, "A", 1)
        assert g.precise

    def test_flow_between_mis(self):
        g = ddg_of(
            "for (i = 1; i < 100; i++) { A[i] = B[i]; C[i] = A[i-1]; }"
        )
        assert find(g, "flow", 0, 1, "A", 1)

    def test_intra_iteration_flow(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[i] = B[i]; C[i] = A[i]; }")
        assert find(g, "flow", 0, 1, "A", 0)

    def test_read_ahead_anti(self):
        # A[i+2] read in MI0, A[i] written in MI0: anti distance 2 self.
        g = ddg_of("for (i = 0; i < 98; i++) { A[i] = A[i+2]; }")
        assert find(g, "anti", 0, 0, "A", 2)

    def test_backward_positioned_flow(self):
        # Store in MI1 feeds the read in MI0 of the *next* iteration.
        g = ddg_of(
            "for (i = 1; i < 100; i++) { t = A[i-1]; A[i] = B[i]; }"
        )
        assert find(g, "flow", 1, 0, "A", 1)

    def test_independent_arrays_no_edges(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[i] = 1; B[i] = 2; }")
        assert g.edges == []

    def test_ziv_conflict_both_directions(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[0] = B[i]; C[i] = A[0]; }")
        assert find(g, "flow", 0, 1, "A", 0)
        assert find(g, "anti", 1, 0, "A", 1)

    def test_output_dependence(self):
        g = ddg_of("for (i = 1; i < 100; i++) { A[i] = 1; A[i-1] = 2; }")
        assert find(g, "output", 0, 1, "A", 1)

    def test_two_distance_pairs_both_present(self):
        # §3.6: B[i] = A[i-2] + A[i-3] has two distances to A[i] = ...
        g = ddg_of(
            "for (i = 3; i < 100; i++) { A[i] = B[i-1]; B[i] = A[i-2] + A[i-3]; }"
        )
        assert find(g, "flow", 0, 1, "A", 2)
        assert find(g, "flow", 0, 1, "A", 3)

    def test_delays_follow_positions(self):
        g = ddg_of(
            "for (i = 1; i < 100; i++) { A[i] = B[i]; x = 1.0; C[i] = A[i-1]; }"
        )
        edges = [e for e in g.edges if e.var == "A" and e.src == 0 and e.dst == 2]
        assert edges and all(e.delay == 2 for e in edges)

    def test_back_edge_delay_one(self):
        g = ddg_of(
            "for (i = 1; i < 100; i++) { t = A[i-1]; A[i] = B[i]; }"
        )
        edges = [e for e in g.edges if e.var == "A" and e.src == 1 and e.dst == 0]
        assert edges and all(e.delay == 1 for e in edges)


class TestImprecision:
    def test_non_affine_subscript_marks_imprecise(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[B[i]] = 1.0; A[i] = 2.0; }")
        assert not g.precise
        assert any("non-affine" in r for r in g.reasons)

    def test_call_marks_imprecise(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[i] = f(i); }")
        assert not g.precise

    def test_unknown_distance_marks_imprecise(self):
        g = ddg_of("for (i = 0; i < 100; i++) { A[i] = 1.0; x = A[j]; }")
        assert not g.precise

    def test_refuted_symbolic_stays_precise(self):
        # A[i] vs A[i+n] with 0 <= i < 100 and unknown n: cannot refute,
        # so imprecise; but A[2i] vs A[2i+1] is refuted by parity.
        g = ddg_of("for (i = 0; i < 50; i++) { A[2*i] = A[2*i+1]; }")
        assert g.precise
        assert g.edges == []


class TestGraphQueries:
    def test_loop_carried_filter(self):
        g = ddg_of(
            "for (i = 1; i < 100; i++) { A[i] = A[i-1]; B[i] = A[i]; }"
        )
        carried = g.loop_carried()
        assert all(e.distance >= 1 for e in carried)
        assert any(e.var == "A" for e in carried)

    def test_dominant_edges_pick_min_distance(self):
        g = ddg_of(
            "for (i = 3; i < 100; i++) { A[i] = 1.0; B[i] = A[i-2] + A[i-3]; }"
        )
        dom = g.dominant_edges()
        assert dom[(0, 1)][1] == 2  # min distance among {2, 3}

    def test_to_networkx_roundtrip(self):
        g = ddg_of("for (i = 1; i < 100; i++) { A[i] = A[i-1]; }")
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 1
        assert nxg.number_of_edges() >= 1

    def test_self_edges(self):
        g = ddg_of("for (i = 1; i < 100; i++) { A[i] = A[i-1]; }")
        assert g.self_edges(0)


class TestCompoundAndPredicated:
    def test_compound_array_assign(self):
        g = ddg_of("for (i = 1; i < 100; i++) { A[i] += A[i-1]; }")
        assert find(g, "flow", 0, 0, "A", 1)

    def test_predicated_mi_accesses_counted(self):
        g = ddg_of(
            "for (i = 1; i < 100; i++) { if (c) A[i] = 1.0; B[i] = A[i-1]; }"
        )
        assert find(g, "flow", 0, 1, "A", 1)
