"""Evaluation-engine tests: parallel determinism + cache correctness."""

import dataclasses
import json

import pytest

from repro.backend.compiler import COMPILER_PRESETS
from repro.core.slms import SLMSOptions
from repro.harness.engine import (
    ENGINE_VERSION,
    EngineConfig,
    ExperimentSpec,
    engine_defaults,
    get_default_engine,
    run_experiments,
)
from repro.harness.expcache import ExperimentCache, experiment_key
from repro.harness.sweep import run_sweep
from repro.machines.presets import itanium2, machine_by_name
from repro.workloads import get_workload


def _specs(names=("daxpy", "kernel1")):
    return [
        ExperimentSpec(
            workload=get_workload(name),
            machine=itanium2(),
            compiler=COMPILER_PRESETS["gcc_O3"],
            options=None,
            verify=True,
        )
        for name in names
    ]


def _result_payload(result) -> str:
    """Everything except wall-clock timing, as canonical JSON."""
    data = result.to_dict()
    data.pop("phase_times")
    data.pop("cached_phase_times")
    return json.dumps(data, sort_keys=True)


class TestParallelDeterminism:
    def test_parallel_results_identical_to_serial(self, tmp_path):
        serial = run_sweep(
            ["daxpy", "kernel12"],
            pairs=[("itanium2", "gcc_O3"), ("arm7tdmi", "arm_gcc")],
            workers=1,
            use_cache=False,
        )
        parallel = run_sweep(
            ["daxpy", "kernel12"],
            pairs=[("itanium2", "gcc_O3"), ("arm7tdmi", "arm_gcc")],
            workers=2,
            use_cache=False,
        )
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        # Full payload (metrics included), not just the export columns.
        for a, b in zip(serial.results, parallel.results):
            assert _result_payload(a) == _result_payload(b)

    def test_result_order_is_spec_order(self, tmp_path):
        results, _ = run_experiments(
            _specs(("kernel1", "daxpy")), workers=2, use_cache=False
        )
        assert [r.workload for r in results] == ["kernel1", "daxpy"]

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(_specs(("daxpy",)), workers=0, use_cache=False)


class TestCache:
    def test_warm_run_hits_and_matches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold, cold_stats = run_experiments(
            _specs(), workers=1, cache_dir=cache_dir
        )
        warm, warm_stats = run_experiments(
            _specs(), workers=1, cache_dir=cache_dir
        )
        assert cold_stats.cache_hits == 0
        assert cold_stats.cache_misses == len(cold)
        assert warm_stats.cache_hits == len(warm)
        assert warm_stats.cache_misses == 0
        assert warm_stats.hit_rate == 1.0
        for a, b in zip(cold, warm):
            assert _result_payload(a) == _result_payload(b)
            # Metrics round-trip the float fields bit-exactly.
            assert a.base_metrics == b.base_metrics
            assert a.slms_metrics == b.slms_metrics

    def test_no_cache_never_writes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_experiments(
            _specs(("daxpy",)), workers=1, use_cache=False,
            cache_dir=str(cache_dir),
        )
        assert not cache_dir.exists()

    def test_key_invalidates_on_source_change(self):
        spec = _specs(("daxpy",))[0]
        edited = dataclasses.replace(
            spec,
            workload=dataclasses.replace(
                spec.workload, kernel=spec.workload.kernel + "\n"
            ),
        )
        assert spec.cache_key() != edited.cache_key()

    def test_key_invalidates_on_options_change(self):
        spec = _specs(("daxpy",))[0]
        tweaked = dataclasses.replace(
            spec, options=SLMSOptions(max_unroll=4)
        )
        assert spec.cache_key() != tweaked.cache_key()

    def test_key_invalidates_on_machine_and_compiler_change(self):
        spec = _specs(("daxpy",))[0]
        other_machine = dataclasses.replace(
            spec, machine=machine_by_name("pentium")
        )
        other_compiler = dataclasses.replace(
            spec, compiler=COMPILER_PRESETS["icc_O3"]
        )
        keys = {
            spec.cache_key(),
            other_machine.cache_key(),
            other_compiler.cache_key(),
        }
        assert len(keys) == 3

    def test_key_invalidates_on_engine_version(self):
        spec = _specs(("daxpy",))[0]
        wl, m, c = spec.workload, spec.machine, spec.compiler
        assert experiment_key(wl, m, c, None, True, ENGINE_VERSION) != (
            experiment_key(wl, m, c, None, True, ENGINE_VERSION + ".future")
        )

    def test_key_is_stable(self):
        spec = _specs(("daxpy",))[0]
        assert spec.cache_key() == spec.cache_key()

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        spec = _specs(("daxpy",))[0]
        key = spec.cache_key()
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_stats_and_clear(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(_specs(("daxpy",)), workers=1, cache_dir=cache_dir)
        cache = ExperimentCache(cache_dir)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0


class TestEngineDefaults:
    def test_context_manager_restores(self):
        before = get_default_engine()
        with engine_defaults(workers=3, use_cache=False) as config:
            assert config.workers == 3 and config.use_cache is False
            assert get_default_engine() is config
        assert get_default_engine() is before

    def test_defaults(self):
        config = EngineConfig()
        assert config.workers is None
        assert config.use_cache is True


class TestPhaseTimings:
    def test_experiment_carries_phase_times(self):
        results, stats = run_experiments(
            _specs(("daxpy",)), workers=1, use_cache=False
        )
        times = results[0].phase_times
        for phase in ("parse", "transform", "compile", "simulate",
                      "verify", "total"):
            assert phase in times and times[phase] >= 0.0
        assert stats.phase_totals["total"] >= stats.phase_totals["simulate"]
