"""Tier semantics of the per-phase memo store.

The invalidation lattice under test (see docs/PERFORMANCE.md):

* identical inputs → every tier hits (a warm experiment does no work);
* a *source* edit invalidates transform and everything downstream of
  it (compile, simulate, verify of the changed programs);
* a *machine* edit invalidates only compile and simulate — transform
  never reads the machine, and verify keys on the simulated state
  digests, which timing-only machine changes cannot move.

Plus the result-schema pins the tiering relies on: ``phase_times``
(wall clock actually spent) and ``cached_phase_times`` (seconds served
from the cache) are distinct keys and schema 2 carries both.
"""

from dataclasses import replace

import pytest

from repro.harness.expcache import PhaseCache
from repro.harness.experiment import (
    SCHEMA_VERSION,
    ExperimentResult,
    run_experiment,
)
from repro.machines import machine_by_name
from repro.workloads import get_workload

WORKLOAD = "daxpy"
MACHINE = "itanium2"
COMPILER = "gcc_O3"


def _run(tmp_path, workload=None, machine=None):
    cache = PhaseCache(tmp_path)
    result = run_experiment(
        workload or get_workload(WORKLOAD),
        machine or machine_by_name(MACHINE),
        COMPILER,
        phase_cache=cache,
    )
    return result, result.cache_tiers


def _comparable(result: ExperimentResult):
    payload = result.to_dict()
    payload.pop("phase_times")
    payload.pop("cached_phase_times")
    return payload


class TestWarmRerun:
    def test_all_tiers_hit_on_identical_rerun(self, tmp_path):
        cold, cold_tiers = _run(tmp_path)
        warm, warm_tiers = _run(tmp_path)
        for tier in ("transform", "compile", "simulate", "verify"):
            assert warm_tiers[tier]["misses"] == 0, tier
            assert warm_tiers[tier]["hits"] > 0, tier
            assert cold_tiers[tier]["misses"] > 0, tier
        assert _comparable(cold) == _comparable(warm)

    def test_warm_run_reports_cached_phase_seconds(self, tmp_path):
        _run(tmp_path)
        warm, _ = _run(tmp_path)
        # The warm run did ~no phase work itself but credits what the
        # hits originally cost — under distinct keys.
        assert warm.cached_phase_times.get("transform", 0.0) > 0.0
        assert warm.cached_phase_times.get("compile", 0.0) > 0.0
        assert set(warm.cached_phase_times) & set(warm.phase_times)


class TestSourceEditInvalidation:
    def test_kernel_edit_invalidates_transform_and_downstream(
        self, tmp_path
    ):
        _run(tmp_path)
        base = get_workload(WORKLOAD)
        edited = replace(
            base, kernel=base.kernel.replace("i < 240", "i < 239")
        )
        assert edited.kernel != base.kernel, "edit must change the kernel"
        _, tiers = _run(tmp_path, workload=edited)
        assert tiers["transform"]["misses"] == 1
        assert tiers["verify"]["misses"] == 1
        # The full base and SLMS programs recompile and resimulate; the
        # untouched setup program still hits.
        assert tiers["compile"]["misses"] >= 2
        assert tiers["simulate"]["misses"] >= 2
        assert tiers["compile"]["hits"] >= 1
        assert tiers["simulate"]["hits"] >= 1


class TestMachineEditInvalidation:
    def test_machine_edit_spares_transform_and_verify(self, tmp_path):
        _run(tmp_path)
        machine = machine_by_name(MACHINE)
        tweaked = replace(
            machine,
            cache=replace(
                machine.cache, miss_penalty=machine.cache.miss_penalty + 1
            ),
        )
        _, tiers = _run(tmp_path, machine=tweaked)
        # Transform never reads the machine; verify keys on functional
        # state digests, which a timing-only change cannot move.
        assert tiers["transform"]["misses"] == 0
        assert tiers["transform"]["hits"] == 1
        assert tiers["verify"]["misses"] == 0
        assert tiers["verify"]["hits"] == 1
        assert tiers["compile"]["misses"] > 0
        assert tiers["simulate"]["misses"] > 0


class TestSchema:
    def test_schema_two_with_distinct_time_keys(self, tmp_path):
        result, _ = _run(tmp_path)
        payload = result.to_dict()
        assert payload["schema"] == SCHEMA_VERSION == 2
        assert "phase_times" in payload
        assert "cached_phase_times" in payload
        roundtrip = ExperimentResult.from_dict(payload)
        assert roundtrip.to_dict() == payload

    def test_schema_one_payload_rejected(self, tmp_path):
        result, _ = _run(tmp_path)
        payload = result.to_dict()
        payload["schema"] = 1
        with pytest.raises(ValueError):
            ExperimentResult.from_dict(payload)


class TestAsyncWrites:
    """Entries are pickled synchronously but written by a background
    thread: in-process visibility is immediate (memory overlay), and
    cross-process visibility is guaranteed once ``drain`` returns."""

    def test_put_is_immediately_visible_in_process(self, tmp_path):
        cache = PhaseCache(tmp_path)
        assert cache.put("transform", "k" * 64, {"x": 1})
        assert cache.get("transform", "k" * 64) == {"x": 1}

    def test_drain_lands_entries_on_disk(self, tmp_path):
        cache = PhaseCache(tmp_path)
        assert cache.put("compile", "a" * 64, [1, 2, 3])
        cache.drain()
        # A fresh instance has no memory overlay: a hit proves the
        # file made it to disk.
        fresh = PhaseCache(tmp_path)
        assert fresh.get("compile", "a" * 64) == [1, 2, 3]

    def test_mutating_after_put_does_not_corrupt_entry(self, tmp_path):
        cache = PhaseCache(tmp_path)
        value = {"metrics": [1, 2]}
        cache.put("simulate", "b" * 64, value)
        value["metrics"].append(3)  # caller reuses its object
        cache.drain()
        fresh = PhaseCache(tmp_path)
        assert fresh.get("simulate", "b" * 64) == {"metrics": [1, 2]}

    def test_clear_cannot_be_resurrected_by_pending_writes(self, tmp_path):
        cache = PhaseCache(tmp_path)
        for i in range(32):
            cache.put("verify", f"{i:02d}" * 32, i)
        cache.clear()
        fresh = PhaseCache(tmp_path)
        for i in range(32):
            assert fresh.get("verify", f"{i:02d}" * 32) is None

    def test_stats_reflect_drained_writes(self, tmp_path):
        cache = PhaseCache(tmp_path)
        cache.put("transform", "c" * 64, "v")
        stats = cache.stats()
        assert stats["tiers"]["transform"]["entries"] == 1
