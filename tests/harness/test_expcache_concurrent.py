"""Concurrent expcache access: two processes racing the same key.

``ExperimentCache.put`` writes via temp-file + atomic rename, so a
reader can never observe a torn entry no matter how the race resolves.
"""

import multiprocessing

from repro.harness.expcache import ExperimentCache, request_key
from repro.harness.experiment import ExperimentResult


def _result(cycles: int) -> ExperimentResult:
    return ExperimentResult(
        workload="daxpy", suite="livermore", machine="itanium2",
        compiler="gcc_O3", base_cycles=100, slms_cycles=cycles,
        base_energy=1.0, slms_energy=0.5, slms_applied=True,
    )


def _racer(cache_dir: str, key: str, cycles: int, rounds: int, queue):
    """Hammer put/get on one key; report any torn read."""
    cache = ExperimentCache(cache_dir)
    try:
        for _ in range(rounds):
            assert cache.put(key, _result(cycles))
            seen = cache.get(key)
            # The entry must always be one writer's complete result —
            # whichever process won the last rename.
            assert seen is not None
            assert seen.workload == "daxpy"
            assert seen.slms_cycles in (50, 60)
        queue.put(("ok", cycles))
    except BaseException as exc:  # pragma: no cover - failure reporting
        queue.put(("fail", f"{type(exc).__name__}: {exc}"))


class TestTwoProcessRace:
    def test_same_key_put_get_race(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        key = request_key("bench", {"workload": "daxpy"})
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_racer, args=(cache_dir, key, cycles, 40, queue)
            )
            for cycles in (50, 60)
        ]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert [kind for kind, _ in outcomes] == ["ok", "ok"], outcomes

        # After the dust settles the entry is intact and parseable.
        final = ExperimentCache(cache_dir).get(key)
        assert final is not None and final.slms_cycles in (50, 60)

    def test_distinct_keys_do_not_interfere(self, tmp_path):
        cache = ExperimentCache(str(tmp_path / "cache"))
        key_a = request_key("bench", {"workload": "daxpy"})
        key_b = request_key("bench", {"workload": "dscal"})
        assert key_a != key_b
        cache.put(key_a, _result(50))
        cache.put(key_b, _result(60))
        assert cache.get(key_a).slms_cycles == 50
        assert cache.get(key_b).slms_cycles == 60


class TestRequestKey:
    def test_stable_and_param_sensitive(self):
        base = request_key("compile", {"source": "x"}, {"machine": "a"})
        assert base == request_key(
            "compile", {"source": "x"}, {"machine": "a"}
        )
        assert base != request_key(
            "compile", {"source": "y"}, {"machine": "a"}
        )
        assert base != request_key(
            "compile", {"source": "x"}, {"machine": "b"}
        )
        assert base != request_key("advise", {"source": "x"}, {"machine": "a"})

    def test_dataclass_context(self):
        from repro.serve.session import SessionConfig

        one = request_key("bench", {"workload": "daxpy"}, SessionConfig())
        two = request_key(
            "bench", {"workload": "daxpy"}, SessionConfig(verify=False)
        )
        assert one != two
