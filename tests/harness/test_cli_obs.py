"""CLI tests for the observability stack: ledger recording on engine
runs, ``slms report``, ``slms obs ledger|diff|bench-export``."""

import json

import pytest

from repro.cli import main
from repro.obs import RunLedger


@pytest.fixture()
def isolated(tmp_path, monkeypatch):
    """Fresh cache + ledger for every test (SLMS_LEDGER_DIR is already
    tmp-scoped suite-wide; pin the cache beside it)."""
    monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def _sweep(*extra):
    return main(["sweep", "daxpy", "dscal", "--pairs", "itanium2/gcc_O3",
                 *extra])


class TestLedgerRecording:
    def test_sweep_appends_entry(self, isolated):
        assert _sweep() == 0
        entries = RunLedger().entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "sweep"
        assert entry["experiments"] == 2
        assert len(entry["result_digest"]) == 64
        assert entry["phase_times"]
        assert entry["env"]["engine_version"]

    def test_identical_sweeps_share_digests(self, isolated):
        _sweep()
        _sweep()
        first, second = RunLedger().entries()
        assert first["config_digest"] == second["config_digest"]
        assert first["result_digest"] == second["result_digest"]
        assert first["id"] != second["id"]  # ts differs

    def test_disabled_by_env(self, isolated, monkeypatch):
        monkeypatch.setenv("SLMS_LEDGER", "0")
        _sweep()
        assert RunLedger().entries() == []

    def test_bench_and_trace_share_result_digest(self, isolated, capsys):
        assert main(["bench", "daxpy"]) == 0
        assert main(["trace", "daxpy"]) == 0
        capsys.readouterr()
        bench = RunLedger().latest(kind="bench")
        trace = RunLedger().latest(kind="trace")
        assert bench["result_digest"] == trace["result_digest"]

    def test_fuzz_entry(self, isolated, capsys):
        assert main(["fuzz", "--iterations", "2", "--no-backend"]) == 0
        capsys.readouterr()
        entry = RunLedger().latest(kind="fuzz")
        assert entry["experiments"] == 2
        assert entry["config"]["master_seed"] == 0

    def test_unwritable_ledger_never_breaks_a_run(
        self, isolated, monkeypatch
    ):
        monkeypatch.setenv("SLMS_LEDGER_DIR", "/proc/nonexistent/ledger")
        assert _sweep() == 0

    def test_frozen_digest_unchanged_with_ledger_enabled(self, isolated):
        """The ledger is pure observability: recording must not perturb
        results (same digest with and without it)."""
        _sweep()
        with_ledger = RunLedger().latest()["result_digest"]
        import os

        os.environ["SLMS_LEDGER"] = "0"
        try:
            _sweep()
        finally:
            os.environ.pop("SLMS_LEDGER")
        assert RunLedger().entries()[-1]["result_digest"] == with_ledger
        assert len(RunLedger().entries()) == 1  # second run unrecorded


class TestProfileOutput:
    def test_sweep_profile_shows_utilization(self, isolated, capsys):
        assert _sweep("--profile", "--workers", "1") == 0
        err = capsys.readouterr().err
        assert "worker utilization:" in err
        assert "per-phase wall clock:" in err


class TestObsLedgerCommand:
    def test_listing_and_verify(self, isolated, capsys):
        _sweep()
        capsys.readouterr()
        assert main(["obs", "ledger", "--verify"]) == 0
        captured = capsys.readouterr()
        assert "all content addresses ok" in captured.err
        assert "sweep:daxpy,dscal" in captured.out

    def test_empty_ledger(self, isolated, capsys):
        assert main(["obs", "ledger"]) == 0
        assert "empty" in capsys.readouterr().err


class TestObsDiffCommand:
    def test_identical_runs_pass(self, isolated, capsys):
        _sweep()
        _sweep()
        capsys.readouterr()
        assert main(["obs", "diff"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "result digest unchanged" in out

    def test_injected_wall_regression_fails(self, isolated, capsys):
        _sweep()
        _sweep()
        ledger = RunLedger()
        head = ledger.resolve("HEAD")
        slow = {k: v for k, v in head.items() if k != "id"}
        slow["wall_s"] = max(head["wall_s"], 0.001) * 3
        ledger.append(slow)
        capsys.readouterr()
        assert main(["obs", "diff", "HEAD~1", "HEAD"]) == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_digest_change_fails(self, isolated, capsys):
        _sweep()
        ledger = RunLedger()
        head = ledger.resolve("HEAD")
        tampered = {k: v for k, v in head.items() if k != "id"}
        tampered["result_digest"] = "0" * 64
        ledger.append(tampered)
        capsys.readouterr()
        assert main(["obs", "diff"]) == 1
        assert "hard fail" in capsys.readouterr().out

    def test_json_payload(self, isolated, capsys):
        _sweep()
        _sweep()
        capsys.readouterr()
        assert main(["obs", "diff", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "slms-diff/1"
        assert payload["regression"] is False

    def test_bad_ref_is_usage_error(self, isolated, capsys):
        _sweep()
        capsys.readouterr()
        assert main(["obs", "diff", "HEAD~9", "HEAD"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_comparison_smoke_entry_passes(
        self, isolated, tmp_path, capsys
    ):
        """A 2-experiment sweep has no comparable BENCH history entry;
        the sentinel reports that and passes."""
        _sweep()
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "result_digest_sha256": "f" * 64,
            "history": [{"pr": 7, "experiments": 235, "wall_s": 8.0,
                         "phase_totals_s": {}}],
        }))
        capsys.readouterr()
        assert main(["obs", "diff", "--bench", str(bench)]) == 0
        assert "not compared" in capsys.readouterr().out


class TestObsBenchExport:
    def test_emits_bench_schema(self, isolated, capsys):
        _sweep()
        capsys.readouterr()
        assert main(["obs", "bench-export", "--pr", "8"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["pr"] == 8
        assert record["experiments"] == 2
        assert set(record) == {
            "pr", "label", "engine_version", "experiments", "cache_hits",
            "cache_misses", "cache_hit_rate", "workers", "wall_s",
            "phase_totals_s", "phase_cache_hit_rates",
        }

    def test_out_file(self, isolated, tmp_path, capsys):
        _sweep()
        out = tmp_path / "entry.json"
        assert main(["obs", "bench-export", "--out", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["experiments"] == 2


class TestReportCommand:
    def test_terminal_report(self, isolated, capsys):
        _sweep()
        capsys.readouterr()
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "slms report — 1 run(s)" in out
        assert "sweep:daxpy,dscal" in out

    def test_html_report_self_contained(self, isolated, tmp_path, capsys):
        _sweep()
        out = tmp_path / "report.html"
        assert main(["report", "--html", str(out)]) == 0
        capsys.readouterr()
        html_text = out.read_text()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "Run trajectory" in html_text
        for forbidden in ("http://", "https://", "<script", "src=",
                          "href="):
            assert forbidden not in html_text

    def test_trace_in_and_journal(self, isolated, tmp_path, capsys):
        assert main(["trace", "daxpy",
                     "--trace-out", str(tmp_path / "t.json")]) == 0
        journal = tmp_path / "j.jsonl"
        journal.write_text(
            '{"schema": "slms-journal/1", "key": "k", "status": "ok"}\n'
        )
        capsys.readouterr()
        assert main(["report", "--trace-in", str(tmp_path / "t.json"),
                     "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "profiler (top spans by total time):" in out
        assert "1 record(s), 1 ok" in out

    def test_json_out(self, isolated, tmp_path, capsys):
        _sweep()
        out = tmp_path / "report.json"
        assert main(["report", "--json-out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == "slms-report/1"
        assert payload["runs"] == 1


class TestTraceJsonShape:
    def test_both_timing_keys_present(self, isolated, capsys):
        assert main(["trace", "daxpy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "phase_times" in payload
        assert "cached_phase_times" in payload
        assert payload["cached_phase_times"] == {}  # trace bypasses cache
        assert payload["phase_times"]["total"] > 0
