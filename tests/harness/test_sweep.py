"""Sweep-matrix tests."""

import csv
import io
import json

import pytest

from repro.harness.sweep import DEFAULT_PAIRS, run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        ["daxpy", "kernel12"],
        pairs=[("itanium2", "gcc_O3"), ("arm7tdmi", "arm_gcc")],
    )


class TestRunSweep:
    def test_result_count(self, sweep):
        assert len(sweep.results) == 4

    def test_matrix_shape(self, sweep):
        matrix = sweep.speedup_matrix()
        assert set(matrix) == {"daxpy", "kernel12"}
        assert set(matrix["daxpy"]) == {
            "itanium2/gcc_O3", "arm7tdmi/arm_gcc",
        }

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["daxpy"], pairs=[("vax", "gcc_O3")])

    def test_unknown_compiler_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["daxpy"], pairs=[("itanium2", "tcc")])

    def test_default_pairs_are_valid(self):
        from repro.backend.compiler import COMPILER_PRESETS
        from repro.machines.presets import ALL_MACHINES

        for machine, compiler in DEFAULT_PAIRS:
            assert machine in ALL_MACHINES
            assert compiler in COMPILER_PRESETS


class TestExports:
    def test_csv_parses(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep.to_csv())))
        assert len(rows) == 4
        assert float(rows[0]["speedup"]) > 0
        assert rows[0]["machine"] in ("itanium2", "arm7tdmi")

    def test_json_parses(self, sweep):
        records = json.loads(sweep.to_json())
        assert len(records) == 4
        assert all("speedup" in r for r in records)

    def test_best_pair(self, sweep):
        best = sweep.best_pair_per_workload()
        assert set(best) == {"daxpy", "kernel12"}
        assert all("/" in pair for pair in best.values())
