"""Sweep-matrix tests."""

import csv
import io
import json

import pytest

from repro.harness.sweep import DEFAULT_PAIRS, run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        ["daxpy", "kernel12"],
        pairs=[("itanium2", "gcc_O3"), ("arm7tdmi", "arm_gcc")],
    )


class TestRunSweep:
    def test_result_count(self, sweep):
        assert len(sweep.results) == 4

    def test_matrix_shape(self, sweep):
        matrix = sweep.speedup_matrix()
        assert set(matrix) == {"daxpy", "kernel12"}
        assert set(matrix["daxpy"]) == {
            "itanium2/gcc_O3", "arm7tdmi/arm_gcc",
        }

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["daxpy"], pairs=[("vax", "gcc_O3")])

    def test_unknown_compiler_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["daxpy"], pairs=[("itanium2", "tcc")])

    def test_default_pairs_are_valid(self):
        from repro.backend.compiler import COMPILER_PRESETS
        from repro.machines.presets import ALL_MACHINES

        for machine, compiler in DEFAULT_PAIRS:
            assert machine in ALL_MACHINES
            assert compiler in COMPILER_PRESETS


class TestExports:
    def test_csv_parses(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep.to_csv())))
        assert len(rows) == 4
        assert float(rows[0]["speedup"]) > 0
        assert rows[0]["machine"] in ("itanium2", "arm7tdmi")

    def test_json_parses(self, sweep):
        records = json.loads(sweep.to_json())
        assert len(records) == 4
        assert all("speedup" in r for r in records)

    def test_best_pair(self, sweep):
        best = sweep.best_pair_per_workload()
        assert set(best) == {"daxpy", "kernel12"}
        assert all("/" in pair for pair in best.values())


class TestDefaults:
    def test_workloads_default_to_whole_corpus(self, monkeypatch):
        """run_sweep() with no workloads covers all_workloads() × pairs
        (engine stubbed out — this tests spec construction, not 235
        simulations)."""
        from repro.harness import sweep as sweep_mod
        from repro.harness.engine import EngineStats
        from repro.workloads import all_workloads

        captured = {}

        def fake_run(specs, **kwargs):
            captured["specs"] = list(specs)
            return [], EngineStats(experiments=len(specs))

        monkeypatch.setattr(sweep_mod, "run_experiments", fake_run)
        result = run_sweep()
        specs = captured["specs"]
        expected = [wl.name for wl in all_workloads()]
        assert len(specs) == len(expected) * len(DEFAULT_PAIRS)
        assert sorted({s.workload.name for s in specs}) == sorted(expected)
        assert result.stats.experiments == len(specs)

    def test_unknown_workload_name_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            run_sweep(["definitely_not_a_workload"])
        message = str(excinfo.value)
        assert "definitely_not_a_workload" in message
        assert "daxpy" in message and "kernel1" in message

    def test_stats_attached(self):
        result = run_sweep(
            ["daxpy"], pairs=[("itanium2", "gcc_O3")],
            workers=1, use_cache=False,
        )
        assert result.stats is not None
        assert result.stats.experiments == 1
        assert result.stats.phase_totals["total"] > 0


class TestBenchRecord:
    def test_record_shape(self):
        from repro.harness.sweep import bench_record

        result = run_sweep(
            ["daxpy"], pairs=[("itanium2", "gcc_O3")],
            workers=1, use_cache=False,
        )
        record = bench_record(result, label="unit")
        assert record["label"] == "unit"
        assert record["experiments"] == 1
        assert record["cache_hits"] == 0
        assert "wall_s" in record and "phase_totals_s" in record
