"""Chaos suite: the fault layer under injected crashes, hangs, faults.

Every recovery path in :mod:`repro.harness.faults` is proven here with
deterministic fault injection — no real flakiness, no timing races:

* taxonomy: classification, traceback digests, FailedResult round-trip;
* fault plans: grammar, ``?`` pinning, env activation, times semantics;
* dispatch: transient retry on the deterministic backoff schedule,
  crash containment + quarantine, per-task timeouts, and workers=1 vs
  workers=4 failure invariance;
* checkpointing: journal torn-tail tolerance, failed-record re-run,
  engine resume byte-identity, and a real SIGKILL-style abort of
  ``slms sweep`` resumed to the clean result.

Worker pools here always get an explicit ``workers>=2`` — the CI
container resolves the default to one CPU, which would silently take
the in-process path.
"""

import os
import subprocess
import sys

import pytest

from repro.harness.engine import engine_defaults, run_experiments, run_tasks
from repro.harness.expcache import ExperimentCache
from repro.harness.faults import (
    FailedResult,
    FaultPlan,
    FaultPolicy,
    FaultRule,
    RetryPolicy,
    RunJournal,
    SimulatedCrash,
    TaskError,
    TransientError,
    classify_exception,
    execute_guarded,
    is_failed,
    task_key,
    traceback_digest,
)
from repro.harness.sweep import run_sweep

from tests.harness.test_engine import _result_payload, _specs


def _double(x):
    """Module-level toy task (must stay picklable for worker pools)."""
    return x * 2


def _raise_value_error(x):
    raise ValueError(f"bad item {x}")


class TestTaxonomy:
    def test_classification(self):
        assert classify_exception(TransientError("x")) == "transient"
        assert classify_exception(SimulatedCrash("x")) == "crash"
        assert classify_exception(TaskError("x", kind="oom")) == "oom"
        assert classify_exception(MemoryError()) == "oom"
        assert classify_exception(ValueError("x")) == "deterministic"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TaskError("x", kind="cosmic-ray")

    def test_traceback_digest_is_stable(self):
        def capture():
            try:
                _raise_value_error(7)
            except ValueError as exc:
                return traceback_digest(exc)

        first, second = capture(), capture()
        assert first == second
        assert len(first) == 16

    def test_failed_result_round_trip(self):
        fr = FailedResult(
            task="daxpy@itanium2/gcc_O3",
            index=3,
            kind="crash",
            phase="simulate",
            message="boom",
            traceback_digest="abcd" * 4,
            attempts=2,
            quarantined=True,
            spec={"workload": "daxpy", "machine": "itanium2"},
        )
        data = fr.to_dict()
        assert data["status"] == "failed"
        assert FailedResult.from_dict(data) == fr
        assert is_failed(fr)
        assert not is_failed({"status": "failed"})  # plain dicts are not


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("crash:0;hang:3x2@20;transient:5x1;seed=9")
        assert plan.seed == 9
        assert plan.rules == (
            FaultRule("crash", 0, times=0),
            FaultRule("hang", 3, times=2, seconds=20.0),
            FaultRule("transient", 5, times=1),
        )
        assert FaultPlan.parse(plan.spec()) == plan

    def test_parse_rejects_bad_rules(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode:0")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("SLMS_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("SLMS_FAULTS", "fail:2")
        assert FaultPlan.from_env() == FaultPlan.parse("fail:2")

    def test_wildcard_resolution_is_deterministic(self):
        plan = FaultPlan.parse("fail:?;seed=42")
        a = plan.resolved(100).rules[0].index
        b = plan.resolved(100).rules[0].index
        assert a == b and 0 <= a < 100
        # A different seed must be able to pick a different target.
        others = {
            FaultPlan.parse(f"fail:?;seed={s}").resolved(100).rules[0].index
            for s in range(20)
        }
        assert len(others) > 1

    def test_parent_side_rules(self):
        plan = FaultPlan.parse("corrupt-cache:2;abort:5;crash:1")
        assert plan.corrupt_cache_indices() == frozenset({2})
        assert plan.abort_after() == 5
        assert plan.needs_isolation()
        assert not FaultPlan.parse("fail:0;transient:1").needs_isolation()

    def test_reject_round_trip_and_indices(self):
        plan = FaultPlan.parse("reject:1;reject:4;crash:0")
        assert plan.rules[0] == FaultRule("reject", 1)
        assert FaultPlan.parse(plan.spec()) == plan
        assert plan.reject_indices() == frozenset({1, 4})
        assert FaultPlan.parse("crash:0").reject_indices() == frozenset()

    def test_reject_is_admission_side_only(self):
        # ``apply`` runs inside a worker; reject fires at admission,
        # before dispatch, so the worker-side hook must ignore it.
        plan = FaultPlan.parse("reject:0")
        plan.apply(0, 0, in_process=True)
        plan.apply(0, 0, in_process=False)
        assert not plan.needs_isolation()

    def test_times_limits_attempts(self):
        plan = FaultPlan.parse("transient:0x2")
        for attempt in (0, 1):
            with pytest.raises(TransientError):
                plan.apply(0, attempt, in_process=True)
        plan.apply(0, 2, in_process=True)  # third attempt passes

    def test_in_process_stand_ins(self):
        with pytest.raises(SimulatedCrash):
            FaultPlan.parse("crash:0").apply(0, 0, in_process=True)
        with pytest.raises(TaskError) as excinfo:
            FaultPlan.parse("hang:0@5").apply(0, 0, in_process=True)
        assert excinfo.value.kind == "timeout"


class TestRetryPolicy:
    def test_backoff_schedule_clamps(self):
        retry = RetryPolicy(backoff_s=(0.1, 0.2, 0.4))
        assert [retry.delay(n) for n in (1, 2, 3, 4, 9)] == [
            0.1, 0.2, 0.4, 0.4, 0.4,
        ]

    def test_max_attempts_per_kind(self):
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=3, kinds=("transient", "timeout")),
            crash_strikes=2,
        )
        assert policy.max_attempts_for("transient") == 3
        assert policy.max_attempts_for("timeout") == 3
        assert policy.max_attempts_for("crash") == 2
        assert policy.max_attempts_for("deterministic") == 1
        assert policy.max_attempts_for("oom") == 1


class TestGuardedInProcess:
    def test_transient_retries_on_the_backoff_schedule(self):
        sleeps = []
        outcomes = execute_guarded(
            _double,
            [10, 20, 30],
            policy=FaultPolicy(
                retry=RetryPolicy(max_attempts=3, backoff_s=(0.01, 0.05)),
                fault_plan=FaultPlan.parse("transient:1x2"),
            ),
            sleep=sleeps.append,
        )
        assert [o.value for o in outcomes] == [20, 40, 60]
        assert [o.attempts for o in outcomes] == [1, 3, 1]
        assert sleeps == [0.01, 0.05]  # deterministic, no jitter
        assert [e["event"] for e in outcomes[1].log] == ["retry", "retry"]

    def test_deterministic_fault_fails_without_retry(self):
        outcomes = execute_guarded(
            _double, [1, 2, 3],
            policy=FaultPolicy(fault_plan=FaultPlan.parse("fail:1")),
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        failure = outcomes[1].failure
        assert failure.kind == "deterministic"
        assert failure.attempts == 1
        assert failure.index == 1
        assert outcomes[1].log == [
            {"event": "failed", "kind": "deterministic", "attempts": 1}
        ]

    def test_real_exception_is_contained_and_classified(self):
        outcomes = execute_guarded(_raise_value_error, [7])
        failure = outcomes[0].failure
        assert failure.kind == "deterministic"
        assert "ValueError: bad item 7" in failure.message
        assert failure.traceback_digest

    def test_in_process_crash_quarantines_after_strikes(self):
        outcomes = execute_guarded(
            _double, [1, 2],
            policy=FaultPolicy(
                crash_strikes=2, fault_plan=FaultPlan.parse("crash:0")
            ),
        )
        failure = outcomes[0].failure
        assert failure.kind == "crash"
        assert failure.quarantined
        assert failure.attempts == 2
        assert outcomes[1].value == 4

    def test_oom_kind(self):
        outcomes = execute_guarded(
            _double, [1],
            policy=FaultPolicy(fault_plan=FaultPlan.parse("oom:0")),
        )
        assert outcomes[0].failure.kind == "oom"

    def test_on_complete_fires_once_per_task_in_order(self):
        seen = []
        execute_guarded(
            _double, [1, 2, 3],
            policy=FaultPolicy(fault_plan=FaultPlan.parse("fail:1")),
            on_complete=lambda i, out: seen.append((i, out.ok)),
        )
        assert seen == [(0, True), (1, False), (2, True)]


class TestGuardedPooled:
    def test_worker_crash_is_quarantined_others_complete(self):
        outcomes = execute_guarded(
            _double, list(range(4)), workers=2,
            policy=FaultPolicy(
                crash_strikes=2, fault_plan=FaultPlan.parse("crash:0")
            ),
        )
        failure = outcomes[0].failure
        assert failure.kind == "crash"
        assert failure.quarantined
        assert failure.attempts == 2
        assert "worker process died" in failure.message
        # Innocent bystanders of the pool breakage complete normally.
        assert [o.value for o in outcomes[1:]] == [2, 4, 6]

    def test_single_crash_recovers_on_retry(self):
        outcomes = execute_guarded(
            _double, list(range(3)), workers=2,
            policy=FaultPolicy(
                crash_strikes=3, fault_plan=FaultPlan.parse("crash:1x1")
            ),
        )
        assert [o.ok for o in outcomes] == [True, True, True]
        assert outcomes[1].attempts == 2
        assert outcomes[1].log[0]["event"] == "retry"
        assert outcomes[1].log[0]["kind"] == "crash"

    def test_hung_task_times_out_others_complete(self):
        outcomes = execute_guarded(
            _double, list(range(3)), workers=2,
            policy=FaultPolicy(
                timeout_s=1.5, fault_plan=FaultPlan.parse("hang:2@60")
            ),
        )
        assert [o.ok for o in outcomes] == [True, True, False]
        failure = outcomes[2].failure
        assert failure.kind == "timeout"
        assert "wall-clock limit" in failure.message

    def test_timeout_retry_succeeds_when_hang_is_transient(self):
        outcomes = execute_guarded(
            _double, list(range(2)), workers=2,
            policy=FaultPolicy(
                timeout_s=1.5,
                retry=RetryPolicy(
                    max_attempts=2, backoff_s=(0.0,),
                    kinds=("transient", "timeout"),
                ),
                fault_plan=FaultPlan.parse("hang:0x1@60"),
            ),
        )
        assert [o.ok for o in outcomes] == [True, True]
        assert outcomes[0].attempts == 2

    def test_failure_reports_invariant_across_worker_counts(self):
        plan = FaultPlan.parse("fail:1;transient:2x9;oom:3")
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2, backoff_s=(0.0,)),
            fault_plan=plan,
        )

        def snapshot(workers):
            outcomes = execute_guarded(
                _double, list(range(5)), workers=workers, policy=policy
            )
            return [
                o.failure.to_dict() if not o.ok else o.value
                for o in outcomes
            ]

        serial, pooled = snapshot(1), snapshot(4)
        assert serial == pooled
        kinds = [
            r["kind"] for r in serial if isinstance(r, dict)
        ]
        assert kinds == ["deterministic", "transient", "oom"]


class TestRunJournal:
    def test_records_replay_and_last_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("k1", "ok", {"v": 1})
            journal.record("k2", "failed", {"kind": "crash"})
            journal.record("k1", "ok", {"v": 2})
        loaded = RunJournal(path, resume=True)
        assert len(loaded) == 2
        assert loaded.completed_ok("k1") == {"v": 2}
        # Failed records are never replayed: the task must re-run.
        assert loaded.completed_ok("k2") is None
        assert loaded.get("k2")["status"] == "failed"
        loaded.close()

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("k1", "ok", {"v": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "slms-journal/1", "key": "k2", "sta')
        loaded = RunJournal(path, resume=True)
        assert loaded.completed_ok("k1") == {"v": 1}
        assert loaded.completed_ok("k2") is None
        loaded.close()

    def test_fresh_journal_overwrites_previous(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("k1", "ok", {"v": 1})
        with RunJournal(path) as journal:  # resume=False starts over
            assert journal.completed_ok("k1") is None
        assert RunJournal(path, resume=True).completed_ok("k1") is None

    def test_task_key_is_canonical(self):
        assert task_key({"b": 1, "a": 2}) == task_key({"a": 2, "b": 1})
        assert task_key({"a": 1}) != task_key({"a": 2})


class TestRunTasksGuarded:
    def test_failures_land_in_slot_order(self):
        results = run_tasks(
            _double, [1, 2, 3], workers=1,
            fault_plan=FaultPlan.parse("fail:1"),
        )
        assert results[0] == 2 and results[2] == 6
        assert is_failed(results[1])

    def test_journal_resume_skips_completed_items(self, tmp_path):
        path = tmp_path / "j.jsonl"
        items = [1, 2, 3]
        with RunJournal(path) as journal:
            first = run_tasks(_double, items, workers=1, journal=journal)
        assert first == [2, 4, 6]
        calls = []

        def tracked(x):
            calls.append(x)
            return x * 2

        with RunJournal(path, resume=True) as journal:
            second = run_tasks(tracked, items, workers=1, journal=journal)
        assert second == first
        assert calls == []  # everything replayed from the journal


class TestEngineFaults:
    def test_failed_spec_carries_identity(self, monkeypatch):
        monkeypatch.setenv("SLMS_FAULTS", "fail:0")
        results, stats = run_experiments(
            _specs(("daxpy", "kernel1")), workers=1, use_cache=False
        )
        assert is_failed(results[0])
        assert results[0].spec == {
            "workload": "daxpy",
            "suite": "linpack",
            "machine": "itanium2",
            "compiler": "gcc_O3",
        }
        assert results[1].workload == "kernel1"
        assert stats.failures == 1

    def test_transient_retry_recovers_and_counts(self):
        plan = FaultPlan.parse("transient:0x1")
        with engine_defaults(fault_plan=plan):
            results, stats = run_experiments(
                _specs(("daxpy",)), workers=1, use_cache=False
            )
        assert not is_failed(results[0])
        assert stats.failures == 0
        assert stats.retries == 1

    def test_chaotic_sweep_reports_exactly_the_faulted_cells(self):
        pairs = [("itanium2", "gcc_O3"), ("pentium", "gcc_O3")]
        plan = FaultPlan.parse("crash:0;hang:3@60")
        with engine_defaults(fault_plan=plan, task_timeout_s=5.0):
            sweep = run_sweep(
                ["daxpy", "kernel1"], pairs=pairs, workers=2, use_cache=False
            )
        assert len(sweep.failures) == 2
        by_kind = {f.kind: f for f in sweep.failures}
        assert by_kind["crash"].task == "daxpy@itanium2/gcc_O3"
        assert by_kind["timeout"].task == "kernel1@pentium/gcc_O3"
        assert len(sweep.results) == 2
        assert not sweep.ok
        # Failure rows ride along in both exports.
        assert "FAILED[crash/task]" in sweep.to_csv()
        assert '"status": "failed"' in sweep.to_json()

    def test_resume_is_byte_identical_to_uninterrupted(self, tmp_path):
        specs = _specs(("daxpy", "kernel1"))
        clean, _ = run_experiments(specs, workers=1, use_cache=False)

        journal = str(tmp_path / "sweep.jsonl")
        with engine_defaults(fault_plan=FaultPlan.parse("crash:1")):
            chaotic, _ = run_experiments(
                specs, workers=2, use_cache=False, journal_path=journal
            )
        assert not is_failed(chaotic[0]) and is_failed(chaotic[1])

        resumed, stats = run_experiments(
            specs, workers=1, use_cache=False,
            journal_path=journal, resume=True,
        )
        assert stats.journal_hits == 1  # spec 0 replayed, spec 1 re-run
        assert [_result_payload(r) for r in resumed] == [
            _result_payload(r) for r in clean
        ]

    def test_corrupt_cache_entry_is_quarantined_on_next_read(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan.parse("corrupt-cache:0")
        with engine_defaults(fault_plan=plan):
            run_experiments(_specs(("daxpy",)), workers=1,
                            cache_dir=cache_dir)
        # The injected corruption poisoned the freshly-written entry;
        # the next run must quarantine it, recompute, and re-cache.
        results, stats = run_experiments(
            _specs(("daxpy",)), workers=1, cache_dir=cache_dir
        )
        assert not is_failed(results[0])
        assert stats.cache_hits == 0
        cache = ExperimentCache(cache_dir)
        assert len(cache.corrupt_entries()) == 1
        assert cache.stats()["corrupt"] == 1
        assert cache.lifetime_counters()["evictions"] >= 1
        # Third run: the re-cached entry is healthy again.
        _, warm = run_experiments(
            _specs(("daxpy",)), workers=1, cache_dir=cache_dir
        )
        assert warm.cache_hits == 1


class TestSigkillResume:
    """A sweep killed mid-run (``abort`` rule = ``os._exit(137)``)
    resumes from its journal to the byte-identical clean export."""

    def _sweep(self, tmp_path, out, extra, env_faults=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["SLMS_CACHE_DIR"] = str(tmp_path / "cache-unused")
        if env_faults:
            env["SLMS_FAULTS"] = env_faults
        else:
            env.pop("SLMS_FAULTS", None)
        cmd = [
            sys.executable, "-m", "repro.cli", "sweep", "daxpy", "kernel1",
            "--pairs", "itanium2/gcc_O3", "--workers", "1", "--no-cache",
            "--json", str(out),
        ] + extra
        return subprocess.run(
            cmd, cwd="/root/repo", env=env, capture_output=True, text=True,
            timeout=300,
        )

    def test_killed_sweep_resumes_to_clean_digest(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"

        clean = self._sweep(tmp_path, tmp_path / "clean.json", [])
        assert clean.returncode == 0, clean.stderr

        killed = self._sweep(
            tmp_path, tmp_path / "killed.json",
            ["--journal", str(journal)], env_faults="abort:1",
        )
        assert killed.returncode == 137  # died mid-sweep, like SIGKILL
        assert journal.exists()
        assert len(RunJournal(journal, resume=True)) == 1

        resumed = self._sweep(
            tmp_path, tmp_path / "resumed.json",
            ["--resume", str(journal)],
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "1 replay(s)" in resumed.stderr
        assert (
            (tmp_path / "resumed.json").read_bytes()
            == (tmp_path / "clean.json").read_bytes()
        )


class TestCliFaults:
    def test_faulted_sweep_exits_1_and_reports(self, monkeypatch, tmp_path,
                                               capsys):
        from repro.cli import main

        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("SLMS_FAULTS", "fail:0")
        assert main(["sweep", "daxpy", "--pairs", "itanium2/gcc_O3",
                     "--workers", "1", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "1 experiment(s) FAILED" in err
        assert "injected deterministic fault" in err


class TestFuzzReducerError:
    def test_reducer_crash_is_recorded_not_swallowed(self, monkeypatch):
        from repro.fuzz import session as fuzz_session
        from repro.fuzz.oracle import CaseOutcome

        def fake_run_case(case, config):
            return CaseOutcome(
                seed=case.seed, profile=case.profile, status="fail",
                failure_class="semantic-divergence", detail="injected",
            )

        def broken_reduce(case, outcome, config, max_tests=0):
            raise RuntimeError("reducer exploded")

        monkeypatch.setattr(fuzz_session, "run_case", fake_run_case)
        monkeypatch.setattr(fuzz_session, "reduce_case", broken_reduce)
        config = fuzz_session.FuzzSessionConfig(
            master_seed=1, iterations=2, profile="tiny", workers=1
        )
        report = fuzz_session.run_fuzz_session(config)
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.notes.startswith(
                "reducer-error: RuntimeError: reducer exploded"
            )
            assert failure.reduced == failure.source  # kept unreduced
            assert failure.to_dict()["notes"] == failure.notes

    def test_harness_error_becomes_failure_class(self, monkeypatch):
        from repro.fuzz import session as fuzz_session

        def fake_run_tasks(fn, tasks, workers=None, **kwargs):
            results = [fn(task) for task in tasks]
            results[0] = FailedResult(
                task="task[0]", index=0, kind="crash",
                message="worker process died", quarantined=True,
            )
            return results

        monkeypatch.setattr(fuzz_session, "run_tasks", fake_run_tasks)
        config = fuzz_session.FuzzSessionConfig(
            master_seed=1, iterations=2, profile="tiny", workers=1
        )
        report = fuzz_session.run_fuzz_session(config)
        assert report.failure_counts.get("harness-error") == 1
        harness_failures = [
            f for f in report.failures if f.failure_class == "harness-error"
        ]
        assert len(harness_failures) == 1
        assert "crash in task: worker process died" in harness_failures[0].detail
