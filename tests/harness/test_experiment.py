"""Harness tests: experiment methodology and figure plumbing."""

import pytest

from repro.core.slms import SLMSOptions
from repro.harness.experiment import (
    run_experiment,
    run_suite,
    transform_kernel,
)
from repro.harness.figures import FIGURES, run_figure
from repro.harness.report import render_figure
from repro.machines import itanium2, pentium
from repro.sim.interp import run_program, state_equal
from repro.workloads import get_workload
from repro.workloads.base import Workload

FAST = Workload(
    name="fast",
    suite="test",
    setup=(
        "float A[64], B[64];\n"
        "for (i = 0; i < 64; i++) { A[i] = i * 0.5; B[i] = 1.0; }\n"
    ),
    kernel=(
        "for (i = 0; i < 48; i++) { B[i] = A[i] * 2.0 + B[i]; "
        "A[i] = B[i] * 0.5; }\n"
    ),
)


class TestTransformKernel:
    def test_setup_untouched(self):
        program, reports = transform_kernel(get_workload("daxpy"))
        # The setup's init loop must appear verbatim (no SLMS there).
        from repro.lang import to_source

        text = to_source(program)
        assert "dx[i] = 0.01 * i + 0.3;" in text

    def test_kernel_transformed(self):
        _, reports = transform_kernel(get_workload("daxpy"))
        assert any(r.applied for r in reports)

    def test_semantics_preserved(self):
        wl = get_workload("kernel7")
        program, reports = transform_kernel(wl)
        base = run_program(wl.full_program())
        out = run_program(program)
        ignore = {n for r in reports for n in r.new_scalars}
        assert state_equal(base, out, ignore=ignore)

    def test_temp_types_follow_arrays(self):
        # Decomposition temp for an int array must be int-typed.
        wl = Workload(
            name="inty",
            suite="test",
            setup=(
                "int IA[32]; int acc = 0;\n"
                "for (i = 0; i < 32; i++) IA[i] = 3 * i + 1;\n"
            ),
            kernel="for (i = 0; i < 30; i++) { acc = acc + IA[i] / 2; }\n",
        )
        program, reports = transform_kernel(
            wl, SLMSOptions(enable_filter=False)
        )
        base = run_program(wl.full_program())
        out = run_program(program)
        ignore = {n for r in reports for n in r.new_scalars}
        assert state_equal(base, out, ignore=ignore)


class TestRunExperiment:
    def test_result_fields(self):
        res = run_experiment(FAST, itanium2(), "gcc_O3")
        assert res.base_cycles > 0
        assert res.slms_cycles > 0
        assert res.speedup == res.base_cycles / res.slms_cycles
        assert res.machine == "itanium2"
        assert res.compiler == "gcc_O3"

    def test_verification_enabled_by_default(self):
        # Must not raise — the verification path runs.
        run_experiment(FAST, pentium(), "gcc_O0")

    def test_string_machine_and_compiler(self):
        res = run_experiment(FAST, "itanium2", "gcc_O3")
        assert res.machine == "itanium2"

    def test_decline_reported(self):
        copies = Workload(
            name="copies",
            suite="test",
            setup="float A[64], B[64];\n",
            kernel="for (i = 0; i < 48; i++) { A[i] = B[i]; }\n",
        )
        res = run_experiment(copies, itanium2(), "gcc_O3")
        assert not res.slms_applied
        assert "memory-ref" in res.slms_reason
        # Declined means identical code: speedup exactly 1.
        assert res.base_cycles == res.slms_cycles

    def test_energy_reported(self):
        res = run_experiment(FAST, "arm7tdmi", "arm_gcc")
        assert res.base_energy > 0 and res.slms_energy > 0

    def test_run_suite(self):
        results = run_suite([FAST, FAST], itanium2(), "gcc_O3")
        assert len(results) == 2


class TestFigures:
    def test_registry_complete(self):
        assert set(FIGURES) == {
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "fig20", "fig21", "fig22", "text_bundles",
        }

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_quick_fig14_shape(self):
        result = run_figure("fig14", quick=True)
        assert "slms_speedup" in result.series
        assert len(result.series["slms_speedup"]) == 6  # 3 + 3 quick

    def test_quick_fig16_series(self):
        result = run_figure("fig16", quick=True)
        assert set(result.series) == {
            "slms_at_O0_speedup", "O3_speedup", "gap_closed_fraction",
        }

    def test_quick_fig21_percentages(self):
        result = run_figure("fig21", quick=True)
        for value in result.series["power_improvement_pct"].values():
            assert -100.0 < value < 100.0

    def test_text_bundles(self):
        result = run_figure("text_bundles")
        before = result.series["bundles_before"]
        after = result.series["bundles_after"]
        assert set(before) == {"kernel8", "fma_loop"}
        # The §9.2 claim: SLMS reduces bundles per iteration.
        assert after["kernel8"] <= before["kernel8"]

    def test_render_figure(self):
        result = run_figure("fig14", quick=True)
        text = render_figure(result)
        assert "fig14" in text
        assert "geomean" in text
