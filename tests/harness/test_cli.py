"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.fixture()
def loop_file(tmp_path):
    path = tmp_path / "loop.c"
    path.write_text(
        """
        float A[64], B[64];
        float s = 0.0, t;
        for (i = 0; i < 64; i++) { A[i] = i; B[i] = 2.0; }
        for (i = 0; i < 64; i++) { t = A[i] * B[i]; s = s + t; }
        """
    )
    return str(path)


class TestTransform:
    def test_basic(self, loop_file, capsys):
        assert main(["transform", loop_file]) == 0
        out = capsys.readouterr().out
        assert "for (i = 0; i < 62; i += 2)" in out

    def test_paper_style(self, loop_file, capsys):
        main(["transform", loop_file, "--paper"])
        assert "||" in capsys.readouterr().out

    def test_report(self, loop_file, capsys):
        main(["transform", loop_file, "--report"])
        err = capsys.readouterr().err
        assert "applied II=1" in err

    def test_expansion_none(self, loop_file, capsys):
        main(["transform", loop_file, "--expansion", "none"])
        out = capsys.readouterr().out
        assert "i += 2" not in out  # no MVE unrolling

    def test_output_is_reparseable(self, loop_file, capsys):
        from repro.lang import parse_program

        main(["transform", loop_file])
        parse_program(capsys.readouterr().out)


class TestBench:
    def test_bench_daxpy(self, capsys):
        assert main(["bench", "daxpy", "--machine", "itanium2",
                     "--compiler", "gcc_O3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "daxpy" in out

    def test_bench_arm(self, capsys):
        main(["bench", "dscal", "--machine", "arm7tdmi",
              "--compiler", "arm_gcc"])
        assert "nJ" in capsys.readouterr().out


class TestFigure:
    def test_quick_figure(self, capsys):
        assert main(["figure", "text_bundles", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "kernel8" in out
