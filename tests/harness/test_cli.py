"""CLI smoke tests."""

import pytest

from repro.cli import main


@pytest.fixture()
def loop_file(tmp_path):
    path = tmp_path / "loop.c"
    path.write_text(
        """
        float A[64], B[64];
        float s = 0.0, t;
        for (i = 0; i < 64; i++) { A[i] = i; B[i] = 2.0; }
        for (i = 0; i < 64; i++) { t = A[i] * B[i]; s = s + t; }
        """
    )
    return str(path)


class TestTransform:
    def test_basic(self, loop_file, capsys):
        assert main(["transform", loop_file]) == 0
        out = capsys.readouterr().out
        assert "for (i = 0; i < 62; i += 2)" in out

    def test_paper_style(self, loop_file, capsys):
        main(["transform", loop_file, "--paper"])
        assert "||" in capsys.readouterr().out

    def test_report(self, loop_file, capsys):
        main(["transform", loop_file, "--report"])
        err = capsys.readouterr().err
        assert "applied II=1" in err

    def test_expansion_none(self, loop_file, capsys):
        main(["transform", loop_file, "--expansion", "none"])
        out = capsys.readouterr().out
        assert "i += 2" not in out  # no MVE unrolling

    def test_output_is_reparseable(self, loop_file, capsys):
        from repro.lang import parse_program

        main(["transform", loop_file])
        parse_program(capsys.readouterr().out)


class TestBench:
    def test_bench_daxpy(self, capsys):
        assert main(["bench", "daxpy", "--machine", "itanium2",
                     "--compiler", "gcc_O3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "daxpy" in out

    def test_bench_arm(self, capsys):
        main(["bench", "dscal", "--machine", "arm7tdmi",
              "--compiler", "arm_gcc"])
        assert "nJ" in capsys.readouterr().out


class TestFigure:
    def test_quick_figure(self, capsys):
        assert main(["figure", "text_bundles", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "kernel8" in out


class TestSweep:
    def test_sweep_table_and_stats(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["sweep", "daxpy", "--pairs", "itanium2/gcc_O3",
                     "--workers", "1"]) == 0
        captured = capsys.readouterr()
        assert "daxpy" in captured.out
        assert "itanium2/gcc_O3" in captured.out
        assert "1 experiments" in captured.err

    def test_sweep_csv_export_and_warm_cache(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        csv_path = tmp_path / "matrix.csv"
        args = ["sweep", "daxpy", "--pairs", "itanium2/gcc_O3",
                "--workers", "1", "--csv", str(csv_path)]
        assert main(args) == 0
        first = csv_path.read_text()
        capsys.readouterr()
        assert main(args) == 0
        captured = capsys.readouterr()
        assert csv_path.read_text() == first  # warm run byte-identical
        assert "1 hit(s)" in captured.err

    def test_sweep_bench_json(self, tmp_path, monkeypatch, capsys):
        import json as json_mod

        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        bench = tmp_path / "BENCH_sweep.json"
        assert main(["sweep", "daxpy", "--pairs", "itanium2/gcc_O3",
                     "--workers", "1", "--profile",
                     "--bench-json", str(bench)]) == 0
        record = json_mod.loads(bench.read_text())
        assert record["experiments"] == 1
        assert "phase_totals_s" in record and "wall_s" in record
        assert "per-phase wall clock" in capsys.readouterr().err

    def test_sweep_unknown_workload_errors(self, capsys):
        # Input errors exit 2 (usage/input), not 1 (failed work).
        assert main(["sweep", "not_a_workload"]) == 2
        err = capsys.readouterr().err
        assert "valid names" in err

    def test_sweep_bad_pair_errors(self, capsys):
        assert main(["sweep", "daxpy", "--pairs", "itanium2"]) == 2
        assert "MACHINE/COMPILER" in capsys.readouterr().err


class TestExitCodes:
    """The top-level exception boundary's unified exit-code contract."""

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def boom(args):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.cli._cmd_cache", boom)
        assert main(["cache", "stats"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_internal_error_exits_1_without_traceback(self, monkeypatch,
                                                      capsys):
        def boom(args):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr("repro.cli._cmd_cache", boom)
        assert main(["cache", "stats"]) == 1
        err = capsys.readouterr().err
        assert "internal error: RuntimeError: wires crossed" in err
        assert "SLMS_DEBUG" in err
        assert "Traceback" not in err

    def test_slms_debug_reraises(self, monkeypatch):
        def boom(args):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr("repro.cli._cmd_cache", boom)
        monkeypatch.setenv("SLMS_DEBUG", "1")
        with pytest.raises(RuntimeError):
            main(["cache", "stats"])

    def test_frontend_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("for (i = 0; i < ; i++) { }")
        assert main(["transform", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        main(["sweep", "daxpy", "--pairs", "itanium2/gcc_O3",
              "--workers", "1"])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "entries:   1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:   0" in capsys.readouterr().out


class TestBenchProfile:
    def test_bench_profile_prints_phases(self, capsys):
        assert main(["bench", "daxpy", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall clock" in out
        assert "simulate" in out
