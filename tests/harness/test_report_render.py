"""Report-rendering edge cases."""

from repro.harness.figures import FigureResult
from repro.harness.report import render_figure


def make(series, notes=()):
    result = FigureResult(figure="figX", title="Test figure")
    result.series = series
    result.notes = list(notes)
    return result


class TestRenderFigure:
    def test_geomean_for_ratio_series(self):
        text = render_figure(make({"speedup": {"a": 2.0, "b": 0.5}}))
        assert "geomean" in text
        assert "1.000" in text  # sqrt(2 * 0.5)

    def test_mean_for_percentage_series(self):
        text = render_figure(
            make({"improvement_pct": {"a": 10.0, "b": -30.0}})
        )
        assert "mean" in text and "geomean" not in text
        assert "-10.000" in text

    def test_mixed_series_uses_geomean_label(self):
        text = render_figure(
            make({"speedup": {"a": 1.0}, "other_pct": {"a": 5.0}})
        )
        assert "geomean" in text

    def test_missing_cells_rendered_as_dash(self):
        text = render_figure(
            make({"s1": {"a": 1.0}, "s2": {"b": 2.0}})
        )
        assert "-" in text

    def test_notes_appended(self):
        text = render_figure(make({"s": {"a": 1.0}}, notes=["hello note"]))
        assert "note: hello note" in text

    def test_workload_order_preserved(self):
        result = make({"s": {}})
        result.series["s"] = {"zeta": 1.0, "alpha": 2.0}
        lines = render_figure(result).splitlines()
        names = [ln.split()[0] for ln in lines if ln.startswith(("zeta", "alpha"))]
        assert names == ["zeta", "alpha"]  # insertion order, not sorted

    def test_empty_series(self):
        text = render_figure(make({"s": {}}))
        assert "figX" in text
