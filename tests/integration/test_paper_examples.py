"""Integration tests: every worked example in the paper, end to end.

Each test takes a loop straight from the paper, runs the relevant
machinery, checks the *structural* claims the paper makes (II values,
kernel shapes, decomposition choices) and verifies semantics against
the interpreter oracle.
"""


from repro import SLMSOptions, slms, to_source
from repro.lang import parse_program, parse_stmt
from repro.sim.interp import run_program, state_equal


def check_equal(source, outcome, env=None, extra_ignore=()):
    base = run_program(parse_program(source), env=env)
    out = run_program(outcome.program, env=env)
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= set(extra_ignore)
    ignore |= {k for k in out if k not in base}
    assert state_equal(base, out, ignore=ignore)


class TestSection1DotProduct:
    """§1: the opening pipelining example."""

    SOURCE = """
    float A[40], B[40];
    float s = 0.0, t;
    for (i = 0; i < 40; i++) { A[i] = i; B[i] = 0.5; }
    for (i = 0; i < 40; i++) {
        t = A[i] * B[i];
        s = s + t;
    }
    """

    def test_pipelines_at_ii_1(self):
        outcome = slms(self.SOURCE)
        report = outcome.loops[-1]
        assert report.applied and report.ii == 1
        check_equal(self.SOURCE, outcome)

    def test_kernel_overlaps_iterations(self):
        outcome = slms(self.SOURCE)
        text = to_source(outcome.program, style="paper")
        # The kernel mixes S2_i with S1_{i+1}: an s-update and a t-load
        # of the next iteration on one row.
        assert "s = s + " in text and "|| " in text


class TestSection32Decomposition:
    """§3.2: A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2]."""

    SOURCE = """
    float A[64];
    for (i = 0; i < 64; i++) A[i] = 0.25 * i + 1.0;
    for (i = 2; i < 60; i++)
        A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
    """

    def test_one_decomposition_gives_ii_1(self):
        outcome = slms(self.SOURCE)
        report = outcome.loops[-1]
        assert report.applied
        assert report.decompositions == 1
        assert report.ii == 1
        check_equal(self.SOURCE, outcome)

    def test_hoists_the_read_ahead_load(self):
        outcome = slms(self.SOURCE, SLMSOptions(expansion="none"))
        text = to_source(outcome.program)
        # reg1 holds A[i+2+shift]: the read with no flow dep to the store.
        assert "reg1 = A[i + " in text


class TestSection33MVE:
    """§3.3: MVE unrolls the kernel twice with reg1/reg2."""

    SOURCE = """
    float a[64];
    for (i = 0; i < 64; i++) a[i] = 0.125 * i + 1.0;
    for (i = 2; i < 60; i++)
        a[i] = a[i-1] + a[i-2] + a[i+1] + a[i+2];
    """

    def test_two_rotating_registers(self):
        outcome = slms(self.SOURCE, SLMSOptions(expansion="mve"))
        report = outcome.loops[-1]
        assert report.applied and report.expansion == "mve"
        assert report.unroll == 2
        text = to_source(outcome.program)
        assert "reg1" in text and "reg2" in text
        check_equal(self.SOURCE, outcome)


class TestSection34ScalarExpansion:
    """§3.4: the same loop with a temp array instead of renaming."""

    SOURCE = TestSection33MVE.SOURCE

    def test_temp_array_version(self):
        outcome = slms(self.SOURCE, SLMSOptions(expansion="scalar"))
        report = outcome.loops[-1]
        assert report.applied and report.expansion == "scalar"
        text = to_source(outcome.program)
        assert "regArr" in text.replace("reg1Arr", "regArr")
        check_equal(self.SOURCE, outcome)


class TestSection5MaxLoop:
    """§5: the find-max loop with if-conversion + decomposition."""

    SOURCE = """
    float arr[50];
    float max;
    for (i = 0; i < 50; i++) arr[i] = (i * 37) % 50 + 0.5;
    max = arr[0];
    for (i = 0; i < 50; i++)
        if (max < arr[i]) max = arr[i];
    """

    def test_applies_with_force(self):
        outcome = slms(self.SOURCE, SLMSOptions(force=True))
        report = outcome.loops[-1]
        assert report.applied
        assert report.decompositions >= 1
        check_equal(self.SOURCE, outcome)

    def test_predicated_kernel(self):
        outcome = slms(self.SOURCE, SLMSOptions(force=True))
        text = to_source(outcome.program)
        assert "pred" in text


class TestSection5HydroLoop:
    """§5: the DU1/DU2/DU3 loop needs no decomposition and gets MII=1."""

    SOURCE = """
    float DU1[320], DU2[320], DU3[320], U1[320], U2[320], U3[320];
    for (i = 0; i < 320; i++) {
        U1[i] = 1.0 + 0.001 * i; U2[i] = 2.0 - 0.001 * i;
        U3[i] = 0.5 + 0.002 * i;
    }
    for (ky = 1; ky < 100; ky++) {
        DU1[ky] = U1[ky+1] - U1[ky-1];
        DU2[ky] = U2[ky+1] - U2[ky-1];
        DU3[ky] = U3[ky+1] - U3[ky-1];
        U1[ky+101] = U1[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
        U2[ky+101] = U2[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
        U3[ky+101] = U3[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
    }
    """

    def test_ii_1_no_decomposition(self):
        outcome = slms(self.SOURCE)
        report = outcome.loops[-1]
        assert report.applied
        assert report.ii == 1
        assert report.decompositions == 0
        assert report.n_mis == 6
        check_equal(self.SOURCE, outcome)


class TestSection6Interchange:
    """§6: interchange turns the j-carried nest into an SLMSable one."""

    SETUP = (
        "float X[16][16];\n"
        "float t;\n"
        "for (i = 0; i < 16; i++) { for (j = 0; j < 16; j++) "
        "{ X[i][j] = 0.1 * i + j; } }\n"
    )
    NEST = (
        "for (i = 0; i < 16; i++) { for (j = 0; j < 15; j++) "
        "{ t = X[i][j]; X[i][j+1] = t; } }"
    )

    def test_slms_declines_before_interchange(self):
        outcome = slms(self.SETUP + self.NEST, SLMSOptions(enable_filter=False))
        assert not outcome.loops[-1].applied

    def test_slms_applies_after_interchange(self):
        from repro.transforms import interchange

        swapped = interchange(parse_stmt(self.NEST))
        prog = parse_program(self.SETUP)
        prog.body.append(swapped)
        outcome = slms(prog, SLMSOptions(enable_filter=False))
        report = outcome.loops[-1]
        assert report.applied and report.ii == 1
        base = run_program(parse_program(self.SETUP + self.NEST))
        out = run_program(outcome.program)
        ignore = {n for r in outcome.loops for n in r.new_scalars} | {"t"}
        assert state_equal(base, out, ignore=ignore)


class TestSection6Fusion:
    """§6: the fused loop pipelines at a valid II."""

    SETUP = (
        "float A[64], B[64], C[64];\n"
        "float t, q;\n"
        "for (i = 0; i < 64; i++) { A[i] = 0.01 * i; B[i] = 1.0; "
        "C[i] = 0.5; }\n"
    )
    L1 = "for (i = 1; i < 40; i++) { t = A[i-1]; B[i] = B[i] + t; A[i] = t + B[i]; }"
    L2 = "for (i = 1; i < 40; i++) { q = C[i-1]; B[i] = B[i] + q; C[i] = q * B[i]; }"

    def test_fuse_then_slms(self):
        from repro.transforms import fuse

        fused = fuse(parse_stmt(self.L1), parse_stmt(self.L2))
        prog = parse_program(self.SETUP)
        prog.body.append(fused)
        outcome = slms(prog, SLMSOptions(enable_filter=False))
        report = outcome.loops[-1]
        assert report.applied
        assert report.n_mis == 6
        base = run_program(
            parse_program(self.SETUP + self.L1 + "\n" + self.L2)
        )
        out = run_program(outcome.program)
        ignore = {n for r in outcome.loops for n in r.new_scalars} | {"t", "q"}
        assert state_equal(base, out, ignore=ignore)


class TestSection8UserInteraction:
    """§8: moving lw++ turns II=2 into II=1."""

    SETUP = """
    float x[128], y[128];
    float temp = 100.0;
    int lw;
    for (i = 0; i < 128; i++) { x[i] = 0.01 * i; y[i] = 0.02 * i; }
    """
    BEFORE = """
    lw = 6;
    for (j = 4; j < 100; j = j + 2) {
        temp -= x[lw] * y[j];
        lw++;
    }
    """
    AFTER = """
    lw = 6;
    for (j = 4; j < 100; j = j + 2) {
        lw++;
        temp -= x[lw] * y[j];
    }
    """

    def test_original_gets_ii_2(self):
        outcome = slms(self.SETUP + self.BEFORE, SLMSOptions(enable_filter=False))
        report = outcome.loops[-1]
        assert report.applied and report.ii == 2
        check_equal(self.SETUP + self.BEFORE, outcome)

    def test_after_edit_gets_ii_1(self):
        outcome = slms(self.SETUP + self.AFTER, SLMSOptions(enable_filter=False))
        report = outcome.loops[-1]
        assert report.applied and report.ii == 1
        check_equal(self.SETUP + self.AFTER, outcome)


class TestSection92FmaLoop:
    """§9.2: the floating-point intensive X[k] loop."""

    SOURCE = """
    float X[300];
    for (i = 0; i < 300; i++) X[i] = 1.0 + 0.001 * i;
    for (k = 1; k < 250; k++) {
        X[k] = X[k-1] * X[k-1] * X[k-1] * X[k-1] * X[k-1] +
               X[k+1] * X[k+1] * X[k+1] * X[k+1] * X[k+1];
    }
    """

    def test_decomposes_and_unrolls_twice(self):
        outcome = slms(self.SOURCE)
        report = outcome.loops[-1]
        assert report.applied
        assert report.decompositions == 1
        assert report.unroll == 2  # the paper's reg1/reg2 form
        check_equal(self.SOURCE, outcome)


class TestSection4FilterExample:
    """§4: the swap loop is filtered at ratio 6/7."""

    SOURCE = """
    float X[40][40];
    float CT;
    for (k = 0; k < 40; k++) {
        CT = X[k][1];
        X[k][1] = X[k][2] * 2;
        X[k][2] = CT;
    }
    """

    def test_filtered(self):
        outcome = slms(self.SOURCE)
        report = outcome.loops[-1]
        assert not report.applied
        assert report.filter_verdict is not None
        assert abs(report.filter_verdict.memory_ref_ratio - 6 / 7) < 1e-9


class TestFigure8MII:
    """Fig. 8: the two-cycle DDG where MII is 2, not 1."""

    def test_mii_2(self):
        from repro.analysis.ddg import Dependence, DependenceGraph
        from repro.analysis.delays import edge_delay
        from repro.core.mii import pmii_cycle_ratio, pmii_difmin

        g = DependenceGraph(n=4)
        for kind, src, dst, dist in [
            ("flow", 0, 1, 0),
            ("flow", 1, 2, 2),
            ("flow", 2, 3, 0),
            ("flow", 3, 0, 2),
            ("flow", 1, 3, 0),
        ]:
            g.add(
                Dependence(
                    kind=kind, src=src, dst=dst, var="v",
                    distance=dist, delay=edge_delay(src, dst),
                )
            )
        assert pmii_cycle_ratio(g) == 2
        assert pmii_difmin(g) == 2


class TestSection7IMSLimitations:
    """§7: machine-level MS failure modes SLMS sidesteps."""

    def test_loop_size_restriction(self):
        # Point 1: "compilers restrict MS to small size loops".
        from repro.backend.compiler import FinalCompiler
        from repro.machines import itanium2

        stmts = "".join(f"A[i] = A[i] + {k}.5;\n" for k in range(20))
        src = f"float A[64]; for (i = 0; i < 64; i++) {{ {stmts} }}"
        compiled = FinalCompiler(itanium2(), "icc_O3").compile(src)
        assert any(
            not r.attempted and "too large" in r.reason
            for r in compiled.ims_reports
        )

    def test_register_pressure_abort(self):
        # Fig. 11: long-latency producers force MaxLive past the file.
        import dataclasses

        from repro.backend.compiler import FinalCompiler
        from repro.machines import itanium2

        tiny = dataclasses.replace(itanium2(), num_registers=8)
        src = (
            "float A[64], B[64];"
            "for (i = 0; i < 64; i++) "
            "A[i] = B[i] * 1.5 + B[i+1] * 2.5 + B[i+2] * 3.5;"
        )
        compiled = FinalCompiler(tiny, "icc_O3").compile(src)
        assert not compiled.ims_applied
