"""Every example script must run cleanly end to end.

The examples are part of the public API surface (they're what a new
user copies from), so they execute as part of the test suite.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "loop_transformation_lab",
        "embedded_power_tuning",
        "interactive_slc_session",
        "while_loop_pipelining",
    } <= names
