"""System-level verification: workloads through the whole stack.

For a representative slice of the corpus, run the complete experiment
(SLMS the kernel, compile both variants at a strong preset, simulate)
with verification enabled — any semantic deviation raises.
"""

import pytest

from repro.harness.experiment import run_experiment
from repro.machines import arm7tdmi, itanium2, pentium, power4
from repro.workloads import get_workload

REPRESENTATIVE = [
    # one of each dependence archetype
    "kernel1",   # parallel multiply-add
    "kernel5",   # tight serial recurrence
    "kernel8",   # wide body, no carried deps
    "kernel10",  # many temps / register pressure
    "kernel16",  # branchy scan
    "kernel17",  # if/else body
    "kernel21",  # triple nest accumulator
    "daxpy",
    "ddot2",
    "idamax",    # filtered conditional reduction
    "cfft2d",
    "vpenta",    # distance-2 recurrence with divide
    "stone5",    # integer counter
]


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_verified_on_itanium_icc(name):
    res = run_experiment(get_workload(name), itanium2(), "icc_O3", verify=True)
    assert res.base_cycles > 0 and res.slms_cycles > 0


@pytest.mark.parametrize("name", ["kernel1", "kernel10", "daxpy", "stone5"])
@pytest.mark.parametrize(
    "machine_factory,preset",
    [
        (pentium, "gcc_O3"),
        (power4, "xlc_O3"),
        (arm7tdmi, "arm_gcc"),
        (itanium2, "gcc_O0"),
        (itanium2, "icc_O0"),
    ],
)
def test_verified_across_machines(name, machine_factory, preset):
    res = run_experiment(
        get_workload(name), machine_factory(), preset, verify=True
    )
    assert res.base_cycles > 0


def test_filtered_workload_runs_identically():
    res = run_experiment(get_workload("idamax"), itanium2(), "gcc_O3")
    assert not res.slms_applied
    assert res.base_cycles == res.slms_cycles
    assert res.base_energy == res.slms_energy
