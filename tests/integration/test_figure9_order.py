"""Fig. 9: the order of SLMS and fusion changes the final schedule."""

from repro import SLMSOptions, slms, to_source
from repro.lang import parse_program, parse_stmt
from repro.sim.interp import run_program, state_equal
from repro.transforms import fuse

SETUP = (
    "float a[64], b[64];\n"
    "for (i = 0; i < 64; i++) { a[i] = 0.02 * i + 1.0; "
    "b[i] = 2.0 - 0.01 * i; }\n"
)
L1 = "for (i = 1; i < 40; i++) { a[i] = a[i-1] * 2.0 + a[i+1] * 2.0; }"
L2 = "for (i = 1; i < 40; i++) { b[i] = b[i-1] * 2.0 + b[i+1] * 2.0; }"

OPTIONS = SLMSOptions(enable_filter=False)


def oracle():
    return run_program(parse_program(SETUP + L1 + "\n" + L2))


def verify(outcome):
    out = run_program(outcome.program)
    base = oracle()
    ignore = {n for r in outcome.loops for n in r.new_scalars}
    ignore |= {k for k in out if k not in base}
    assert state_equal(base, out, ignore=ignore)


class TestFigure9:
    def test_slms_then_fusion_path(self):
        """SLMS each loop separately (Fig. 9 left)."""
        outcome = slms(SETUP + L1 + "\n" + L2, OPTIONS)
        applied = [r for r in outcome.loops if r.applied]
        # Both paper loops pipeline with decomposition + MVE (the Fig. 9
        # left column shows reg1..reg4 across two unrolled kernels).
        kernels = [r for r in applied if r.decompositions >= 1]
        assert len(kernels) == 2
        verify(outcome)
        text = to_source(outcome.program)
        assert "reg1" in text and "reg3" in text  # two loops' rotations

    def test_fusion_then_slms_path(self):
        """Fuse first, then SLMS the combined body (Fig. 9 right)."""
        fused = fuse(parse_stmt(L1), parse_stmt(L2))
        prog = parse_program(SETUP)
        prog.body.append(fused)
        outcome = slms(prog, OPTIONS)
        report = outcome.loops[-1]
        assert report.applied
        assert report.n_mis >= 2
        verify(outcome)

    def test_orders_produce_different_schedules(self):
        """The paper's point: the two orders are not the same program."""
        path_a = slms(SETUP + L1 + "\n" + L2, OPTIONS)
        fused = fuse(parse_stmt(L1), parse_stmt(L2))
        prog = parse_program(SETUP)
        prog.body.append(fused)
        path_b = slms(prog, OPTIONS)
        # Different structure: path A has two pipelined loops, path B one.
        from repro.lang.ast_nodes import For
        from repro.lang.visitors import walk

        loops_a = sum(
            1 for n in walk(path_a.program) if isinstance(n, For)
        )
        loops_b = sum(
            1 for n in walk(path_b.program) if isinstance(n, For)
        )
        assert loops_a != loops_b
        assert to_source(path_a.program) != to_source(path_b.program)
        # ...yet both compute the same result.
        verify(path_a)
        verify(path_b)
