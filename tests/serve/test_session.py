"""Session API: validation, payloads, and CLI parity."""

import json

import pytest

from repro.serve.session import (
    RequestError,
    Session,
    SessionConfig,
    options_from_params,
    sweep_digest,
)
from tests.serve.conftest import SOURCE


class TestValidate:
    def test_unknown_op(self):
        with pytest.raises(RequestError, match="unknown op"):
            Session().validate("frobnicate", {})

    def test_unknown_param(self):
        with pytest.raises(RequestError, match="unknown parameter"):
            Session().validate("compile", {"source": "", "bogus": 1})

    def test_missing_required(self):
        with pytest.raises(RequestError, match="missing required"):
            Session().validate("compile", {})

    def test_bad_machine_name(self):
        with pytest.raises(RequestError, match="unknown machine"):
            Session().validate(
                "bench", {"workload": "daxpy", "machine": "vax"}
            )

    def test_bad_sweep_pair(self):
        with pytest.raises(RequestError, match="unknown compiler"):
            Session().validate(
                "sweep", {"pairs": [["itanium2", "tcc"]]}
            )

    def test_params_must_be_object(self):
        with pytest.raises(RequestError, match="JSON object"):
            Session().validate("compile", ["not", "a", "dict"])

    def test_ok(self):
        Session().validate("compile", {"source": SOURCE, "force": True})
        Session().validate("sleep", {"seconds": 0.1})


class TestOptions:
    def test_maps_keys(self):
        options = options_from_params(
            {"force": True, "scheduler": "exact", "reduction_lanes": 2}
        )
        assert options.force and options.scheduler == "exact"
        assert options.reduction_lanes == 2

    def test_bad_value_is_request_error(self):
        with pytest.raises(RequestError, match="scheduler"):
            options_from_params({"scheduler": "llvm"})


class TestPayloads:
    def test_compile(self):
        payload = Session().compile({"source": SOURCE})
        assert payload["applied"] == 1
        assert "for (i = 0; i < 62; i += 2)" in payload["source"]
        applied = [loop for loop in payload["loops"] if loop["applied"]]
        assert applied and applied[0]["ii"] == 1

    def test_compile_paper_style(self):
        payload = Session().compile({"source": SOURCE, "style": "paper"})
        assert "||" in payload["source"]

    def test_compile_bad_style(self):
        with pytest.raises(RequestError, match="style"):
            Session().compile({"source": SOURCE, "style": "fortran"})

    def test_advise(self):
        payload = Session().advise({"source": SOURCE})
        assert payload["schema"] == "slms-advise/1"
        assert len(payload["loops"]) == 2

    def test_bench(self):
        payload = Session().bench({"workload": "daxpy"})
        assert payload["slms_applied"] is True
        assert payload["speedup"] > 1.0

    def test_bench_unknown_workload(self):
        with pytest.raises(RequestError, match="unknown workload"):
            Session().bench({"workload": "does-not-exist"})

    def test_trace(self):
        payload = Session().trace({"workload": "daxpy"})
        assert payload["slms_applied"] is True
        assert payload["trace"]["spans"]
        assert "phase_times" in payload and "cached_phase_times" in payload

    def test_sleep(self):
        assert Session().sleep({"seconds": 0}) == {"slept_s": 0.0}

    def test_handle_dispatches(self):
        payload = Session().handle("advise", {"source": SOURCE})
        assert payload["schema"] == "slms-advise/1"


class TestSweep:
    def test_sweep_payload_digest_matches_result(self, tmp_path):
        session = Session(SessionConfig(cache_dir=str(tmp_path / "c")))
        params = {"workloads": ["daxpy"], "pairs": [["itanium2", "gcc_O3"]]}
        payload = session.sweep(params)
        sweep = session.sweep_result(params)
        assert payload["experiments"] == 1
        assert payload["failures"] == 0
        assert payload["result_digest"] == sweep_digest(sweep)
        assert payload["results"] == json.loads(sweep.to_json())

    def test_sweep_digest_parity_with_cli(self, tmp_path, monkeypatch,
                                          capsys):
        """The served digest and the CLI digest are the same bytes."""
        from repro.cli import main
        from repro.obs import RunLedger

        monkeypatch.setenv("SLMS_CACHE_DIR", str(tmp_path / "cache"))
        served = Session(
            SessionConfig(cache_dir=str(tmp_path / "cache"))
        ).sweep({"workloads": ["daxpy", "dscal"]})

        assert main(["sweep", "daxpy", "dscal", "--workers", "1"]) == 0
        capsys.readouterr()
        entry = RunLedger().entries(kind="sweep")[-1]
        assert entry["result_digest"] == served["result_digest"]

    def test_sweep_unknown_suite(self):
        with pytest.raises(RequestError, match="unknown suite"):
            Session().sweep_result({"suites": ["specfp"]})

    def test_serve_context_ignores_ambient_faults(self, tmp_path,
                                                  monkeypatch):
        """With ambient_faults off, SLMS_FAULTS must not leak into the
        engine tasks running inside a request."""
        monkeypatch.setenv("SLMS_FAULTS", "fail:0")
        session = Session(
            SessionConfig(
                cache_dir=str(tmp_path / "c"), ambient_faults=False
            )
        )
        sweep = session.sweep_result(
            {"workloads": ["daxpy"], "pairs": [["itanium2", "gcc_O3"]]}
        )
        assert not sweep.failures
