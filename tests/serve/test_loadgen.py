"""serve-bench load harness: record shape and phase guarantees."""

from repro.serve.loadgen import BENCH_SCHEMA, run_serve_bench


class TestServeBench:
    def test_small_run_record(self, tmp_path, cache_dir):
        out = tmp_path / "BENCH_serve.json"
        record = run_serve_bench(
            out_path=str(out),
            clients=3,
            per_client=1,
            chaos=True,
            cache_dir=cache_dir,
            quiet=True,
        )
        assert record["schema"] == BENCH_SCHEMA
        assert out.exists()

        latency = record["latency_phase"]
        assert latency["requests"] == 3
        assert latency["latency"]["n"] == 3
        assert latency["throughput_rps"] > 0
        assert set(record["latency"]) >= {"p50", "p99", "mean"}

        coalesce = record["coalesce_phase"]
        assert coalesce["ok"] == 3
        # Barrier-released identical requests: at least some must ride
        # the leader (exact counts are timing-dependent on 1 CPU).
        assert coalesce["executions"] + coalesce["coalesced"] == 3
        assert coalesce["executions"] < 3

        shed = record["shed_phase"]
        assert shed["ok"] + shed["shed"] == shed["burst"]
        assert shed["shed"] >= shed["burst"] - shed["queue_limit"] - 1
        assert record["shed_count"] == shed["shed"]

        chaos = record["chaos_phase"]
        assert chaos["ok"] + chaos["failed"] == chaos["burst"]
        assert chaos["failed"] == 2
        assert chaos["failed_kinds"] == ["crash", "timeout"]

    def test_no_chaos_skips_phase(self, tmp_path, cache_dir):
        record = run_serve_bench(
            out_path=None,
            clients=2,
            per_client=1,
            chaos=False,
            cache_dir=cache_dir,
            quiet=True,
        )
        assert "chaos_phase" not in record
        assert not (tmp_path / "BENCH_serve.json").exists()
