"""Server behaviors: protocol, coalescing, admission, fault handling.

Each test spins a real in-process server on an ephemeral port and
drives it over HTTP — the same path production clients use.
"""

import threading
import time

import pytest

from repro.harness.faults import FaultPlan
from repro.serve.client import ServeClient, ServeError
from tests.serve.conftest import SOURCE


def _wait_for_inflight(server, n, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if len(server._flights) >= n:
            return
        time.sleep(0.01)
    raise AssertionError(f"never reached {n} in-flight request(s)")


class TestProtocol:
    def test_healthz_statsz(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            health = client.healthz()
            assert health["ok"] is True and health["draining"] is False
            stats = client.statsz()
            assert stats["schema"] == "slms-serve-stats/1"
            assert stats["queue"]["limit"] == server.config.queue_limit

    def test_compile_roundtrip(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            status, envelope = client.post("compile", {"source": SOURCE})
            assert status == 200
            assert envelope["schema"] == "slms-serve/1"
            assert envelope["ok"] is True
            assert envelope["coalesced"] is False
            assert envelope["attempts"] == 1
            assert envelope["result"]["applied"] == 1

    def test_bad_params_is_400_without_execution(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            status, envelope = client.post("compile", {"nope": 1})
            assert status == 400
            assert envelope["error"]["kind"] == "bad-request"
            assert server.counters["executions"] == 0

    def test_frontend_error_is_400(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            status, envelope = client.post("compile", {"source": "for ("})
            assert status == 400
            assert envelope["error"]["kind"] == "bad-request"
            assert "error" in envelope["error"]["message"]

    def test_unknown_path_404(self, running_server):
        with running_server() as server:
            status, _ = ServeClient(server.url).get("/v2/compile")
            assert status == 404

    def test_sleep_gated(self, running_server):
        with running_server(enable_sleep=False) as server:
            status, envelope = ServeClient(server.url).post(
                "sleep", {"seconds": 0}
            )
            assert status == 400
            assert "enable-sleep" in envelope["error"]["message"]

    def test_call_raises_serve_error(self, running_server):
        with running_server() as server:
            with pytest.raises(ServeError) as info:
                ServeClient(server.url).call("compile", {})
            assert info.value.status == 400
            assert info.value.kind == "bad-request"


class TestCoalescing:
    def test_identical_requests_execute_once(self, running_server):
        """N identical in-flight requests pin exactly one execution."""
        with running_server() as server:
            client = ServeClient(server.url)
            leader_out = {}

            def leader():
                leader_out["response"] = client.post(
                    "sleep", {"seconds": 1.5}
                )

            thread = threading.Thread(target=leader)
            thread.start()
            _wait_for_inflight(server, 1)

            followers = []
            follower_threads = [
                threading.Thread(
                    target=lambda: followers.append(
                        client.post("sleep", {"seconds": 1.5})
                    )
                )
                for _ in range(4)
            ]
            for t in follower_threads:
                t.start()
            for t in follower_threads:
                t.join()
            thread.join()

            assert leader_out["response"][0] == 200
            assert leader_out["response"][1]["coalesced"] is False
            assert all(status == 200 for status, _ in followers)
            assert all(env["coalesced"] for _, env in followers)
            assert server.counters["executions"] == 1
            assert server.counters["coalesced"] == 4

    def test_distinct_requests_all_execute(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            for seconds in (0.01, 0.02):
                status, env = client.post("sleep", {"seconds": seconds})
                assert status == 200 and not env["coalesced"]
            assert server.counters["executions"] == 2


class TestAdmission:
    def test_queue_full_sheds_429(self, running_server):
        with running_server(queue_limit=1) as server:
            client = ServeClient(server.url)
            background = threading.Thread(
                target=client.post, args=("sleep", {"seconds": 1.5})
            )
            background.start()
            _wait_for_inflight(server, 1)
            status, envelope = client.post("sleep", {"seconds": 9.9})
            background.join()
            assert status == 429
            assert envelope["error"]["kind"] == "shed"
            assert server.counters["shed"] == 1

    def test_injected_reject(self, running_server):
        """The reject fault op sheds a specific admission seq."""
        with running_server(
            fault_plan=FaultPlan.parse("reject:1")
        ) as server:
            client = ServeClient(server.url)
            status, _ = client.post("sleep", {"seconds": 0})
            assert status == 200
            status, envelope = client.post("sleep", {"seconds": 0.001})
            assert status == 429
            assert envelope.get("injected") is True
            assert server.counters["shed_injected"] == 1


class TestFaults:
    def test_transient_retries_to_success(self, running_server):
        with running_server(
            fault_plan=FaultPlan.parse("transient:0")
        ) as server:
            status, envelope = ServeClient(server.url).post(
                "sleep", {"seconds": 0}
            )
            assert status == 200
            assert envelope["attempts"] == 2
            assert server.counters["retries"] == 1

    def test_crash_fails_then_quarantines(self, running_server):
        with running_server(
            fault_plan=FaultPlan.parse("crash:0"), crash_strikes=2
        ) as server:
            client = ServeClient(server.url)
            status, envelope = client.post("sleep", {"seconds": 0})
            assert status == 500
            assert envelope["error"]["kind"] == "crash"
            assert envelope["error"]["quarantined"] is True

            # The same request again is refused before execution.
            status, envelope = client.post("sleep", {"seconds": 0})
            assert status == 503
            assert envelope["error"]["kind"] == "quarantined"
            assert server.counters["executions"] == 1
            assert client.statsz()["quarantine"]

    def test_hang_times_out_with_structured_error(self, running_server):
        with running_server(
            fault_plan=FaultPlan.parse("hang:0@30"), timeout_s=1.0
        ) as server:
            status, envelope = ServeClient(server.url).post(
                "sleep", {"seconds": 0}
            )
            assert status == 500
            assert envelope["error"]["kind"] == "timeout"
            assert server.failed_kinds == {"timeout": 1}

    def test_faulted_request_does_not_affect_others(self, running_server):
        """A crash hits only its target; a concurrent request lands."""
        with running_server(
            fault_plan=FaultPlan.parse("crash:0"), crash_strikes=1
        ) as server:
            client = ServeClient(server.url)
            status, envelope = client.post("sleep", {"seconds": 0})
            assert status == 500 and envelope["error"]["kind"] == "crash"
            status, envelope = client.post("compile", {"source": SOURCE})
            assert status == 200 and envelope["result"]["applied"] == 1


class TestDrain:
    def test_draining_refuses_new_requests(self, running_server):
        with running_server() as server:
            client = ServeClient(server.url)
            server.draining = True
            status, envelope = client.post("sleep", {"seconds": 0})
            assert status == 503
            assert envelope["error"]["kind"] == "draining"
            assert client.healthz()["draining"] is True
