"""Serve-suite fixtures: ephemeral in-process servers."""

import threading
from contextlib import contextmanager

import pytest

from repro.serve.server import ServeConfig, SlmsServer
from repro.serve.session import SessionConfig


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    path = tmp_path / "cache"
    monkeypatch.setenv("SLMS_CACHE_DIR", str(path))
    return str(path)


@pytest.fixture()
def running_server(cache_dir):
    """Factory context manager: ``with running_server(**cfg) as server``."""

    @contextmanager
    def factory(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("enable_sleep", True)
        overrides.setdefault(
            "session", SessionConfig(cache_dir=cache_dir)
        )
        server = SlmsServer(ServeConfig(**overrides))
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.02}
        )
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            thread.join(timeout=30)
            server.server_close()

    return factory


SOURCE = """
float A[64], B[64];
float s = 0.0, t;
for (i = 0; i < 64; i++) { A[i] = i; B[i] = 2.0; }
for (i = 0; i < 64; i++) { t = A[i] * B[i]; s = s + t; }
"""
