"""SIGTERM semantics, end to end in real subprocesses.

* ``slms serve`` drains: in-flight requests complete, exit code 0.
* ``slms sweep`` (and every CLI command) exits 143 with a resume hint.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn(args, tmp_path, **env_extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    env["SLMS_CACHE_DIR"] = str(tmp_path / "cache")
    env["SLMS_LEDGER_DIR"] = str(tmp_path / "ledger")
    env.pop("SLMS_FAULTS", None)
    env.update(env_extra)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _post(url, op, params, timeout=60):
    request = urllib.request.Request(
        f"{url}/v1/{op}",
        data=json.dumps(params).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.mark.slow
class TestServeDrain:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        proc = _spawn(
            ["serve", "--port", "0", "--enable-sleep", "--timeout", "30"],
            tmp_path,
        )
        try:
            banner = proc.stdout.readline()
            assert "# serving on " in banner
            url = banner.split("# serving on ")[1].split(" ")[0].strip()

            inflight = {}

            def request():
                inflight["response"] = _post(
                    url, "sleep", {"seconds": 2.0}
                )

            thread = threading.Thread(target=request)
            thread.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                with urllib.request.urlopen(
                    f"{url}/statsz", timeout=10
                ) as response:
                    stats = json.loads(response.read().decode("utf-8"))
                if stats["queue"]["inflight"] >= 1:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("request never became in-flight")

            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert proc.wait(timeout=30) == 0

            # The admitted request rode out the drain and completed.
            status, envelope = inflight["response"]
            assert status == 200
            assert envelope["result"]["slept_s"] == 2.0
            out = proc.stdout.read()
            assert "draining (SIGTERM)" in out
            assert "drained; exiting" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


@pytest.mark.slow
class TestCliSigterm:
    def test_sweep_exits_143_with_resume_hint(self, tmp_path):
        proc = _spawn(["sweep", "--workers", "1"], tmp_path)
        try:
            time.sleep(1.5)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 143
            assert "terminated (SIGTERM)" in out
            assert "--resume" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
