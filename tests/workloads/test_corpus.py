"""Workload corpus tests: parseability, executability, lookup."""

import pytest

from repro.workloads import (
    LINPACK,
    LIVERMORE,
    NAS,
    STONE,
    all_workloads,
    by_suite,
    get_workload,
)


class TestInventory:
    def test_livermore_has_24_kernels(self):
        assert len(LIVERMORE) == 24
        assert [w.name for w in LIVERMORE] == [
            f"kernel{i}" for i in range(1, 25)
        ]

    def test_linpack_names(self):
        names = {w.name for w in LINPACK}
        assert {"daxpy", "ddot", "ddot2", "dscal", "idamax", "idamax2"} <= names

    def test_nas_has_seven_kernels(self):
        assert {w.name for w in NAS} == {
            "mxm", "cfft2d", "cholsky", "btrix", "gmtry", "emit", "vpenta",
        }

    def test_stone_count(self):
        assert len(STONE) == 8

    def test_all_workloads_order(self):
        suites = [w.suite for w in all_workloads()]
        assert suites == sorted(
            suites,
            key=["livermore", "linpack", "nas", "stone"].index,
        )

    def test_unique_names(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == len(set(names))


class TestLookup:
    def test_by_suite(self):
        assert by_suite("nas") == NAS

    def test_by_suite_returns_copy(self):
        listing = by_suite("nas")
        listing.clear()
        assert by_suite("nas") == NAS

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            by_suite("specfp")

    def test_get_workload(self):
        assert get_workload("daxpy").suite == "linpack"

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            get_workload("kernel99")


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_workload_runs(workload):
    """Every workload parses and executes without interpreter errors."""
    workload.validate()


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_workload_setup_is_prefix(workload):
    """Setup alone must also be a valid program (harness subtracts it)."""
    from repro.sim.interp import run_program

    run_program(workload.setup_program())
