"""Unit tests for the source-level interpreter (the semantics oracle)."""

import numpy as np
import pytest

from repro.lang import parse_program
from repro.sim.interp import InterpError, run_program, state_equal


def run(source, **env):
    return run_program(parse_program(source), env=env)


class TestScalars:
    def test_plain_assignment(self):
        state = run("x = 3;")
        assert state["x"] == 3

    def test_compound_assignment(self):
        assert run("x = 2; x += 5;")["x"] == 7
        assert run("x = 2; x *= 3;")["x"] == 6

    def test_increment_decrement(self):
        state = run("i = 0; i++; i++; i--;")
        assert state["i"] == 1

    def test_declared_int_truncates(self):
        state = run("int x; x = 7 / 2;")
        assert state["x"] == 3

    def test_declared_float_holds_double(self):
        state = run("float x; x = 1; x = x / 2;")
        assert state["x"] == 0.5

    def test_decl_with_init(self):
        assert run("float s = 2.5;")["s"] == 2.5

    def test_default_initialization(self):
        state = run("int a; float b;")
        assert state["a"] == 0
        assert state["b"] == 0.0

    def test_read_unbound_raises(self):
        with pytest.raises(InterpError):
            run("x = y + 1;")


class TestIntSemantics:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3)],
    )
    def test_c_division_truncates_toward_zero(self, a, b, expected):
        assert run(f"int x; x = {a} / ({b});")["x"] == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)],
    )
    def test_c_modulo_sign_of_dividend(self, a, b, expected):
        assert run(f"int x; x = {a} % ({b});")["x"] == expected

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            run("int x; x = 1 / 0;")

    def test_int_float_mix_promotes(self):
        assert run("x = 1 / 2.0;")["x"] == 0.5


class TestComparisonsAndLogic:
    def test_comparisons_return_01(self):
        state = run("a = 1 < 2; b = 2 < 1; c = 3 == 3; d = 3 != 3;")
        assert (state["a"], state["b"], state["c"], state["d"]) == (1, 0, 1, 0)

    def test_logical_and_or(self):
        state = run("a = 1 && 0; b = 1 || 0; c = 0 || 0;")
        assert (state["a"], state["b"], state["c"]) == (0, 1, 0)

    def test_short_circuit_and_skips_rhs(self):
        # RHS would divide by zero if evaluated.
        assert run("x = 0 && (1 / 0);")["x"] == 0

    def test_short_circuit_or_skips_rhs(self):
        assert run("x = 1 || (1 / 0);")["x"] == 1

    def test_not(self):
        state = run("a = !0; b = !5;")
        assert (state["a"], state["b"]) == (1, 0)

    def test_ternary_lazy(self):
        assert run("x = 1 ? 7 : (1 / 0);")["x"] == 7


class TestArrays:
    def test_declared_array_zeroed(self):
        state = run("float A[4];")
        assert np.array_equal(state["A"], np.zeros(4))

    def test_store_and_load(self):
        state = run("float A[4]; A[1] = 2.5; x = A[1];")
        assert state["x"] == 2.5

    def test_int_array_dtype(self):
        state = run("int A[3]; A[0] = 7;")
        assert state["A"].dtype == np.int64

    def test_2d_array(self):
        state = run("float X[2][3]; X[1][2] = 9.0; y = X[1, 2];")
        assert state["y"] == 9.0

    def test_env_array_is_copied(self):
        original = np.arange(4, dtype=np.float64)
        run_program(parse_program("A[0] = 99.0;"), env={"A": original})
        assert original[0] == 0.0

    def test_out_of_bounds_read_raises(self):
        with pytest.raises(InterpError):
            run("float A[4]; x = A[4];")

    def test_negative_index_raises(self):
        with pytest.raises(InterpError):
            run("float A[4]; x = A[0 - 1];")

    def test_wrong_rank_raises(self):
        with pytest.raises(InterpError):
            run("float A[4]; x = A[1][2];")

    def test_undeclared_array_raises(self):
        with pytest.raises(InterpError):
            run("x = B[0];")

    def test_compound_array_update(self):
        state = run("float A[4]; A[2] = 1.0; A[2] += 2.0;")
        assert state["A"][2] == 3.0


class TestControlFlow:
    def test_for_loop_sums(self):
        state = run(
            "float A[10]; float s = 0.0;"
            "for (i = 0; i < 10; i++) A[i] = i;"
            "for (i = 0; i < 10; i++) s += A[i];"
        )
        assert state["s"] == 45.0

    def test_for_step_two(self):
        state = run("c = 0; for (i = 0; i < 10; i += 2) c++;")
        assert state["c"] == 5

    def test_zero_trip_loop(self):
        state = run("c = 0; for (i = 5; i < 5; i++) c++;")
        assert state["c"] == 0

    def test_while_loop(self):
        state = run("x = 16; n = 0; while (x > 1) { x /= 2; n++; }")
        assert state["n"] == 4

    def test_if_else(self):
        state = run("x = 3; if (x > 2) y = 1; else y = 2;")
        assert state["y"] == 1

    def test_break(self):
        state = run("c = 0; for (i = 0; i < 100; i++) { if (i == 3) break; c++; }")
        assert state["c"] == 3

    def test_continue(self):
        state = run(
            "c = 0; for (i = 0; i < 10; i++) { if (i % 2 == 0) continue; c++; }"
        )
        assert state["c"] == 5

    def test_break_in_while(self):
        state = run("i = 0; while (1) { i++; if (i == 7) break; }")
        assert state["i"] == 7

    def test_nested_loop_break_only_inner(self):
        state = run(
            "c = 0;"
            "for (i = 0; i < 3; i++) {"
            "  for (j = 0; j < 10; j++) { if (j == 1) break; c++; }"
            "}"
        )
        assert state["c"] == 3

    def test_step_budget(self):
        with pytest.raises(InterpError):
            run_program(parse_program("x = 0; while (1) x++;"), max_steps=1000)


class TestCalls:
    def test_builtin_max(self):
        assert run("x = max(3, 7);")["x"] == 7

    def test_builtin_sqrt(self):
        assert run("x = sqrt(9.0);")["x"] == 3.0

    def test_custom_function(self):
        prog = parse_program("x = twice(4);")
        state = run_program(prog, functions={"twice": lambda v: 2 * v})
        assert state["x"] == 8

    def test_unknown_function_raises(self):
        with pytest.raises(InterpError):
            run("x = mystery(1);")


class TestEnvAndParams:
    def test_env_scalar_binding(self):
        state = run("y = n * 2;", n=21)
        assert state["y"] == 42

    def test_env_preserves_float_type(self):
        state = run("y = v / 2;", v=1.0)
        assert state["y"] == 0.5

    def test_decl_does_not_clobber_env_array(self):
        init = np.array([1.0, 2.0, 3.0])
        prog = parse_program("float A[3]; x = A[1];")
        state = run_program(prog, env={"A": init})
        assert state["x"] == 2.0


class TestStateEqual:
    def test_equal_states(self):
        a = run("float A[4]; A[0] = 1.0; x = 2;")
        b = run("float A[4]; A[0] = 1.0; x = 2;")
        assert state_equal(a, b)

    def test_array_difference_detected(self):
        a = run("float A[4]; A[0] = 1.0;")
        b = run("float A[4]; A[0] = 2.0;")
        assert not state_equal(a, b)

    def test_ignore_set(self):
        a = run("x = 1; t = 99;")
        b = run("x = 1;")
        assert state_equal(a, b, ignore={"t"})

    def test_arrays_only_mode(self):
        a = run("float A[2]; A[0] = 1.0; reg1 = 5;")
        b = run("float A[2]; A[0] = 1.0; tmp = 6;")
        assert state_equal(a, b, arrays_only=True)

    def test_nan_equal_to_nan(self):
        a = {"x": float("nan")}
        b = {"x": float("nan")}
        assert state_equal(a, b)

    def test_extra_key_detected(self):
        assert not state_equal({"x": 1}, {"x": 1, "y": 2})

    def test_int_float_scalar_distinguished(self):
        # 1 and 1.0 compare equal in Python but types must not silently
        # diverge between original and transformed runs for arrays.
        a = {"A": np.zeros(2, dtype=np.int64)}
        b = {"A": np.zeros(2, dtype=np.float64)}
        assert not state_equal(a, b)


class TestPaperPrograms:
    """Worked examples from the paper run correctly when interpreted."""

    def test_dot_product(self):
        source = """
        float A[8], B[8];
        float s = 0.0, t;
        for (i = 0; i < 8; i++) { A[i] = i; B[i] = 2; }
        for (i = 0; i < 8; i++) {
            t = A[i] * B[i];
            s = s + t;
        }
        """
        assert run(source)["s"] == 2.0 * sum(range(8))

    def test_find_max_loop(self):
        source = """
        float arr[6];
        arr[0] = 3.0; arr[1] = 9.0; arr[2] = 1.0;
        arr[3] = 9.5; arr[4] = 0.0; arr[5] = 2.0;
        max = arr[0];
        for (i = 0; i < 6; i++)
            if (max < arr[i]) max = arr[i];
        """
        assert run(source)["max"] == 9.5

    def test_recurrence_loop(self):
        source = """
        float a[10];
        a[0] = 1.0; a[1] = 1.0;
        for (i = 2; i < 10; i++) a[i] = a[i-1] + a[i-2];
        """
        fib = [1.0, 1.0]
        for _ in range(8):
            fib.append(fib[-1] + fib[-2])
        assert np.array_equal(run(source)["a"], np.array(fib))
