"""Cache model, address map, and cycle-executor tests."""


from repro.backend.compiler import compile_and_run
from repro.lang import parse_program
from repro.machines import arm7tdmi, itanium2, pentium
from repro.machines.model import CacheConfig
from repro.sim.cache import AddressMap, DirectMappedCache
from repro.sim.interp import run_program, state_equal


class TestDirectMappedCache:
    def _cache(self, size=256, line=64):
        return DirectMappedCache(CacheConfig(size_bytes=size, line_bytes=line))

    def test_cold_miss_then_hit(self):
        cache = self._cache()
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_hits(self):
        cache = self._cache(line=64)
        cache.access(0)
        assert cache.access(63)
        assert not cache.access(64)

    def test_conflict_eviction(self):
        # 256B cache, 64B lines -> 4 lines; addresses 0 and 256 collide.
        cache = self._cache(size=256, line=64)
        cache.access(0)
        assert not cache.access(256)
        assert not cache.access(0)  # evicted

    def test_stats(self):
        cache = self._cache()
        cache.access(0)
        cache.access(0)
        cache.access(512)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3

    def test_reset(self):
        cache = self._cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)


class TestAddressMap:
    def test_arrays_disjoint_and_aligned(self):
        amap = AddressMap(
            {"A": ((100,), "float"), "B": ((50,), "float")},
            word_bytes=8,
            line_bytes=64,
        )
        a_base = amap.bases["A"]
        b_base = amap.bases["B"]
        assert a_base % 64 == 0 and b_base % 64 == 0
        lo, hi = sorted([(a_base, 100), (b_base, 50)])
        assert lo[0] + lo[1] * 8 <= hi[0]

    def test_spill_region_present(self):
        amap = AddressMap({"A": ((4,), "float")})
        assert "__spill" in amap.bases

    def test_element_addressing(self):
        amap = AddressMap({"A": ((10,), "float")}, word_bytes=8)
        assert amap.address("A", 3) == amap.bases["A"] + 24


class TestExecutor:
    SRC = """
    float A[64], B[64];
    s = 0.0;
    for (i = 0; i < 64; i++) { A[i] = i * 0.5; B[i] = 1.0; }
    for (i = 0; i < 64; i++) s = s + A[i] * B[i];
    """

    def test_functional_state_matches_oracle(self):
        machine = itanium2()
        compiled, result = compile_and_run(self.SRC, machine, "gcc_O3")
        oracle = run_program(parse_program(self.SRC))
        assert state_equal(oracle, result.state)

    def test_cycles_positive_and_sane(self):
        machine = itanium2()
        _, result = compile_and_run(self.SRC, machine, "gcc_O3")
        assert result.metrics.cycles > 0
        assert result.metrics.instructions > 0
        assert result.metrics.cycles < result.metrics.instructions * 50

    def test_unscheduled_never_faster(self):
        machine = itanium2()
        _, o0 = compile_and_run(self.SRC, machine, "gcc_O0")
        _, o3 = compile_and_run(self.SRC, machine, "gcc_O3")
        assert o0.metrics.cycles >= o3.metrics.cycles

    def test_narrow_machine_slower(self):
        _, wide = compile_and_run(self.SRC, itanium2(), "gcc_O3")
        _, narrow = compile_and_run(self.SRC, arm7tdmi(), "arm_gcc")
        assert narrow.metrics.cycles > wide.metrics.cycles

    def test_cache_misses_counted(self):
        machine = pentium()
        _, result = compile_and_run(self.SRC, machine, "gcc_O3")
        assert result.metrics.cache_misses > 0
        assert (
            result.metrics.cache_hits + result.metrics.cache_misses
            == result.metrics.mem_accesses
        )

    def test_sequential_scan_mostly_hits(self):
        machine = itanium2()  # 64B lines, 8 words per line
        _, result = compile_and_run(self.SRC, machine, "gcc_O3")
        assert result.metrics.miss_rate < 0.3

    def test_energy_accumulates(self):
        machine = arm7tdmi()
        _, result = compile_and_run(self.SRC, machine, "arm_gcc")
        assert result.metrics.energy_pj > 0
        # Energy must be at least per-cycle floor * cycles.
        floor = machine.power.energy_per_cycle * result.metrics.cycles
        assert result.metrics.energy_pj >= floor

    def test_op_counts_recorded(self):
        machine = itanium2()
        _, result = compile_and_run(self.SRC, machine, "gcc_O3")
        assert result.metrics.op_counts.get("mem", 0) > 0
        assert result.metrics.op_counts.get("fmul", 0) > 0

    def test_ims_lowers_loop_cost(self):
        src = (
            "float A[128], B[128];"
            "for (i = 0; i < 128; i++) B[i] = i * 0.25;"
            "for (i = 0; i < 128; i++) A[i] = B[i] * 2.0 + 1.0;"
        )
        machine = itanium2()
        _, without = compile_and_run(src, machine, "gcc_O3")
        compiled, with_ims = compile_and_run(src, machine, "icc_O3")
        assert compiled.ims_applied
        assert with_ims.metrics.cycles < without.metrics.cycles

    def test_determinism(self):
        machine = pentium()
        _, a = compile_and_run(self.SRC, machine, "gcc_O3")
        _, b = compile_and_run(self.SRC, machine, "gcc_O3")
        assert a.metrics.cycles == b.metrics.cycles
        assert a.metrics.energy_pj == b.metrics.energy_pj

    def test_spill_traffic_costs_cycles(self):
        wide_src = """
        float A[32];
        s = 0.0;
        for (i = 0; i < 32; i++) {
            a1 = i * 0.5; a2 = a1 + 1.0; a3 = a2 * a1; a4 = a3 - a2;
            a5 = a4 * a1; a6 = a5 + a3; a7 = a6 * a2; a8 = a7 - a5;
            s = s + a8;
            A[i] = s;
        }
        """
        few = pentium()  # 8 registers
        import dataclasses

        many = dataclasses.replace(few, num_registers=64)
        _, spilled = compile_and_run(wide_src, few, "gcc_O3")
        _, clean = compile_and_run(wide_src, many, "gcc_O3")
        assert spilled.metrics.mem_accesses > clean.metrics.mem_accesses
        assert spilled.metrics.cycles > clean.metrics.cycles
