"""Pin the compiled AST oracle to the reference interpreter.

``run_program_fast`` compiles a whole source-level Program to one
Python function and is used as the verify-phase oracle, so it must be
a pure performance transform of :func:`repro.sim.interp.run_program`:
bit-identical final state (values, dtypes, and dict insertion order),
identical step accounting at the budget boundary, and the exact
``InterpError`` messages on every trap.  Any divergence here would
silently change experiment digests, so equality is strict.
"""

import math

import numpy as np
import pytest

from repro.fuzz.generator import generate_case
from repro.lang.parser import parse_program
from repro.sim.interp import InterpError, run_program
from repro.sim.interp_compile import compile_program, run_program_fast
from repro.workloads import all_workloads

WORKLOADS = all_workloads()


def _assert_states_identical(a, b):
    # Insertion order is part of the contract (state digests hash the
    # JSON in key order), so compare key sequences, not just sets.
    assert list(a.keys()) == list(b.keys())
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray):
            assert isinstance(vb, np.ndarray)
            assert va.dtype == vb.dtype and va.shape == vb.shape
            assert np.array_equal(va, vb, equal_nan=True), key
        else:
            assert type(va) is type(vb), key
            if isinstance(va, float) and math.isnan(va):
                assert math.isnan(vb), key
            else:
                assert va == vb, key


def _outcomes(program, max_steps=2_000_000, functions=None):
    """Run both interpreters; return ((state, error_str), ...)."""
    results = []
    for runner in (run_program, run_program_fast):
        try:
            state = runner(
                program, functions=functions, max_steps=max_steps
            )
            results.append((state, None))
        except InterpError as exc:
            results.append((None, str(exc)))
    return results


def _assert_parity(source, max_steps=2_000_000, functions=None):
    program = parse_program(source)
    (ref_state, ref_err), (fast_state, fast_err) = _outcomes(
        program, max_steps=max_steps, functions=functions
    )
    assert ref_err == fast_err
    if ref_err is None:
        _assert_states_identical(ref_state, fast_state)


# ---------------------------------------------------------------------------
# Every workload, no silent fallback
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("wl", WORKLOADS, ids=lambda w: w.name)
def test_workload_compiles_and_matches(wl):
    program = parse_program(wl.full_source())
    # The sweep's verify phase leans on the compiled path actually
    # engaging; a bail here would silently fall back and hide a perf
    # regression, so pin compilability itself.
    assert compile_program(program) is not None, "compile bailed"
    ref = run_program(program)
    fast = run_program_fast(program)
    _assert_states_identical(ref, fast)


# ---------------------------------------------------------------------------
# Generated programs, including trapping ones
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile", ["default", "control", "scalars", "oob"])
@pytest.mark.parametrize("seed", range(8))
def test_fuzz_parity(profile, seed):
    case = generate_case(seed, profile)
    _assert_parity(case.source)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("max_steps", [1, 5, 17, 100, 1000])
def test_fuzz_budget_parity(seed, max_steps):
    # The failing statement must be charged (not retroactively
    # uncharged) and the message must carry the budget, exactly like
    # the reference's per-statement tick.
    case = generate_case(seed, "default")
    _assert_parity(case.source, max_steps=max_steps)


# ---------------------------------------------------------------------------
# Hand-written trap and coercion edges
# ---------------------------------------------------------------------------

EDGE_SOURCES = [
    # out of bounds, constant and computed
    "float A[4]; A[7] = 1.0;",
    "int i; float A[4]; for (i = 0; i < 9; i += 1) { A[i] = 1.0; }",
    # division and modulo
    "int a; a = 1 / 0;",
    "float x; x = 1.0 / 0.0;",
    "float x; x = 5.0 % 2.0;",
    "int a; a = 7 / 2; a = a + (-7) / 2;",
    # unknown function
    "float x; x = mystery(1.0);",
    # break / continue in both loop forms
    "int i; int s; s = 0; for (i = 0; i < 10; i += 1) { if (i == 3) { break; } s = s + i; }",
    "int i; int s; s = 0; for (i = 0; i < 10; i += 1) { if (i == 3) { continue; } s = s + i; }",
    "int i; int s; s = 0; i = 0; while (i < 10) { i = i + 1; if (i == 4) { continue; } s = s + i; }",
    # ternary laziness: untaken arm must not trap
    "float A[2]; int i; i = 5; A[0] = (i < 2) ? A[7] : 1.0;",
    # short-circuit: right operand must not evaluate
    "float A[2]; int i; i = 0; if (i != 0 && A[9] > 0.0) { A[0] = 1.0; }",
    "float A[2]; int i; i = 1; if (i == 1 || A[9] > 0.0) { A[0] = 2.0; }",
    # float value stored into int array coerces
    "int A[2]; A[0] = 3.9;",
    # declared-type coercion on scalar assignment
    "int a; a = 2.5; a = a + 1;",
    # float scalar holding int value
    "float x; x = 3; x = x + 0.5;",
    # nested subscript out of bounds inside an expression
    "float A[3]; float B[3]; B[0] = A[0] + A[5];",
    # trap inside the right operand of a binop
    "float A[3]; A[0] = 1.0 + A[8];",
]


@pytest.mark.parametrize("source", EDGE_SOURCES)
def test_edge_parity(source):
    _assert_parity(source)


def test_builtin_domain_error_propagates_raw():
    # math.sqrt's ValueError is not an interpreter trap; neither path
    # may wrap it.
    src = "float x; x = sqrt(0.0 - 1.0);"
    with pytest.raises(ValueError):
        run_program(parse_program(src))
    with pytest.raises(ValueError):
        run_program_fast(parse_program(src))


def test_user_function_keyerror_propagates_raw():
    # A KeyError raised by a *user-supplied* function must not be
    # misread as an unbound-variable read and rewritten into
    # InterpError: both paths surface it unchanged.
    def boom(x):
        raise KeyError("user payload")

    program = parse_program("float x; x = f(1.0);")
    with pytest.raises(KeyError):
        run_program(program, functions={"f": boom})
    with pytest.raises(KeyError):
        run_program_fast(program, functions={"f": boom})


# ---------------------------------------------------------------------------
# Bail conditions fall back, never diverge
# ---------------------------------------------------------------------------


def test_env_falls_back_to_reference():
    src = "float A[2]; A[0] = A[1] + 1.0;"
    program = parse_program(src)
    env = {"A": np.array([0.0, 41.0])}
    ref = run_program(program, env=env)
    fast = run_program_fast(program, env={"A": np.array([0.0, 41.0])})
    _assert_states_identical(ref, fast)


def test_nested_decl_bails_but_matches():
    src = "int i; for (i = 0; i < 2; i += 1) { int t; t = i; }"
    program = parse_program(src)
    assert compile_program(program) is None
    _assert_parity(src)
