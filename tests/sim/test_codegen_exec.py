"""Pin the exec-compiled LIR fast path to the closure interpreter.

The fused block functions (:mod:`repro.sim.codegen_exec`) must be a
pure performance transform: every workload, on every machine, must
produce *bit-identical* final state and metrics versus both the
closure interpreter with the static observer and the per-instruction
dynamic observer.  Equality here is strict — exact ints, exact float
``repr`` for energy, and identical dict insertion order for
``op_counts``/``block_executions`` — because the sweep digest gate
depends on all of it.
"""

import numpy as np
import pytest

from repro.backend.compiler import FinalCompiler
from repro.machines import machine_by_name
from repro.sim.codegen_exec import ExecCompiledInterpreter, _self_loops
from repro.sim.executor import _profile_blocks, execute
from repro.sim.lir_interp import InterpError
from repro.workloads import all_workloads, get_workload

WORKLOADS = all_workloads()


def _compile(workload_name: str, machine_name: str = "itanium2",
             compiler: str = "gcc_O3"):
    machine = machine_by_name(machine_name)
    wl = get_workload(workload_name)
    compiled = FinalCompiler(machine, compiler).compile(wl.full_program())
    return compiled.module, machine


def _assert_states_identical(a, b):
    assert list(a.keys()) == list(b.keys())
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray):
            assert isinstance(vb, np.ndarray)
            assert va.dtype == vb.dtype and va.shape == vb.shape
            assert va.tobytes() == vb.tobytes(), key
        else:
            assert repr(va) == repr(vb), key


def _assert_metrics_identical(ma, mb):
    da, db = ma.to_dict(), mb.to_dict()
    assert repr(da["energy_pj"]) == repr(db["energy_pj"])
    assert list(da["op_counts"].items()) == list(db["op_counts"].items())
    assert list(da["block_executions"].items()) == list(
        db["block_executions"].items()
    )
    assert da == db


class TestEquivalenceAllWorkloads:
    @pytest.mark.parametrize(
        "workload", [wl.name for wl in WORKLOADS]
    )
    def test_exec_matches_closure_and_dynamic(self, workload):
        module, machine = _compile(workload)
        r_exec = execute(module, machine, codegen="exec")
        r_closure = execute(module, machine, codegen="closure")
        r_dynamic = execute(module, machine, accounting="dynamic")
        for reference in (r_closure, r_dynamic):
            _assert_states_identical(r_exec.state, reference.state)
            _assert_metrics_identical(r_exec.metrics, reference.metrics)

    @pytest.mark.parametrize(
        "machine_name,compiler",
        [
            ("pentium", "gcc_O3"),
            ("power4", "xlc_O3"),
            ("arm7tdmi", "arm_gcc"),
        ],
    )
    def test_exec_matches_closure_across_machines(
        self, machine_name, compiler
    ):
        for workload in ("mxm", "daxpy", "kernel21"):
            module, machine = _compile(workload, machine_name, compiler)
            r_exec = execute(module, machine, codegen="exec")
            r_closure = execute(module, machine, codegen="closure")
            _assert_states_identical(r_exec.state, r_closure.state)
            _assert_metrics_identical(r_exec.metrics, r_closure.metrics)


class TestSelfLoopFusion:
    def test_fused_loops_detected(self):
        # mxm's innermost loops are bottom-test self-loops; the codegen
        # must fuse them (that's where the fast path's speedup lives).
        module, _ = _compile("mxm")
        assert _self_loops(module), "no self-loops found in mxm"

    def test_fused_loop_counts_every_entry(self):
        module, machine = _compile("mxm")
        r_exec = execute(module, machine, codegen="exec")
        r_closure = execute(module, machine, codegen="closure")
        # Per-iteration block_executions must survive fusion exactly.
        assert (
            r_exec.metrics.block_executions
            == r_closure.metrics.block_executions
        )


class TestStepBudgetParity:
    @pytest.mark.parametrize("max_steps", [10, 137, 1003, 50_000])
    def test_budget_error_and_steps_match(self, max_steps):
        module, machine = _compile("mxm")
        profiles = _profile_blocks(module, machine)
        outcomes = []
        for codegen in ("exec", "closure"):
            try:
                execute(
                    module, machine, max_steps=max_steps, codegen=codegen
                )
                outcomes.append(("ok", None))
            except InterpError as exc:
                outcomes.append(("err", str(exc)))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == "err"  # mxm needs far more steps
        # The interpreter-visible step counter agrees at the moment of
        # the raise, not just the error text.
        exec_interp = ExecCompiledInterpreter(
            module, machine, profiles=profiles, max_steps=max_steps
        )
        with pytest.raises(InterpError):
            exec_interp.run()
        from repro.sim.lir_interp import LIRInterpreter

        ref = LIRInterpreter(module, max_steps=max_steps)
        with pytest.raises(InterpError):
            ref.run()
        assert exec_interp.steps == ref.steps


class TestExecRequiresStaticAccounting:
    def test_exec_mode_rejects_dynamic_modules(self):
        module, machine = _compile("mxm")
        # Forcing dynamic accounting with exec codegen is contradictory.
        with pytest.raises(ValueError):
            execute(module, machine, accounting="dynamic", codegen="exec")
