"""Power-analysis module tests."""

import pytest

from repro.backend.compiler import compile_and_run
from repro.machines import arm7tdmi, itanium2
from repro.sim.power import energy_breakdown, power_report

SRC = """
float A[64], B[64];
s = 0.0;
for (i = 0; i < 64; i++) { A[i] = i * 0.5; B[i] = 1.0; }
for (i = 0; i < 64; i++) s = s + A[i] * B[i];
"""


class TestEnergyBreakdown:
    def test_components_sum_to_executor_total(self):
        machine = arm7tdmi()
        _, run = compile_and_run(SRC, machine, "arm_gcc")
        breakdown = energy_breakdown(run.metrics, machine)
        assert breakdown.total == pytest.approx(run.metrics.energy_pj)

    def test_per_class_populated(self):
        machine = arm7tdmi()
        _, run = compile_and_run(SRC, machine, "arm_gcc")
        breakdown = energy_breakdown(run.metrics, machine)
        assert breakdown.per_class.get("mem", 0) > 0
        assert breakdown.per_class.get("fmul", 0) > 0
        assert breakdown.clock > 0

    def test_as_dict_keys(self):
        machine = itanium2()
        _, run = compile_and_run(SRC, machine, "gcc_O3")
        d = energy_breakdown(run.metrics, machine).as_dict()
        assert "clock" in d and "cache_misses" in d and "total" in d
        assert any(k.startswith("op_") for k in d)

    def test_empty_metrics(self):
        from repro.sim.executor import ExecutionMetrics

        breakdown = energy_breakdown(ExecutionMetrics(), arm7tdmi())
        assert breakdown.total == 0.0


class TestPowerReport:
    def test_daxpy_report(self):
        report = power_report("daxpy")
        assert report.machine == "arm7tdmi"
        assert report.base.total > 0 and report.slms.total > 0
        assert -500 < report.improvement_pct < 100

    def test_dominant_delta_named_component(self):
        report = power_report("ddot")
        component = report.dominant_delta()
        assert component.startswith("op_") or component in (
            "clock", "cache_misses",
        )

    def test_matches_experiment_energy(self):
        from repro.harness.experiment import run_experiment
        from repro.workloads import get_workload

        wl = get_workload("kernel12")
        res = run_experiment(wl, arm7tdmi(), "arm_gcc")
        report = power_report(wl)
        # The breakdown decomposes the *full-program* metrics while the
        # experiment subtracts setup; both must agree in sign for a
        # kernel-dominated program.
        assert (report.slms.total <= report.base.total) == (
            res.slms_energy <= res.base_energy
        )
