"""Static per-block accounting must match per-instruction accounting.

The executor's fast path charges each block execution a precomputed
profile (instruction count, op mix, op energy) instead of firing an
``on_instr`` callback per instruction.  These tests pin the contract:
on every corpus workload the static observer produces *exactly* the
metrics of the dynamic reference — cycles, energy, instructions,
op_counts, cache behavior — and modules whose executed mix is
path-dependent fall back to the dynamic observer.
"""

import pytest

from repro.backend.compiler import COMPILER_PRESETS, FinalCompiler
from repro.backend.lir import Instr, Module
from repro.machines.presets import arm7tdmi, itanium2
from repro.sim.executor import _executed_prefix, _profile_blocks, execute
from repro.sim.lir_interp import LIRInterpreter, Observer
from repro.workloads import all_workloads


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda wl: wl.name
)
def test_static_matches_dynamic_on_corpus(workload):
    """Cycles, energy, op_counts bit-equal on every corpus workload
    (icc_O3 exercises list scheduling, IMS-pipelined blocks and
    predicated selects)."""
    machine = itanium2()
    compiled = FinalCompiler(machine, COMPILER_PRESETS["icc_O3"]).compile(
        workload.full_program()
    )
    static = execute(compiled.module, machine, accounting="static")
    dynamic = execute(compiled.module, machine, accounting="dynamic")
    assert static.metrics == dynamic.metrics


def test_static_matches_dynamic_unscheduled():
    """-O0 code paths (no schedule, cost = instruction count) agree too."""
    machine = arm7tdmi()
    wl = all_workloads()[0]
    compiled = FinalCompiler(machine, COMPILER_PRESETS["gcc_O0"]).compile(
        wl.full_program()
    )
    static = execute(compiled.module, machine, accounting="static")
    dynamic = execute(compiled.module, machine, accounting="dynamic")
    assert static.metrics == dynamic.metrics


def _module_with_midblock_branch() -> Module:
    module = Module()
    entry = module.new_block("entry")
    entry.emit(Instr("movi", dst="r0", imm=0))
    entry.emit(Instr("brt", srcs=("r0",), label="exit"))
    entry.emit(Instr("movi", dst="r1", imm=7))  # only runs when not taken
    module.new_block("exit")
    return module


class TestPathDependentBlocks:
    def test_profile_refuses_midblock_conditional(self):
        module = _module_with_midblock_branch()
        assert _profile_blocks(module, itanium2()) is None

    def test_static_mode_raises(self):
        module = _module_with_midblock_branch()
        with pytest.raises(ValueError):
            execute(module, itanium2(), accounting="static")

    def test_auto_falls_back_and_counts_exactly(self):
        module = _module_with_midblock_branch()
        result = execute(module, itanium2())  # accounting="auto"
        # brt not taken (r0 == 0): all three entry instrs + empty exit.
        assert result.metrics.instructions == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            execute(_module_with_midblock_branch(), itanium2(),
                    accounting="bogus")


class TestExecutedPrefix:
    def test_dead_code_after_unconditional_br(self):
        module = Module()
        block = module.new_block("entry")
        block.emit(Instr("movi", dst="r0", imm=1))
        block.emit(Instr("br", label="exit"))
        block.emit(Instr("movi", dst="r1", imm=2))  # dead
        module.new_block("exit")
        prefix = _executed_prefix(module.blocks["entry"])
        assert [i.op for i in prefix] == ["movi", "br"]

    def test_terminal_conditional_is_static(self):
        module = Module()
        block = module.new_block("entry")
        block.emit(Instr("movi", dst="r0", imm=1))
        block.emit(Instr("brf", srcs=("r0",), label="exit"))
        module.new_block("exit")
        prefix = _executed_prefix(module.blocks["entry"])
        assert prefix is not None and len(prefix) == 2


class TestObserverCompat:
    def test_on_instr_still_fires_when_overridden(self):
        """Observers that override on_instr keep per-instruction events
        (the fast path only skips the callback for non-overriders)."""

        class Counting(Observer):
            def __init__(self):
                self.instrs = 0
                self.blocks = 0

            def on_block(self, name, module):
                self.blocks += 1

            def on_instr(self, instr):
                self.instrs += 1

        module = Module()
        block = module.new_block("entry")
        block.emit(Instr("movi", dst="r0", imm=5))
        block.emit(Instr("add", dst="r1", srcs=("r0", "r0")))
        observer = Counting()
        LIRInterpreter(module, observer=observer).run()
        assert observer.instrs == 2
        assert observer.blocks == 1
