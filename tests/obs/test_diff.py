"""Regression sentinel: digest hard-fails, tolerance-gated drift."""

from repro.obs import (
    diff_against_bench,
    diff_entries,
    diff_payload,
    has_failures,
    make_entry,
    render_diff,
)


def _entry(wall=1.0, digest="d" * 64, config=None, phases=None, faults=None,
           experiments=10, kind="sweep"):
    return make_entry(
        kind,
        "run",
        config=config or {"workloads": "all"},
        result_digest=digest,
        experiments=experiments,
        wall_s=wall,
        phase_times=phases or {"simulate": 0.5, "total": 0.9},
        faults=faults,
    )


class TestDiffEntries:
    def test_identical_runs_pass(self):
        findings = diff_entries(_entry(), _entry())
        assert not has_failures(findings)
        assert any(f.kind == "result-digest" and f.severity == "info"
                   for f in findings)

    def test_result_digest_change_is_hard_fail(self):
        findings = diff_entries(_entry(), _entry(digest="e" * 64))
        fails = [f for f in findings if f.severity == "fail"]
        assert [f.kind for f in fails] == ["result-digest"]
        assert "hard fail" in fails[0].message

    def test_wall_regression_beyond_tolerance_fails(self):
        findings = diff_entries(_entry(wall=1.0), _entry(wall=3.0))
        assert has_failures(findings)
        assert any(f.kind == "wall" and "3.00×" in f.message
                   for f in findings)

    def test_wall_within_tolerance_passes(self):
        assert not has_failures(
            diff_entries(_entry(wall=1.0), _entry(wall=1.9))
        )

    def test_improvement_is_info_not_failure(self):
        findings = diff_entries(_entry(wall=4.0), _entry(wall=1.0))
        assert not has_failures(findings)
        assert any(f.kind == "wall" and "improved" in f.message
                   for f in findings)

    def test_custom_tolerance(self):
        old, new = _entry(wall=1.0), _entry(wall=1.4)
        assert not has_failures(diff_entries(old, new))
        assert has_failures(diff_entries(old, new, wall_tol=0.2))

    def test_phase_regression_fails_above_noise_floor(self):
        old = _entry(phases={"simulate": 0.5, "total": 0.9})
        new = _entry(phases={"simulate": 2.0, "total": 0.9})
        findings = diff_entries(old, new)
        assert any(f.kind == "phase.simulate" and f.severity == "fail"
                   for f in findings)

    def test_noise_floor_ignores_tiny_phases(self):
        old = _entry(phases={"parse": 0.001})
        new = _entry(phases={"parse": 0.04})  # 40x but still noise
        assert not has_failures(diff_entries(old, new))

    def test_config_drift_is_fail_unless_allowed(self):
        old = _entry(config={"workloads": ["daxpy"]})
        new = _entry(config={"workloads": ["dscal"]})
        findings = diff_entries(old, new)
        assert has_failures(findings)
        relaxed = diff_entries(old, new, allow_config_drift=True)
        assert not has_failures(relaxed)
        assert any(f.severity == "warn" for f in relaxed)

    def test_kind_mismatch_not_comparable(self):
        findings = diff_entries(_entry(), _entry(kind="fuzz"))
        assert has_failures(findings)
        assert "not comparable" in findings[0].message

    def test_experiment_count_mismatch_fails(self):
        findings = diff_entries(
            _entry(experiments=10), _entry(experiments=4)
        )
        assert any(f.kind == "experiments" and f.severity == "fail"
                   for f in findings)

    def test_new_faults_fail(self):
        findings = diff_entries(
            _entry(), _entry(faults={"failures": 2})
        )
        assert any(f.kind == "faults" for f in findings)
        assert has_failures(findings)


class TestBenchDiff:
    BENCH = {
        "result_digest_sha256": "f" * 64,
        "history": [
            {"pr": 6, "experiments": 235, "wall_s": 10.0,
             "phase_totals_s": {"simulate": 6.0}},
            {"pr": 7, "experiments": 235, "wall_s": 8.0,
             "phase_totals_s": {"simulate": 5.0}},
        ],
    }

    def test_matching_digest_and_wall_passes(self):
        entry = _entry(wall=9.0, digest="f" * 64, experiments=235,
                       phases={"simulate": 5.5})
        findings = diff_against_bench(entry, self.BENCH)
        assert not has_failures(findings)
        assert any("matches the frozen" in f.message for f in findings)

    def test_digest_mismatch_hard_fails(self):
        entry = _entry(digest="0" * 64, experiments=235)
        assert has_failures(diff_against_bench(entry, self.BENCH))

    def test_wall_compared_against_latest_comparable(self):
        # 3x the PR-7 baseline (8.0s) regresses; the PR-6 10s entry is
        # history, not the baseline.
        entry = _entry(wall=24.0, digest="f" * 64, experiments=235)
        findings = diff_against_bench(entry, self.BENCH)
        assert any(f.kind == "wall" and f.severity == "fail"
                   for f in findings)

    def test_smoke_sweep_not_compared(self):
        entry = _entry(experiments=2, digest="0" * 64)
        findings = diff_against_bench(entry, self.BENCH)
        assert not has_failures(findings)
        assert any("not compared" in f.message for f in findings)


class TestRendering:
    def test_render_and_payload(self):
        findings = diff_entries(_entry(), _entry(wall=5.0))
        text = render_diff(findings, "HEAD~1", "HEAD")
        assert text.startswith("comparing HEAD~1 → HEAD")
        assert "verdict: REGRESSION" in text
        payload = diff_payload(findings, {"id": "a" * 64}, {"id": "b" * 64})
        assert payload["schema"] == "slms-diff/1"
        assert payload["regression"] is True
        assert payload["old"] == "a" * 16
        assert all(
            set(f) == {"severity", "kind", "message"}
            for f in payload["findings"]
        )

    def test_pass_verdict(self):
        text = render_diff(diff_entries(_entry(), _entry()))
        assert "verdict: PASS" in text
