"""Profiler: span folding, self-time, percentiles, worker invariance."""

from repro.backend.compiler import COMPILER_PRESETS
from repro.harness.engine import ExperimentSpec, run_experiments
from repro.machines.presets import itanium2
from repro.obs import (
    PROFILE_SCHEMA,
    Tracer,
    fold_trace,
    latency_percentiles,
    profile_results,
    render_profile,
    tracing,
)
from repro.workloads import get_workload


def _make_trace():
    tr = Tracer()
    clock = iter(range(0, 10_000, 100))
    tr._now = lambda: next(clock) * 1_000_000  # 100 ms ticks
    with tr.span("experiment"):
        with tr.span("phase.compile"):
            pass
        with tr.span("phase.simulate"):
            pass
    with tr.span("experiment"):
        with tr.span("phase.simulate"):
            pass
    return tr.to_dict()


class TestFold:
    def test_counts_totals_and_self_time(self):
        profile = fold_trace(_make_trace())
        exp = profile.row("experiment")
        sim = profile.row("phase.simulate")
        comp = profile.row("phase.compile")
        assert exp.count == 2
        assert sim.count == 2
        assert comp.count == 1
        # Self time excludes direct children: each experiment span is
        # its inclusive duration minus its phases'.
        assert exp.self_ns == exp.total_ns - sim.total_ns - comp.total_ns
        # Leaves have self == total.
        assert sim.self_ns == sim.total_ns

    def test_rows_sorted_by_total_desc(self):
        profile = fold_trace(_make_trace())
        totals = [row.total_ns for row in profile.rows]
        assert totals == sorted(totals, reverse=True)

    def test_latency_from_experiment_spans(self):
        profile = fold_trace(_make_trace())
        assert profile.latency["n"] == 2
        assert profile.latency["p50"] <= profile.latency["p99"]

    def test_empty_trace(self):
        profile = fold_trace(
            {"schema": "slms-trace/1", "spans": [], "events": []}
        )
        assert profile.rows == []
        assert profile.latency == {}
        assert profile.to_dict()["schema"] == PROFILE_SCHEMA

    def test_event_counts(self):
        tr = Tracer()
        with tr.span("experiment"):
            tr.event("ii.found", ii=2)
            tr.event("ii.found", ii=3)
            tr.event("filter.verdict")
        profile = fold_trace(tr.to_dict())
        assert profile.event_counts == {"filter.verdict": 1, "ii.found": 2}

    def test_render_profile_table(self):
        text = render_profile(fold_trace(_make_trace()))
        assert "experiment" in text
        assert "phase.simulate" in text
        assert "p50" in text


class TestPercentiles:
    def test_nearest_rank_is_a_sample_member(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        stats = latency_percentiles(values)
        assert stats["n"] == 5
        assert stats["p50"] == 3.0
        assert stats["p90"] == 5.0
        assert stats["p99"] == 5.0
        assert stats["max"] == 5.0
        for level in ("p50", "p90", "p99"):
            assert stats[level] in values

    def test_single_value(self):
        stats = latency_percentiles([0.25])
        assert stats["p50"] == stats["p99"] == stats["mean"] == 0.25

    def test_empty(self):
        assert latency_percentiles([]) == {}

    def test_deterministic_under_permutation(self):
        values = [0.1, 0.9, 0.4, 0.7, 0.2, 0.5]
        assert latency_percentiles(values) == latency_percentiles(
            sorted(values, reverse=True)
        )


class TestProfileResults:
    def test_aggregates_work_and_cached(self):
        results = [
            {"phase_times": {"simulate": 1.0, "total": 2.0},
             "cached_phase_times": {}},
            {"phase_times": {"cache": 0.01},
             "cached_phase_times": {"simulate": 3.0, "total": 4.0}},
        ]
        folded = profile_results(results)
        assert folded["phase_totals"] == {
            "cache": 0.01, "simulate": 1.0, "total": 2.0,
        }
        assert folded["cached_phase_totals"] == {
            "simulate": 3.0, "total": 4.0,
        }
        # A hit's latency is its lookup time; a fresh run's, its total.
        assert folded["latency"]["n"] == 2
        assert folded["latency"]["max"] == 2.0


class TestWorkerInvariance:
    def _fold(self, workers):
        specs = [
            ExperimentSpec(
                workload=get_workload(name),
                machine=itanium2(),
                compiler=COMPILER_PRESETS["gcc_O3"],
            )
            for name in ("daxpy", "kernel1", "dscal")
        ]
        with tracing(Tracer()) as tracer:
            run_experiments(specs, workers=workers, use_cache=False)
        return fold_trace(tracer.to_dict())

    def test_fold_identical_for_workers_1_vs_4(self):
        p1, p4 = self._fold(1), self._fold(4)
        # The folded *structure* — row names, call counts, event tallies
        # — is worker-count-invariant; only wall-clock magnitudes (and
        # hence the by-total row order) move.
        assert sorted((r.name, r.count) for r in p1.rows) == sorted(
            (r.name, r.count) for r in p4.rows
        )
        assert p1.event_counts == p4.event_counts
        assert p1.latency["n"] == p4.latency["n"] == 3
