"""Metrics tests: instrument semantics + associative merge."""

import pytest

from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_metrics,
    merged,
    metrics_scope,
)


def _sample(seed: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runs").inc(seed)
    reg.counter("cycles").inc(seed * 100)
    reg.gauge("workers").set(seed)
    for value in (seed * 0.5, seed * 2.0):
        reg.histogram("wall_s").observe(value)
    return reg


class TestInstruments:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.counter("c").value == 3.5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_last_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4)
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for value in (0.001, 0.5, 1000.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(1000.501)
        assert hist.min == 0.001
        assert hist.max == 1000.0
        assert sum(hist.counts) == 3

    def test_histogram_overflow_bin(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 10.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 1]


class TestMerge:
    def test_counters_add_gauges_last_win(self):
        a, b = _sample(1), _sample(2)
        a.merge(b)
        assert a.counter("runs").value == 3
        assert a.gauge("workers").value == 2

    def test_merge_accepts_dict_form(self):
        a = _sample(1)
        a.merge(_sample(2).to_dict())
        assert a.counter("cycles").value == 300

    def test_merge_associative(self):
        parts = [_sample(s).to_dict() for s in (1, 2, 3)]
        left = merged([merged(parts[:2]).to_dict(), parts[2]])
        right = merged([parts[0], merged(parts[1:]).to_dict()])
        flat = merged(parts)
        assert left.to_dict() == right.to_dict() == flat.to_dict()

    def test_histogram_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_merge_empty_histogram_keeps_none_bounds(self):
        a = MetricsRegistry()
        a.histogram("h")
        a.merge({"histograms": {}})
        b = MetricsRegistry()
        b.merge(a.to_dict())
        assert b.histogram("h").min is None
        assert b.histogram("h").max is None


class TestAmbient:
    def test_schema_tag(self):
        assert MetricsRegistry().to_dict()["schema"] == METRICS_SCHEMA

    def test_scope_restores(self):
        before = get_metrics()
        with metrics_scope() as reg:
            assert get_metrics() is reg
        assert get_metrics() is before
