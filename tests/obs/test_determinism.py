"""Trace/metrics determinism across worker counts (the merge contract).

The engine promises that the merged event *sequence* — names, attrs,
span references, per-batch tracks — is identical whether experiments
ran serially or fanned out over a process pool, because workers collect
into per-task tracers that the parent absorbs in spec order.  Only
timestamps may differ.
"""


from repro.backend.compiler import COMPILER_PRESETS
from repro.harness.engine import ExperimentSpec, run_experiments
from repro.obs import (
    MetricsRegistry,
    Tracer,
    merged,
    metrics_scope,
    tracing,
    validate_trace,
)
from repro.machines.presets import itanium2
from repro.workloads import get_workload

WORKLOADS = ("daxpy", "kernel1", "kernel3", "dscal")


def _specs():
    return [
        ExperimentSpec(
            workload=get_workload(name),
            machine=itanium2(),
            compiler=COMPILER_PRESETS["gcc_O3"],
            options=None,
            verify=True,
        )
        for name in WORKLOADS
    ]


def _traced_run(workers: int):
    with tracing(Tracer()) as tracer, metrics_scope(MetricsRegistry()) as reg:
        results, _ = run_experiments(
            _specs(), workers=workers, use_cache=False
        )
    return results, tracer.to_dict(), reg.to_dict()


def _event_sequence(trace):
    """Everything about the events except wall-clock time."""
    return [
        (e["name"], e["span"], e["track"], sorted(e["attrs"].items()))
        for e in trace["events"]
    ]


def _span_sequence(trace):
    """Span identity/topology, excluding timestamps and attrs that may
    legitimately vary with worker count (engine.run records workers)."""
    return [
        (s["id"], s["parent"], s["name"], s["track"])
        for s in trace["spans"]
    ]


def test_trace_identical_across_worker_counts():
    results1, trace1, metrics1 = _traced_run(workers=1)
    results4, trace4, metrics4 = _traced_run(workers=4)

    assert validate_trace(trace1) == []
    assert validate_trace(trace4) == []
    assert _event_sequence(trace1) == _event_sequence(trace4)
    assert _span_sequence(trace1) == _span_sequence(trace4)

    # The functional results are identical too (modulo wall clock).
    for r1, r4 in zip(results1, results4):
        d1, d4 = r1.to_dict(), r4.to_dict()
        d1.pop("phase_times"), d4.pop("phase_times")
        assert d1 == d4

    # Deterministic simulator counters merge to the same totals.
    for key in ("sim.runs", "sim.cycles", "sim.instructions",
                "sim.cache_misses"):
        assert metrics1["counters"][key] == metrics4["counters"][key]


def test_trace_covers_every_experiment():
    _, trace, _ = _traced_run(workers=2)
    exp_spans = [s for s in trace["spans"] if s["name"] == "experiment"]
    assert [s["attrs"]["workload"] for s in exp_spans] == list(WORKLOADS)
    # Each absorbed batch lands on its own track, in spec order.
    assert [s["track"] for s in exp_spans] == [1, 2, 3, 4]


def test_metrics_merge_order_grouping_invariant():
    """Folding worker payloads is associative (counters/histograms)."""
    parts = []
    for seed in (1, 2, 3, 4):
        reg = MetricsRegistry()
        reg.counter("sim.cycles").inc(seed * 1000)
        reg.histogram("engine.phase.total_s").observe(seed * 0.25)
        parts.append(reg.to_dict())
    pairwise = merged(
        [merged(parts[:2]).to_dict(), merged(parts[2:]).to_dict()]
    )
    flat = merged(parts)
    assert pairwise.to_dict() == flat.to_dict()
