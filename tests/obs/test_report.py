"""Report assembly and the self-contained HTML/terminal renderers."""

import json
import re

from repro.obs import (
    REPORT_SCHEMA,
    Tracer,
    build_report,
    fold_trace,
    make_entry,
    render_report_html,
    render_report_text,
    summarize_journal,
)


def _entries():
    return [
        make_entry(
            "sweep", "cold", config={"w": "all"}, result_digest="a" * 64,
            experiments=235, workers=4, wall_s=9.0,
            phase_times={"simulate": 5.0, "total": 8.5},
            cache={"hits": 0, "misses": 235, "hit_rate": 0.0},
            tiers={"simulate": {"hits": 0, "misses": 470}},
        ),
        make_entry(
            "sweep", "warm", config={"w": "all"}, result_digest="a" * 64,
            experiments=235, workers=4, wall_s=0.2,
            phase_times={"cache": 0.1},
            cached_phase_times={"simulate": 5.0, "total": 8.5},
            cache={"hits": 235, "misses": 0, "hit_rate": 1.0},
            tiers={"simulate": {"hits": 470, "misses": 0}},
            faults={"failures": 1},
            latency={"n": 235, "p50": 0.001, "p99": 0.003},
        ),
    ]


class TestBuild:
    def test_shape(self):
        report = build_report(_entries())
        assert report["schema"] == REPORT_SCHEMA
        assert report["runs"] == 2
        assert report["kinds"] == ["sweep"]
        assert report["distinct_result_digests"] == 1
        assert report["head"]["label"] == "warm"
        assert [row["label"] for row in report["trajectory"]] == [
            "cold", "warm",
        ]
        assert report["trajectory"][1]["failures"] == 1
        json.dumps(report)  # JSON-able end to end

    def test_empty_ledger(self):
        report = build_report([])
        assert report["runs"] == 0
        assert report["head"] is None
        assert "0 run(s)" in render_report_text(report)
        assert "<html" in render_report_html(report)

    def test_optional_sections(self):
        tr = Tracer()
        with tr.span("experiment"):
            pass
        profile = fold_trace(tr.to_dict()).to_dict()
        journal = {"path": "j.jsonl", "records": 3, "ok": 2, "failed": 1,
                   "statuses": {"ok": 2, "failed": 1}}
        report = build_report(_entries(), profile=profile, journal=journal)
        assert report["profile"]["rows"][0]["name"] == "experiment"
        assert report["journal"]["failed"] == 1


class TestText:
    def test_terminal_view(self):
        report = build_report(_entries())
        text = render_report_text(report)
        assert "2 run(s)" in text
        assert "cold" in text and "warm" in text
        assert "aaaaaaaaaaaa" in text  # digest prefix
        assert "latest run phase work" in text
        assert "seconds served from cache" in text
        assert "phase-cache tiers" in text
        assert "p50" in text


class TestHtml:
    def test_self_contained(self):
        html_text = render_report_html(build_report(_entries()))
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<style>" in html_text
        # Zero external references of any kind: no URLs, no scripts,
        # no imports — the CI job greps for the same invariants.
        assert "http://" not in html_text
        assert "https://" not in html_text
        assert "<script" not in html_text
        assert not re.search(r"\b(src|href)\s*=", html_text)

    def test_content_rendered_and_escaped(self):
        entries = _entries()
        entries[-1]["label"] = "warm <b>&</b>"
        html_text = render_report_html(build_report(entries))
        assert "warm &lt;b&gt;&amp;&lt;/b&gt;" in html_text
        assert "Run trajectory" in html_text
        assert "Latest run phases" in html_text
        assert "Phase-cache tiers" in html_text
        assert "100.0%" in html_text  # warm hit rate

    def test_journal_and_profile_sections(self):
        tr = Tracer()
        with tr.span("experiment"):
            pass
        report = build_report(
            _entries(),
            profile=fold_trace(tr.to_dict()).to_dict(),
            journal={"path": "j", "records": 2, "ok": 2, "failed": 0,
                     "statuses": {"ok": 2}},
        )
        html_text = render_report_html(report)
        assert "Profiler" in html_text
        assert "Fault journal" in html_text


class TestJournalSummary:
    def test_counts_by_status(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        lines = [
            {"schema": "slms-journal/1", "key": "a", "status": "ok"},
            {"schema": "slms-journal/1", "key": "b", "status": "ok"},
            {"schema": "slms-journal/1", "key": "c", "status": "failed"},
        ]
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps(line) + "\n")
            fh.write('{"torn')  # torn tail
        summary = summarize_journal(path)
        assert summary["records"] == 3
        assert summary["ok"] == 2
        assert summary["failed"] == 1
        assert summary["statuses"] == {"failed": 1, "ok": 2}

    def test_missing_file_is_empty(self, tmp_path):
        summary = summarize_journal(tmp_path / "none.jsonl")
        assert summary["records"] == 0
