"""Tracer unit tests: null singleton, nesting, absorb, ambient scope."""

from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.export import validate_trace
from repro.obs.tracer import _NULL_SPAN


class TestNullTracer:
    def test_disabled_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_span_is_shared_singleton(self):
        # The disabled path must not allocate: every span() call hands
        # out the same preallocated context manager.
        a = NULL_TRACER.span("x", foo=1)
        b = NULL_TRACER.span("y")
        assert a is b is _NULL_SPAN
        with a as span:
            assert span.set(k=1) is span

    def test_event_and_absorb_noop(self):
        NULL_TRACER.event("x", k=1)
        NULL_TRACER.absorb({"spans": [{"id": 0}], "events": []})
        assert NULL_TRACER.to_dict() == {
            "schema": TRACE_SCHEMA,
            "spans": [],
            "events": [],
        }


class TestTracer:
    def test_span_nesting_and_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", k=1):
                tr.event("deep", v=2)
            outer.set(done=True)
        tr.event("top")
        data = tr.to_dict()
        assert [s["id"] for s in data["spans"]] == [0, 1]
        assert data["spans"][0]["parent"] == -1
        assert data["spans"][1]["parent"] == 0
        assert data["spans"][0]["attrs"] == {"done": True}
        assert data["spans"][1]["attrs"] == {"k": 1}
        assert data["events"][0]["span"] == 1
        assert data["events"][1]["span"] == -1
        for span in data["spans"]:
            assert span["end_ns"] >= span["start_ns"]
        assert validate_trace(data) == []

    def test_absorb_offsets_and_reparents(self):
        worker = Tracer()
        with worker.span("experiment"):
            worker.event("decision", k=1)
        payload = worker.to_dict()

        parent = Tracer()
        with parent.span("engine.run") as _:
            parent.absorb(payload)
            parent.absorb(payload)
        data = parent.to_dict()
        # engine.run is span 0; each absorbed batch appends one span
        # re-parented under it, on its own track.
        assert [s["id"] for s in data["spans"]] == [0, 1, 2]
        assert [s["parent"] for s in data["spans"]] == [-1, 0, 0]
        assert [s["track"] for s in data["spans"]] == [0, 1, 2]
        assert [e["span"] for e in data["events"]] == [1, 2]
        assert validate_trace(data) == []

    def test_absorb_shifts_timestamps(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        with parent.span("p"):
            parent.absorb(worker.to_dict())
        absorbed = parent.to_dict()["spans"][1]
        enclosing = parent.to_dict()["spans"][0]
        assert absorbed["start_ns"] >= enclosing["start_ns"]


class TestAmbient:
    def test_set_tracer_none_restores_null(self):
        prev = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(prev)

    def test_tracing_scope_restores(self):
        before = get_tracer()
        with tracing() as tr:
            assert get_tracer() is tr
            assert tr.enabled
        assert get_tracer() is before
