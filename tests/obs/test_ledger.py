"""Run ledger: content addressing, torn-tail tolerance, ref resolution."""

import json

import pytest

from repro.obs import (
    LEDGER_SCHEMA,
    RunLedger,
    digest_of,
    entry_from_stats,
    environment_fingerprint,
    ledger_enabled,
    make_entry,
    render_entries,
)


def _entry(label="run", wall=1.0, **kwargs):
    kwargs.setdefault("config", {"workloads": ["daxpy"]})
    kwargs.setdefault("experiments", 5)
    return make_entry("sweep", label, wall_s=wall, **kwargs)


class TestEntry:
    def test_schema_and_digests(self):
        entry = _entry(result_digest="a" * 64)
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["config_digest"] == digest_of({"workloads": ["daxpy"]})
        assert entry["result_digest"] == "a" * 64
        assert entry["env"]["engine_version"]
        # The whole record is JSON-able as-is.
        json.dumps(entry)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown ledger kind"):
            make_entry("nonsense", "x")

    def test_config_digest_is_input_stable(self):
        a = _entry(config={"workloads": ["daxpy"], "pairs": "default"})
        b = _entry(config={"pairs": "default", "workloads": ["daxpy"]})
        assert a["config_digest"] == b["config_digest"]

    def test_entry_from_stats_maps_engine_payload(self):
        stats = {
            "engine_version": "3",
            "experiments": 10,
            "cache_hits": 4,
            "cache_misses": 6,
            "cache_hit_rate": 0.4,
            "cache_evictions": 0,
            "workers": 2,
            "worker_utilization": 0.9,
            "wall_s": 1.25,
            "phase_totals_s": {"simulate": 0.8, "total": 1.1},
            "cached_phase_totals_s": {"compile": 0.3},
            "phase_cache": {
                "simulate": {"hits": 3, "misses": 7, "hit_rate": 0.3},
            },
            "failures": 1,
            "retries": 2,
            "quarantined": 0,
            "timeouts": 1,
        }
        entry = entry_from_stats("sweep", "s", stats)
        assert entry["experiments"] == 10
        assert entry["workers"] == 2
        assert entry["cache"] == {
            "hits": 4, "misses": 6, "hit_rate": 0.4, "evictions": 0,
        }
        assert entry["tiers"]["simulate"]["hits"] == 3
        assert entry["phase_times"] == {"simulate": 0.8, "total": 1.1}
        assert entry["cached_phase_times"] == {"compile": 0.3}
        assert entry["faults"] == {
            "failures": 1, "retries": 2, "timeouts": 1,
        }
        assert entry["extra"]["worker_utilization"] == 0.9


class TestStore:
    def test_append_seals_content_address(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = ledger.append(_entry())
        body = {k: v for k, v in record.items() if k != "id"}
        assert record["id"] == digest_of(body)
        assert ledger.verify() == []

    def test_entries_round_trip_in_order(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(3):
            ledger.append(_entry(label=f"run{i}"))
        labels = [e["label"] for e in ledger.entries()]
        assert labels == ["run0", "run1", "run2"]
        assert ledger.latest()["label"] == "run2"
        assert [e["label"] for e in ledger.entries(limit=2)] == [
            "run1", "run2",
        ]

    def test_torn_tail_and_junk_lines_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_entry(label="good"))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write('{"schema": "other/1"}\n')
            fh.write('{"schema": "slms-ledger/1", "label": "torn')  # no \n
        entries = ledger.entries()
        assert [e["label"] for e in entries] == ["good"]

    def test_kind_filter(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_entry())
        ledger.append(make_entry("fuzz", "f", experiments=3))
        assert [e["kind"] for e in ledger.entries(kind="fuzz")] == ["fuzz"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").entries() == []

    def test_verify_flags_tampering(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_entry())
        record = ledger.entries()[0]
        record["wall_s"] = 99.0
        with open(ledger.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        problems = ledger.verify()
        assert len(problems) == 1
        assert "does not match" in problems[0]


class TestResolve:
    def _ledger(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(3):
            ledger.append(_entry(label=f"run{i}"))
        return ledger

    def test_head_refs(self, tmp_path):
        ledger = self._ledger(tmp_path)
        assert ledger.resolve("HEAD")["label"] == "run2"
        assert ledger.resolve("head~1")["label"] == "run1"
        assert ledger.resolve("HEAD~2")["label"] == "run0"

    def test_id_prefix(self, tmp_path):
        ledger = self._ledger(tmp_path)
        target = ledger.entries()[1]
        assert ledger.resolve(target["id"][:10])["label"] == "run1"

    def test_bad_refs_raise_with_guidance(self, tmp_path):
        ledger = self._ledger(tmp_path)
        with pytest.raises(ValueError, match="out of range"):
            ledger.resolve("HEAD~9")
        with pytest.raises(ValueError, match="no ledger entry"):
            ledger.resolve("ffffffff")
        with pytest.raises(ValueError, match="no entries"):
            RunLedger(tmp_path / "empty").resolve("HEAD")


class TestMisc:
    def test_ledger_enabled_env(self, monkeypatch):
        monkeypatch.delenv("SLMS_LEDGER", raising=False)
        assert ledger_enabled()
        for off in ("0", "false", "no", "OFF"):
            monkeypatch.setenv("SLMS_LEDGER", off)
            assert not ledger_enabled()
        monkeypatch.setenv("SLMS_LEDGER", "1")
        assert ledger_enabled()

    def test_environment_fingerprint_shape(self):
        env = environment_fingerprint()
        assert set(env) == {
            "python", "implementation", "platform", "machine", "cpus",
            "engine_version",
        }

    def test_render_entries_one_line_each(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_entry(result_digest="e" * 64))
        ledger.append(
            make_entry("fuzz", "f", faults={"failures": 2})
        )
        text = render_entries(ledger.entries())
        lines = text.splitlines()
        assert len(lines) == 2
        assert "sweep" in lines[0] and "eeeeeeeeeeee" in lines[0]
        assert lines[1].endswith("FAULTS")
