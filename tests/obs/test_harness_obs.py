"""Harness-facing observability: phase_times consistency, cache
counters on EngineStats, and the cache's lifetime sidecar."""

from repro.backend.compiler import COMPILER_PRESETS
from repro.harness.engine import EngineStats, ExperimentSpec, run_experiments
from repro.harness.expcache import ExperimentCache
from repro.harness.experiment import EXPERIMENT_PHASES, run_experiment
from repro.machines.presets import itanium2
from repro.workloads import get_workload


def _spec(name="daxpy"):
    return ExperimentSpec(
        workload=get_workload(name),
        machine=itanium2(),
        compiler=COMPILER_PRESETS["gcc_O3"],
        options=None,
        verify=True,
    )


class TestPhaseTimes:
    def test_every_phase_key_present_when_applied(self):
        res = run_experiment(get_workload("daxpy"), "itanium2", "gcc_O3")
        assert set(res.phase_times) == set(EXPERIMENT_PHASES)
        assert res.phase_times["total"] > 0

    def test_every_phase_key_present_when_declined(self):
        # Declined-SLMS runs used to skip phases and leave holes.
        res = run_experiment(get_workload("idamax"), "itanium2", "gcc_O3")
        assert not res.slms_applied
        assert set(res.phase_times) == set(EXPERIMENT_PHASES)

    def test_unverified_run_still_reports_verify_key(self):
        res = run_experiment(
            get_workload("daxpy"), "itanium2", "gcc_O3", verify=False
        )
        # The key is always present; with verify off only the (timed)
        # no-op branch runs, so the value is negligible but measured.
        assert res.phase_times["verify"] < 0.01

    def test_cache_hit_reports_cache_pseudo_phase(self, tmp_path):
        specs = [_spec()]
        run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        results, stats = run_experiments(
            specs, workers=1, cache_dir=str(tmp_path)
        )
        assert stats.cache_hits == 1
        assert list(results[0].phase_times) == ["cache"]
        assert results[0].phase_times["cache"] >= 0.0


class TestEngineStatsCounters:
    def test_stats_expose_cache_counter_triple(self, tmp_path):
        specs = [_spec(), _spec("kernel1")]
        _, cold = run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        _, warm = run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert cold.cache_evictions == warm.cache_evictions == 0
        for stats in (cold, warm):
            data = stats.to_dict()
            assert data["cache_evictions"] == 0
            assert 0.0 <= data["worker_utilization"]

    def test_utilization_zero_without_wall(self):
        assert EngineStats().utilization == 0.0


class TestCacheLifetimeCounters:
    def test_sidecar_accumulates_across_instances(self, tmp_path):
        specs = [_spec()]
        run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        lifetime = ExperimentCache(tmp_path).lifetime_counters()
        assert lifetime == {"hits": 1, "misses": 1, "evictions": 0}

    def test_clear_counts_evictions(self, tmp_path):
        specs = [_spec()]
        run_experiments(specs, workers=1, cache_dir=str(tmp_path))
        cache = ExperimentCache(tmp_path)
        removed = cache.clear()
        assert removed == 1
        assert cache.evictions == 1
        assert ExperimentCache(tmp_path).lifetime_counters()["evictions"] == 1

    def test_sidecar_does_not_pollute_entries(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.misses = 3
        cache.flush_counters()
        assert cache.entries() == []
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["lifetime"]["misses"] == 3
        assert stats["session"]["misses"] == 3

    def test_flush_idempotent(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.hits = 2
        cache.flush_counters()
        cache.flush_counters()
        assert cache.lifetime_counters()["hits"] == 2
        cache.hits = 5  # 3 more since last flush
        cache.flush_counters()
        assert cache.lifetime_counters()["hits"] == 5

    def test_unreadable_sidecar_degrades_to_zeros(self, tmp_path):
        (tmp_path / "counters.json").write_text("not json")
        cache = ExperimentCache(tmp_path)
        assert cache.lifetime_counters() == {
            "hits": 0, "misses": 0, "evictions": 0,
        }
