"""Decision-event content: the trace must tell the §3/§4 story.

A scheduled loop's trace carries the filter verdict, every candidate II
tried, each decomposition round, and a final ``slms.applied`` whose
numbers match the :class:`SLMSResult`; a declined loop's trace carries
the verdict and the decline reason.  ``slms trace`` surfaces the same
through the CLI.
"""

import json

from repro.cli import main
from repro.core.slms import SLMSOptions, slms_for_loop
from repro.core.names import NamePool
from repro.lang.ast_nodes import For
from repro.lang.parser import parse_program
from repro.lang.visitors import walk
from repro.obs import Tracer, tracing, validate_trace

SCHEDULED = """
float a[1000], b[1000], c[1000];
for (i = 0; i < 1000; i++) { a[i] = b[i] + c[i]; }
"""

BAD_CASE = """
float a[1000], b[1000];
for (i = 0; i < 1000; i++) { a[i] = b[i]; }
"""


def _first_loop(source):
    program = parse_program(source)
    return next(n for n in walk(program) if isinstance(n, For))


def _traced_slms(source, **options):
    loop = _first_loop(source)
    with tracing(Tracer()) as tracer:
        result = slms_for_loop(loop, NamePool(), SLMSOptions(**options))
    return result, tracer.to_dict()


def _events(trace, name):
    return [e for e in trace["events"] if e["name"] == name]


class TestScheduledLoop:
    def test_full_decision_story(self):
        result, trace = _traced_slms(SCHEDULED)
        assert result.applied
        assert validate_trace(trace) == []

        (verdict,) = _events(trace, "filter.verdict")
        assert verdict["attrs"]["apply_slms"] is True
        assert 0.0 < verdict["attrs"]["ratio"] < 0.85

        rounds = _events(trace, "decompose.round")
        assert len(rounds) == result.decompositions
        assert [r["attrs"]["round"] for r in rounds] == list(
            range(1, len(rounds) + 1)
        )
        for entry in rounds:
            assert entry["attrs"]["array"]
            assert entry["attrs"]["temp"]

        candidates = _events(trace, "ii.candidate")
        assert candidates, "no II candidates traced"
        assert candidates[-1]["attrs"]["valid"] is True
        assert candidates[-1]["attrs"]["ii"] == result.ii

        (found,) = _events(trace, "ii.found")
        assert found["attrs"]["ii"] == result.ii
        assert found["attrs"]["pmii"] == result.pmii
        assert found["attrs"]["decompositions"] == result.decompositions

        (applied,) = _events(trace, "slms.applied")
        assert applied["attrs"]["stages"] == result.stages
        assert applied["attrs"]["expansion"] == result.expansion

    def test_difmin_outcomes_traced(self):
        _, trace = _traced_slms(SCHEDULED)
        difmin = _events(trace, "mii.difmin")
        assert difmin, "difMin search not traced"
        assert all(
            isinstance(e["attrs"]["feasible"], bool) for e in difmin
        )


class TestDeclinedLoop:
    def test_bad_case_reason_traced(self):
        result, trace = _traced_slms(BAD_CASE)
        assert not result.applied
        (verdict,) = _events(trace, "filter.verdict")
        assert verdict["attrs"]["apply_slms"] is False
        assert verdict["attrs"]["ratio"] >= 0.85
        (decline,) = _events(trace, "slms.decline")
        assert decline["attrs"]["reason"] == result.reason
        assert not _events(trace, "slms.applied")

    def test_untraced_run_identical_result(self):
        traced, _ = _traced_slms(SCHEDULED)
        plain = slms_for_loop(
            _first_loop(SCHEDULED), NamePool(), SLMSOptions()
        )
        assert plain.applied == traced.applied
        assert plain.ii == traced.ii
        assert plain.decompositions == traced.decompositions


class TestTraceCommand:
    def test_scheduled_workload(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        chrome_path = tmp_path / "c.json"
        assert main([
            "trace", "kernel1",
            "--trace-out", str(out_path),
            "--chrome-out", str(chrome_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "filter.verdict" in out
        assert "ii.found" in out
        assert "SLMS:    applied" in out
        trace = json.loads(out_path.read_text())
        assert validate_trace(trace) == []
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_declined_workload(self, capsys):
        assert main(["trace", "idamax"]) == 0
        out = capsys.readouterr().out
        assert "slms.decline" in out
        assert "§4 bad case" in out
        assert "declined" in out

    def test_json_mode(self, capsys):
        assert main(["trace", "daxpy", "--json", "--no-verify"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "daxpy"
        assert validate_trace(data["trace"]) == []
        assert data["metrics"]["counters"]["sim.runs"] == 4
