"""Disabled-tracer overhead guard: observability must be free when off.

Two layers:

* structural — the disabled path hands out process-wide singletons, so
  no per-call allocation exists to pay for;
* behavioural — sweep output is byte-identical with tracing on vs. off
  (observability never perturbs results), and, when ``SLMS_FULL_DIGEST``
  is set, the full-corpus sweep digest still matches the committed
  ``BENCH_sweep.json`` baseline.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.harness.sweep import run_sweep
from repro.obs import NULL_TRACER, Tracer, get_tracer, tracing
from repro.obs.tracer import _NULL_SPAN

SUBSET = ["kernel1", "daxpy"]
PAIRS = [("itanium2", "gcc_O3"), ("pentium", "gcc_O3")]


def test_null_tracer_is_singleton_and_allocation_free():
    assert get_tracer() is NULL_TRACER
    # Both the tracer and its span context are shared singletons; the
    # instrumentation guard is a single attribute load.
    assert NULL_TRACER.span("anything", k=1) is _NULL_SPAN
    assert NULL_TRACER.span("other") is _NULL_SPAN
    assert NULL_TRACER.enabled is False
    assert type(NULL_TRACER).enabled is False  # class attr, no __dict__ hit


def test_sweep_output_identical_with_and_without_tracing():
    baseline = run_sweep(SUBSET, pairs=PAIRS, workers=1, use_cache=False)
    with tracing(Tracer()) as tracer:
        traced = run_sweep(SUBSET, pairs=PAIRS, workers=1, use_cache=False)
    assert tracer.spans, "tracing was on but recorded nothing"
    assert traced.to_json() == baseline.to_json()
    assert traced.to_csv() == baseline.to_csv()


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("SLMS_FULL_DIGEST"),
    reason="full-corpus digest sweep is slow; set SLMS_FULL_DIGEST=1",
)
def test_full_sweep_digest_matches_benchmark_baseline():
    bench_path = Path(__file__).resolve().parents[2] / "BENCH_sweep.json"
    record = json.loads(bench_path.read_text())
    expected = record["result_digest_sha256"]
    sweep = run_sweep(use_cache=False)
    digest = hashlib.sha256(sweep.to_json().encode("utf-8")).hexdigest()
    assert digest == expected
