"""Exporter tests: JSON schema validation, Chrome form, decision log."""

import json

from repro.harness.experiment import ExperimentResult
from repro.obs import (
    Tracer,
    format_metrics,
    render_trace,
    result_payload,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_json_trace,
)


def _sample_trace():
    tr = Tracer()
    with tr.span("experiment", workload="daxpy"):
        with tr.span("phase.transform"):
            tr.event("filter.verdict", apply_slms=True, ratio=0.5)
            tr.event("ii.found", ii=2, pmii=2)
    return tr.to_dict()


class TestValidate:
    def test_valid_trace_passes(self):
        assert validate_trace(_sample_trace()) == []

    def test_empty_trace_passes(self):
        assert validate_trace(
            {"schema": "slms-trace/1", "spans": [], "events": []}
        ) == []

    def test_bad_schema_tag(self):
        problems = validate_trace({"schema": "x", "spans": [], "events": []})
        assert any("schema" in p for p in problems)

    def test_id_index_mismatch(self):
        trace = _sample_trace()
        trace["spans"][0]["id"] = 5
        assert any("!= index" in p for p in validate_trace(trace))

    def test_dangling_parent_and_span_refs(self):
        trace = _sample_trace()
        trace["spans"][1]["parent"] = 99
        trace["events"][0]["span"] = 42
        problems = validate_trace(trace)
        assert any("bad parent" in p for p in problems)
        assert any("bad span reference" in p for p in problems)

    def test_non_scalar_attr_rejected(self):
        trace = _sample_trace()
        trace["events"][0]["attrs"]["nested"] = {"not": "allowed"}
        assert any("scalar" in p for p in validate_trace(trace))

    def test_end_before_start(self):
        trace = _sample_trace()
        trace["spans"][0]["end_ns"] = -1
        assert validate_trace(trace)


class TestChrome:
    def test_spans_and_events_mapped(self):
        chrome = to_chrome_trace(_sample_trace())
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in complete] == [
            "experiment", "phase.transform",
        ]
        assert [e["name"] for e in instant] == ["filter.verdict", "ii.found"]
        for entry in complete:
            assert entry["dur"] >= 0
            assert entry["pid"] == 1
        assert instant[0]["args"] == {"apply_slms": True, "ratio": 0.5}
        # cat groups by name prefix for chrome://tracing filtering.
        assert complete[1]["cat"] == "phase"

    def test_round_trips_files(self, tmp_path):
        trace = _sample_trace()
        json_path = tmp_path / "t.json"
        chrome_path = tmp_path / "c.json"
        write_json_trace(trace, str(json_path))
        write_chrome_trace(trace, str(chrome_path))
        assert json.loads(json_path.read_text()) == trace
        loaded = json.loads(chrome_path.read_text())
        assert loaded == to_chrome_trace(trace)

    def test_empty_trace_converts(self):
        chrome = to_chrome_trace(
            {"schema": "slms-trace/1", "spans": [], "events": []}
        )
        assert chrome == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_absorbed_multi_worker_payloads(self):
        """Two absorbed batches: ids offset, tracks distinct, refs valid."""
        batches = []
        for workload in ("daxpy", "dscal"):
            worker = Tracer()
            with worker.span("experiment", workload=workload):
                with worker.span("phase.simulate"):
                    worker.event("sim.done", workload=workload)
            batches.append(worker.to_dict())

        parent = Tracer()
        with parent.span("engine.run"):
            for batch in batches:
                parent.absorb(batch)
        trace = parent.to_dict()

        assert validate_trace(trace) == []
        exp_spans = [s for s in trace["spans"] if s["name"] == "experiment"]
        # Both batches survived with distinct (offset) ids and tracks,
        # reparented under the engine span.
        assert len(exp_spans) == 2
        assert exp_spans[0]["id"] != exp_spans[1]["id"]
        assert exp_spans[0]["track"] != exp_spans[1]["track"]
        assert all(s["parent"] == 0 for s in exp_spans)
        # The Chrome form keeps one row (tid) per absorbed batch and
        # every event's args survive as scalars.
        chrome = to_chrome_trace(trace)
        tids = {e["tid"] for e in chrome["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 3  # parent + two worker batches
        instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert [e["args"]["workload"] for e in instants] == [
            "daxpy", "dscal",
        ]

    def test_instant_events_at_identical_timestamps(self):
        """Simultaneous instants keep emission order in every view."""
        tr = Tracer()
        tr._now = lambda: 1000  # freeze the clock
        with tr.span("experiment"):
            tr.event("first", n=1)
            tr.event("second", n=2)
        trace = tr.to_dict()
        assert validate_trace(trace) == []
        assert trace["events"][0]["ts_ns"] == trace["events"][1]["ts_ns"]
        chrome = to_chrome_trace(trace)
        instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["first", "second"]
        assert instants[0]["ts"] == instants[1]["ts"]
        # The decision log breaks the tie deterministically too.
        log = render_trace(trace)
        assert log.index("• first") < log.index("• second")


class TestResultPayload:
    """Pin the symmetric phase_times/cached_phase_times export shape."""

    @staticmethod
    def _result(phase_times, cached):
        return ExperimentResult(
            workload="daxpy", suite="livermore", machine="itanium2",
            compiler="gcc_O3", base_cycles=100, slms_cycles=50,
            base_energy=1.0, slms_energy=0.5, slms_applied=True,
            phase_times=phase_times, cached_phase_times=cached,
        )

    def test_fresh_result_has_both_keys(self):
        payload = result_payload(
            self._result({"total": 1.5, "simulate": 1.0}, {})
        )
        assert set(payload) == {"phase_times", "cached_phase_times"}
        assert payload["phase_times"] == {"total": 1.5, "simulate": 1.0}
        assert payload["cached_phase_times"] == {}

    def test_cache_hit_shape(self):
        """Hits report lookup time + the work the entry originally did."""
        payload = result_payload(
            self._result({"cache": 0.001}, {"simulate": 2.0, "total": 2.5})
        )
        assert payload["phase_times"] == {"cache": 0.001}
        assert payload["cached_phase_times"] == {
            "simulate": 2.0, "total": 2.5,
        }

    def test_accepts_dict_form(self):
        payload = result_payload(
            {"phase_times": {"total": 1.0}, "cached_phase_times": None}
        )
        assert payload == {
            "phase_times": {"total": 1.0}, "cached_phase_times": {},
        }


class TestRender:
    def test_decision_log_shape(self):
        text = render_trace(_sample_trace())
        lines = text.splitlines()
        assert lines[0].startswith("experiment")
        assert "workload=daxpy" in lines[0]
        assert lines[1].startswith("  phase.transform")
        assert "• filter.verdict" in lines[2]
        assert "ratio=0.5" in lines[2]
        assert "ii=2" in lines[3]

    def test_events_only_mode(self):
        text = render_trace(_sample_trace(), events_only=True)
        assert "experiment" not in text
        assert "• ii.found" in text

    def test_format_metrics(self):
        metrics = {
            "counters": {"sim.runs": 4},
            "gauges": {"engine.workers": 2},
            "histograms": {
                "wall_s": {"count": 2, "sum": 1.5, "min": 0.5, "max": 1.0}
            },
        }
        text = format_metrics(metrics)
        assert "counter   sim.runs" in text
        assert "gauge     engine.workers" in text
        assert "count=2" in text
