"""Exporter tests: JSON schema validation, Chrome form, decision log."""

import json

from repro.obs import (
    Tracer,
    format_metrics,
    render_trace,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_json_trace,
)


def _sample_trace():
    tr = Tracer()
    with tr.span("experiment", workload="daxpy"):
        with tr.span("phase.transform"):
            tr.event("filter.verdict", apply_slms=True, ratio=0.5)
            tr.event("ii.found", ii=2, pmii=2)
    return tr.to_dict()


class TestValidate:
    def test_valid_trace_passes(self):
        assert validate_trace(_sample_trace()) == []

    def test_empty_trace_passes(self):
        assert validate_trace(
            {"schema": "slms-trace/1", "spans": [], "events": []}
        ) == []

    def test_bad_schema_tag(self):
        problems = validate_trace({"schema": "x", "spans": [], "events": []})
        assert any("schema" in p for p in problems)

    def test_id_index_mismatch(self):
        trace = _sample_trace()
        trace["spans"][0]["id"] = 5
        assert any("!= index" in p for p in validate_trace(trace))

    def test_dangling_parent_and_span_refs(self):
        trace = _sample_trace()
        trace["spans"][1]["parent"] = 99
        trace["events"][0]["span"] = 42
        problems = validate_trace(trace)
        assert any("bad parent" in p for p in problems)
        assert any("bad span reference" in p for p in problems)

    def test_non_scalar_attr_rejected(self):
        trace = _sample_trace()
        trace["events"][0]["attrs"]["nested"] = {"not": "allowed"}
        assert any("scalar" in p for p in validate_trace(trace))

    def test_end_before_start(self):
        trace = _sample_trace()
        trace["spans"][0]["end_ns"] = -1
        assert validate_trace(trace)


class TestChrome:
    def test_spans_and_events_mapped(self):
        chrome = to_chrome_trace(_sample_trace())
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in complete] == [
            "experiment", "phase.transform",
        ]
        assert [e["name"] for e in instant] == ["filter.verdict", "ii.found"]
        for entry in complete:
            assert entry["dur"] >= 0
            assert entry["pid"] == 1
        assert instant[0]["args"] == {"apply_slms": True, "ratio": 0.5}
        # cat groups by name prefix for chrome://tracing filtering.
        assert complete[1]["cat"] == "phase"

    def test_round_trips_files(self, tmp_path):
        trace = _sample_trace()
        json_path = tmp_path / "t.json"
        chrome_path = tmp_path / "c.json"
        write_json_trace(trace, str(json_path))
        write_chrome_trace(trace, str(chrome_path))
        assert json.loads(json_path.read_text()) == trace
        loaded = json.loads(chrome_path.read_text())
        assert loaded == to_chrome_trace(trace)


class TestRender:
    def test_decision_log_shape(self):
        text = render_trace(_sample_trace())
        lines = text.splitlines()
        assert lines[0].startswith("experiment")
        assert "workload=daxpy" in lines[0]
        assert lines[1].startswith("  phase.transform")
        assert "• filter.verdict" in lines[2]
        assert "ratio=0.5" in lines[2]
        assert "ii=2" in lines[3]

    def test_events_only_mode(self):
        text = render_trace(_sample_trace(), events_only=True)
        assert "experiment" not in text
        assert "• ii.found" in text

    def test_format_metrics(self):
        metrics = {
            "counters": {"sim.runs": 4},
            "gauges": {"engine.workers": 2},
            "histograms": {
                "wall_s": {"count": 2, "sum": 1.5, "min": 0.5, "max": 1.0}
            },
        }
        text = format_metrics(metrics)
        assert "counter   sim.runs" in text
        assert "gauge     engine.workers" in text
        assert "count=2" in text
