"""The ``oob`` fuzz profile and its oracle hook: every out-of-bounds
trap the reference interpreter takes must be statically flagged by
``slms lint`` (no false negatives), and cross-phase IR violations get
their own ``ir-invariant`` failure class instead of being misfiled."""

from repro.fuzz.generator import PROFILES, generate_case
from repro.fuzz.oracle import (
    FAILURE_CLASSES,
    OracleConfig,
    run_case,
)
from repro.verify.diagnostics import Diagnostic

FAST = OracleConfig(backend=False, metamorphic=False)


class TestProfile:
    def test_registered(self):
        assert "oob" in PROFILES
        assert PROFILES["oob"].p_oob > 0

    def test_no_conditionals(self):
        """Planted refs must execute unconditionally: the reference is
        then guaranteed to trap, and if-conversion cannot introduce a
        trap the original lacked (selects evaluate both arms)."""
        profile = PROFILES["oob"]
        assert profile.p_conditional == 0.0
        assert profile.p_ternary == 0.0

    def test_other_profiles_never_plant(self):
        for name, profile in PROFILES.items():
            if name != "oob":
                assert profile.p_oob == 0.0, name

    def test_generator_plants_and_counts(self):
        planted = sum(
            generate_case(seed, "oob").oob_refs for seed in range(30)
        )
        assert planted > 0

    def test_determinism(self):
        a = generate_case(7, "oob")
        b = generate_case(7, "oob")
        assert a.source == b.source and a.oob_refs == b.oob_refs


class TestNoFalseNegatives:
    def test_every_trap_is_lint_flagged(self):
        """The gate: across a batch, each case whose reference run traps
        out of bounds must be caught by lint — zero false negatives —
        and no other check may regress."""
        trapped = 0
        for seed in range(60):
            case = generate_case(seed, "oob")
            outcome = run_case(case, FAST)
            assert outcome.failure_class != "lint-false-negative", (
                f"seed {seed}: bounds prover missed a real trap: "
                f"{outcome.detail}"
            )
            assert not outcome.failed, (
                f"seed {seed}: {outcome.failure_class}: {outcome.detail}"
            )
            if "lint-oob" in outcome.checks_run:
                trapped += 1
                assert "lint flagged" in outcome.detail
        assert trapped >= 10, (
            f"only {trapped} trapping cases in the batch — too few to "
            "exercise the no-false-negative contract"
        )

    def test_failure_class_registered(self):
        assert "lint-false-negative" in FAILURE_CLASSES


class TestIRInvariantClass:
    def test_failure_class_registered(self):
        assert "ir-invariant" in FAILURE_CLASSES

    def test_seeded_v21x_is_classified_as_ir_invariant(self, monkeypatch):
        """Corrupt the IR checker's verdict on an applied case: the
        oracle must file it as ``ir-invariant``, not as a scheduler
        (validator-disagreement) bug."""
        import repro.verify.ir_check as ir_check

        def bad_check(result, loop):
            return [
                Diagnostic(
                    severity="error", code="V210",
                    loc=loop.loc,
                    message="seeded corruption for the oracle test",
                )
            ]

        applied_case = None
        for seed in range(40):
            case = generate_case(seed, "dataflow")
            if run_case(case, FAST).applied_loops:
                applied_case = case
                break
        assert applied_case is not None

        monkeypatch.setattr(ir_check, "check_result", bad_check)
        outcome = run_case(applied_case, FAST)
        assert outcome.failure_class == "ir-invariant"
        assert "V210" in outcome.detail

    def test_backend_layer_runs_module_check(self):
        """With the backend layer on, ``ir-invariant`` never fires on
        healthy cases — the compiled modules satisfy V212-V216."""
        config = OracleConfig(metamorphic=False)
        for seed in range(8):
            outcome = run_case(generate_case(seed, "oob"), config)
            assert outcome.failure_class != "ir-invariant", (
                f"seed {seed}: {outcome.detail}"
            )
            assert not outcome.failed
