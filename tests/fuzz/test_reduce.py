"""Reducer tests: ddmin against a synthetic oracle, corpus round-trip.

The real oracle is slow and (now) never fails, so the reducer is
exercised against a monkeypatched predicate oracle: a case "fails"
iff its source still writes to array ``B``.  The reducer must strip
everything else while preserving the failure class.
"""

import pytest

import repro.fuzz.reduce as reduce_mod
from repro.fuzz.generator import FuzzCase
from repro.fuzz.oracle import CaseOutcome
from repro.fuzz.reduce import (
    ReductionResult,
    corpus_filename,
    load_corpus,
    reduce_case,
    write_corpus_entry,
)

NOISY = """\
float A[16];
float B[16];
float C[16];
float s;
int i;
int j;
s = 0.5;
for (j = 0; j < 4; j++) {
    C[j] = C[j] + 1.0;
}
for (i = 0; i < 6; i++) {
    A[i] = A[i] * 2.0;
    B[i + 1] = B[i] + s;
    C[i] = A[i] + 3.0;
}
"""


def predicate_oracle(case, config=None):
    """Synthetic oracle: failing iff the program still touches B."""
    failing = "B[" in case.source
    return CaseOutcome(
        seed=case.seed,
        profile=case.profile,
        status="fail" if failing else "ok",
        failure_class="differential" if failing else None,
        detail="synthetic: writes B" if failing else "",
        source=case.source,
    )


@pytest.fixture
def synthetic(monkeypatch):
    monkeypatch.setattr(reduce_mod, "run_case", predicate_oracle)


def make_failing_case():
    case = FuzzCase.from_source(NOISY, seed=99)
    return case, predicate_oracle(case)


class TestDdmin:
    def test_reduces_to_the_essential_statement(self, synthetic):
        case, outcome = make_failing_case()
        result = reduce_case(case, outcome)
        assert result.shrank
        assert "B[" in result.reduced, "reducer destroyed the failure"
        # Everything unrelated to B must be gone.
        assert "C[j]" not in result.reduced
        assert result.failure_class == "differential"
        assert result.tests > 0 and result.steps > 0

    def test_reduction_is_deterministic(self, synthetic):
        case, outcome = make_failing_case()
        a = reduce_case(case, outcome)
        b = reduce_case(case, outcome)
        assert a.reduced == b.reduced
        assert a.tests == b.tests

    def test_respects_test_budget(self, synthetic):
        case, outcome = make_failing_case()
        result = reduce_case(case, outcome, max_tests=5)
        assert result.tests <= 5
        assert "B[" in result.reduced

    def test_rejects_passing_outcome(self):
        case = FuzzCase.from_source(NOISY, seed=99)
        ok = CaseOutcome(seed=99, profile="corpus", status="ok")
        with pytest.raises(ValueError):
            reduce_case(case, ok)


class TestCorpusPersistence:
    def test_filename_slugs_the_class(self):
        name = corpus_filename("backend-differential", 7, "dataflow")
        assert name == "backend_differential_dataflow_7.c"

    def test_write_then_load_round_trip(self, synthetic, tmp_path):
        case, outcome = make_failing_case()
        result = reduce_case(case, outcome)
        path = write_corpus_entry(
            result, case, directory=tmp_path, note="synthetic repro"
        )
        entries = load_corpus(tmp_path)
        assert [e.path for e in entries] == [path]
        entry = entries[0]
        assert entry.expect_seed == case.seed
        assert "synthetic repro" in entry.header
        assert entry.source == result.reduced
        # The body must be clean source again: no comment residue.
        assert not entry.source.startswith("/*")

    def test_load_corpus_on_missing_dir(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_reduction_result_shrank_property(self):
        r = ReductionResult(
            original="aaaa",
            reduced="a",
            failure_class="differential",
            outcome=CaseOutcome(seed=0, profile="x", status="fail"),
        )
        assert r.shrank
