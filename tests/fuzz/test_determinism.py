"""Session-level determinism: same seed, same report, any worker count.

These are the guarantees ``docs/FUZZING.md`` advertises: a recorded
``(seed, iterations, profile)`` triple is a complete repro, and CI can
shard across workers without changing what it tests.
"""

from repro.fuzz.oracle import OracleConfig
from repro.fuzz.session import (
    REPORT_SCHEMA,
    FuzzSessionConfig,
    run_fuzz_session,
)

# Small but non-trivial: rotates through every profile and exercises
# applied, declined, backend, and metamorphic paths.
CONFIG = FuzzSessionConfig(
    master_seed=42,
    iterations=12,
    profile="all",
    workers=1,
    oracle=OracleConfig(n_envs=2),
)


def test_same_seed_byte_identical_json():
    a = run_fuzz_session(CONFIG).to_json()
    b = run_fuzz_session(CONFIG).to_json()
    assert a == b


def test_worker_count_does_not_change_the_report():
    serial = run_fuzz_session(CONFIG)
    parallel = run_fuzz_session(
        FuzzSessionConfig(
            master_seed=CONFIG.master_seed,
            iterations=CONFIG.iterations,
            profile=CONFIG.profile,
            workers=2,
            oracle=CONFIG.oracle,
        )
    )
    assert serial.to_json() == parallel.to_json()


def test_report_has_no_wallclock_fields():
    report = run_fuzz_session(
        FuzzSessionConfig(master_seed=7, iterations=4, oracle=CONFIG.oracle)
    )
    payload = report.to_dict()
    assert payload["schema"] == REPORT_SCHEMA
    flat = repr(payload).lower()
    for banned in ("time", "duration", "host", "pid", "date"):
        assert banned not in flat, f"report leaks a {banned!r} field"


def test_different_seeds_differ():
    a = run_fuzz_session(
        FuzzSessionConfig(master_seed=1, iterations=6, oracle=CONFIG.oracle)
    )
    b = run_fuzz_session(
        FuzzSessionConfig(master_seed=2, iterations=6, oracle=CONFIG.oracle)
    )
    assert a.to_json() != b.to_json()
