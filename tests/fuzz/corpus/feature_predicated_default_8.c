/* fuzz corpus: exemplar: predicated
 * generator seed 8, profile default
 */
float A[19];
float B[19];
int s = 8;
int i;
for (i = 0; i < 9; i++) {
    A[i + 7] = 3.75 * 3.0;
    if (3.625 != 3.375 * A[i + 9]) {
        s = (s + s) % 8191;
    }
    s = s;
    s = i;
}
