/* fuzz corpus: int scalar webs must keep int rotation temps (float decl broke % )
 * generator seed 3, profile scalars
 */
int A[19];
float s = 3.75;
int t = 4;
int u = 8;
int i;
for (i = 0; i < 9; i++) {
    t = (t - A[i + 1]) % 8191;
    u = (u + A[i + 8]) % 8191;
    u = (u / 7 - u * i) % 8191;
    s = s * (s - 0.75);
}
