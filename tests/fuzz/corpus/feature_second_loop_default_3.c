/* fuzz corpus: exemplar: second_loop
 * generator seed 3, profile default
 */
float A[19];
int B[19];
int C[19][2];
float s = 3.75;
float t = 3.75;
int i;
for (i = 0; i < 9; i++) {
    s = 2.125 - (3.5 + 1.0 + A[i + 5]);
    C[i + 7][1] = (1.25 + t >= t - A[i + 8] ? i / 2 : 1) % 8191;
}
for (i = 0; i < 9; i++) {
    C[i + 6][1] = B[i + 2] % 8191;
    if (B[i + 5] - B[i + 2] == s) {
        A[i + 7] = 3.0 * C[i + 7][0] + (s + 3.375);
    } else {
        C[i + 6][0] = (i * i + B[i + 6]) % 8191;
    }
    A[i + 5] = B[i + 6] + s <= 1.625 * 3.5 ? min(C[i + 3][1], C[i + 2][1]) : 2.125 - t;
    t = t - t;
    s = A[i + 1] * C[i + 9][0] - (s + B[i + 4]) - (-C[i + 8][0] - (0.875 - B[i + 3]));
}
