/* fuzz corpus: exemplar: mve_decomposed
 * generator seed 26, profile default
 */
int A[18];
float B[18][3];
float C[18];
int s = 6;
int t = 3;
int i;
for (i = 0; i < 8; i++) {
    s = (8 + (i + t) + t * (A[i + 1] / 5)) % 8191;
}
