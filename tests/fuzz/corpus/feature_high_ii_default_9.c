/* fuzz corpus: exemplar: high_ii
 * generator seed 9, profile default
 */
float A[26];
float B[26];
int C[26];
float s = 0.25;
int i;
for (i = 0; i < 16; i++) {
    A[i + 4] = s;
    s = 2.125 + 3.125;
    if (1.125 + C[i + 1] <= 0.25 - C[i + 7]) {
        s += 0.0 + C[i + 4] - A[i + 3];
    }
    C[i + 9] = (0.625 - 0.875 > -C[i + 1] + C[i + 6] ? C[i + 6] : C[i + 1] * C[i + 8]) % 8191;
}
