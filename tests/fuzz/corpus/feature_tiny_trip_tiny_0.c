/* fuzz corpus: exemplar: tiny_trip
 * generator seed 0, profile tiny
 */
float A[14][4];
int B[14];
float s = 1.625;
int t = 8;
int i;
int n = 4;
for (i = 0; i < n; i++) {
    s = s * B[i + 8];
}
