/* fuzz corpus: A[i+3]=s / A[i+8]=s alias as instances; validator must not misassign
 * generator seed 709, profile dataflow
 */
float A[29];
float B[29];
float C[29];
float s = 0.5;
int i;
for (i = 0; i < 19; i++) {
    s = C[i + 2] * 0.375 * s;
    s = C[i + 1];
    B[i + 3] *= s + 1.0 - (s - 2.0);
    A[i + 3] = s;
    A[i + 8] = s;
}
