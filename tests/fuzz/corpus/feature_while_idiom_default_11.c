/* fuzz corpus: exemplar: while_idiom
 * generator seed 11, profile default
 */
int A[26];
int B[26];
int C[26];
int s = 1;
int t = 7;
int i;
i = 0;
while (i < 16) {
    B[i + 3] = s;
    i++;
}
for (i = 0; i < 16; i++) {
    s = A[i + 2] % 8191;
    s = s * B[i + 1] % 8191;
}
