/* fuzz corpus: rotations of distinct webs must not unify across origins (V204/V206)
 * generator seed 1642, profile dataflow
 */
float A[24];
float s = 0.25;
float t = 1.125;
int i;
for (i = 0; i < 14; i++) {
    s = A[i + 1];
    A[i + 8] = (0.75 - (A[i + 2] - A[i + 3])) * (0.75 - s - (A[i + 8] - s));
    s = A[i + 7];
    A[i + 9] *= -(t - s + 0.5 * s) + (t + 3.0) * (3.25 * 3.0);
    s = s + (A[i + 6] - t);
}
