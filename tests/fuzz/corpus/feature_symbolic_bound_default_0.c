/* fuzz corpus: exemplar: symbolic_bound
 * generator seed 0, profile default
 */
float A[24][4];
int B[24];
float s = 1.625;
int t = 8;
int i;
int n = 14;
for (i = 0; i < n; i++) {
    s = s * B[i + 8];
}
