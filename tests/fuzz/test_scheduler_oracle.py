"""The differential scheduler oracle (layer 5, ``--oracle-scheduler``).

The exact backend must agree with the heuristic on every verdict,
never produce a larger II, validate, and preserve semantics; a seeded
tampering hook proves each violation lands in the
``scheduler-divergence`` failure class, and a pinned 500-case batch
(slow tier) sweeps the generator's profiles with the oracle on.
"""

import pytest

import repro.fuzz.oracle as oracle_mod
from repro.fuzz.generator import FuzzCase
from repro.fuzz.oracle import (
    FAILURE_CLASSES,
    OracleConfig,
    run_case,
)
from repro.fuzz.session import FuzzSessionConfig, run_fuzz_session

GOOD = """\
float A[64];
float B[64];
int i;
for (i = 1; i < 64; i++) {
    A[i] = A[i - 1] * 0.5 + B[i];
    B[i] = B[i] + 2.0;
}
"""

# The crafted gap loop: heuristic II=2 (flow edge MI1 -> MI0 at
# distance 1), exact II=1 after reordering to [1, 0, 2].
GAP = """\
float x[100];
float y[100];
float z[100];
float w[100];
float u[100];
int i;
for (i = 0; i < 100; i++) {
    y[i] = 0.125 * i;
    z[i] = 0.25 * i;
    u[i] = 0.5 * i;
    x[i] = 0.0;
    w[i] = 0.0;
}
for (i = 1; i < 100; i = i + 1) {
    x[i] = y[i - 1] + 1.0;
    y[i] = z[i] * 2.0;
    w[i] = u[i] + 3.0;
}
"""

CONFIG = OracleConfig(
    backend=False, metamorphic=False, scheduler_oracle=True
)


def _case(source, seed=5):
    return FuzzCase.from_source(source, seed=seed)


class TestOracleConfig:
    def test_failure_class_registered(self):
        assert "scheduler-divergence" in FAILURE_CLASSES
        # More severe than the metamorphic classes, less than validator.
        assert FAILURE_CLASSES.index(
            "scheduler-divergence"
        ) > FAILURE_CLASSES.index("validator-disagreement")

    def test_config_roundtrips_and_defaults_off(self):
        assert OracleConfig().scheduler_oracle is False
        payload = CONFIG.to_dict()
        assert payload["scheduler_oracle"] is True
        assert OracleConfig(**payload) == CONFIG


class TestSchedulerLayer:
    def test_good_case_passes_with_layer_on(self):
        outcome = run_case(_case(GOOD), CONFIG)
        assert outcome.status == "ok", outcome.detail
        assert "scheduler" in outcome.checks_run

    def test_layer_off_by_default(self):
        outcome = run_case(
            _case(GOOD), OracleConfig(backend=False, metamorphic=False)
        )
        assert outcome.status == "ok"
        assert "scheduler" not in outcome.checks_run

    def test_exact_win_still_passes_the_oracle(self):
        # A genuine II improvement (gap loop) is not a divergence: the
        # invariant is exact <= heuristic, and semantics must match.
        outcome = run_case(_case(GAP), CONFIG)
        assert outcome.status == "ok", outcome.detail

    def test_larger_exact_ii_is_scheduler_divergence(self, monkeypatch):
        real_slms = oracle_mod.slms

        def lying(program, options):
            result = real_slms(program, options)
            if options.scheduler == "exact":
                for loop in result.loops:
                    if loop.applied:
                        loop.ii = loop.ii + 7
            return result

        monkeypatch.setattr(oracle_mod, "slms", lying)
        outcome = run_case(_case(GOOD), CONFIG)
        assert outcome.failure_class == "scheduler-divergence"
        assert "exceeds heuristic II" in outcome.detail

    def test_verdict_mismatch_is_scheduler_divergence(self, monkeypatch):
        real_slms = oracle_mod.slms

        def declining(program, options):
            result = real_slms(program, options)
            if options.scheduler == "exact":
                for loop in result.loops:
                    if loop.applied:
                        loop.applied = False
                        loop.reason = "tampered"
            return result

        monkeypatch.setattr(oracle_mod, "slms", declining)
        outcome = run_case(_case(GOOD), CONFIG)
        assert outcome.failure_class == "scheduler-divergence"
        assert "verdict mismatch" in outcome.detail

    def test_exact_crash_is_scheduler_divergence(self, monkeypatch):
        real_slms = oracle_mod.slms

        def exploding(program, options):
            if options.scheduler == "exact":
                raise RuntimeError("boom")
            return real_slms(program, options)

        monkeypatch.setattr(oracle_mod, "slms", exploding)
        outcome = run_case(_case(GOOD), CONFIG)
        assert outcome.failure_class == "scheduler-divergence"
        assert "exact slms raised" in outcome.detail


class TestSessionIntegration:
    def test_small_session_is_clean_and_deterministic(self):
        config = FuzzSessionConfig(
            master_seed=23, iterations=20, oracle=CONFIG
        )
        first = run_fuzz_session(config)
        second = run_fuzz_session(config)
        assert not first.failures, [
            (f.failure_class, f.detail) for f in first.failures
        ]
        assert first.to_json() == second.to_json()
        assert first.oracle["scheduler_oracle"] is True


@pytest.mark.slow
@pytest.mark.fuzz
def test_pinned_500_case_scheduler_batch():
    """The satellite's seed-pinned sweep: 500 generated cases through
    the scheduler oracle (source layers only, for wall-clock) must be
    divergence-free."""
    config = FuzzSessionConfig(
        master_seed=1016, iterations=500, oracle=CONFIG
    )
    report = run_fuzz_session(config)
    assert report.iterations == 500
    assert not report.failures, [
        (f.failure_class, f.seed, f.detail) for f in report.failures
    ]
