"""Validator/oracle cross-check: the static and dynamic judges agree.

Satellite requirement: every program SLMS accepts must also pass the
V2xx schedule validator, and a disagreement between the two is its own
failure class — never folded into a generic "fail".
"""

from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions
from repro.fuzz.generator import PROFILES, generate_case
from repro.fuzz.oracle import FAILURE_CLASSES, OracleConfig, run_case

# Skip the (slow, orthogonal) backend and metamorphic layers: this test
# is about the validator layer specifically.
FAST = OracleConfig(backend=False, metamorphic=False)


def test_disagreement_is_a_distinct_failure_class():
    assert "validator-disagreement" in FAILURE_CLASSES


def test_batch_has_zero_disagreements():
    checked_validator = 0
    for profile in sorted(PROFILES):
        for seed in range(25):
            outcome = run_case(generate_case(seed, profile), FAST)
            assert outcome.failure_class != "validator-disagreement", (
                f"{profile}/{seed}: {outcome.detail}"
            )
            assert not outcome.failed, (
                f"{profile}/{seed}: {outcome.failure_class}: "
                f"{outcome.detail}"
            )
            if outcome.applied_loops and "validator" in outcome.checks_run:
                # The oracle accepted; the validator must have too.
                assert outcome.validator_codes == []
                checked_validator += 1
    assert checked_validator >= 20, (
        "batch too small to exercise the cross-check meaningfully"
    )


def test_every_accepted_loop_passes_v2xx_directly():
    # Independent of the oracle plumbing: run the pipeline with
    # verify=True and inspect diagnostics ourselves.
    for seed in range(40):
        case = generate_case(seed, "dataflow")
        result = slms(case.source, SLMSOptions(verify=True))
        for loop in result.loops:
            if not loop.applied:
                continue
            errors = [
                d.code for d in loop.diagnostics if d.severity == "error"
            ]
            assert errors == [], (
                f"seed {seed}: applied loop carries validator errors "
                f"{errors}"
            )


def test_declines_are_traced_with_a_reason():
    # Acceptance criterion: generated programs either transform or
    # decline with a reason string — no silent third state.
    saw_decline = False
    for seed in range(30):
        outcome = run_case(generate_case(seed, "bounds"), FAST)
        assert outcome.status in ("ok", "declined")
        assert len(outcome.decline_reasons) == outcome.declined_loops
        if outcome.status == "declined":
            saw_decline = True
            assert all(r for r in outcome.decline_reasons)
    assert saw_decline, "bounds profile should produce some declines"
