"""Unit tests for the oracle layers and their failure classification."""

import numpy as np
import pytest

import repro.fuzz.oracle as oracle_mod
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.oracle import (
    CaseOutcome,
    OracleConfig,
    _divergence,
    check_source,
    make_env,
    run_case,
)

GOOD = """\
int n;
float A[16];
float B[16];
int i;
n = 8;
for (i = 0; i < n; i++) {
    A[i + 2] = A[i] * 0.5 + B[i];
}
"""


class TestEnvironments:
    def test_make_env_is_deterministic(self):
        case = FuzzCase.from_source(GOOD, seed=11)
        a, b = make_env(case, 0), make_env(case, 0)
        assert sorted(a) == sorted(b)
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_env_index_varies_the_store(self):
        case = FuzzCase.from_source(GOOD, seed=11)
        a, b = make_env(case, 0), make_env(case, 1)
        assert any(
            not np.array_equal(a[name], b[name]) for name in a
        )

    def test_float_values_are_dyadic(self):
        # Exactly representable eighths: arithmetic is bit-exact in
        # both the source interpreter and the LIR executor.
        case = FuzzCase.from_source(GOOD, seed=3)
        for value in make_env(case, 0).values():
            if value.dtype == np.float64:
                assert np.array_equal(value * 8.0, np.round(value * 8.0))

    def test_int_arrays_are_int64(self):
        case = generate_case(0, "scalars")
        env = make_env(case, 0)
        for name, typ in case.types.items():
            if name in env and typ == "int":
                assert env[name].dtype == np.int64


class TestDivergence:
    def test_equal_states_pass(self):
        ref = {"A": np.arange(4.0), "s": 1.5}
        out = {"A": np.arange(4.0), "s": 1.5, "s_w1": 9.0}
        assert _divergence(ref, out, "env0") is None

    def test_mismatch_names_the_variable(self):
        ref = {"A": np.arange(4.0), "s": 1.5}
        out = {"A": np.arange(4.0) + 1, "s": 1.5}
        problem = _divergence(ref, out, "env0")
        assert problem is not None and "A" in problem

    def test_missing_name_is_reported(self):
        problem = _divergence({"s": 1.0}, {}, "env0")
        assert problem is not None and "missing" in problem


class TestClassification:
    def test_good_source_is_ok(self):
        outcome = check_source(GOOD, seed=5)
        assert outcome.status == "ok"
        assert outcome.applied_loops >= 1
        for layer in ("reference", "differential", "validator", "backend"):
            assert layer in outcome.checks_run

    def test_backend_layer_is_optional(self):
        outcome = check_source(
            GOOD, seed=5, config=OracleConfig(backend=False)
        )
        assert "backend" not in outcome.checks_run
        assert outcome.status == "ok"

    def test_out_of_bounds_trap_checked_against_lint(self):
        # An OOB trap in the reference run is no longer a generic
        # invalid-case: it is the expected outcome for oob-style cases,
        # and the contract is that `slms lint` statically flagged the
        # trapping subscript (a miss would be lint-false-negative).
        bad = """\
float A[4];
int i;
for (i = 0; i < 9; i++) {
    A[i] = 1.0;
}
"""
        outcome = check_source(bad, seed=1)
        assert not outcome.failed
        assert "lint-oob" in outcome.checks_run
        assert "lint flagged" in outcome.detail

    def test_unparseable_source_is_invalid_case(self):
        case = FuzzCase(
            seed=0, profile="corpus", source="int A[",
            arrays={}, types={}, trip=0,
        )
        outcome = run_case(case, OracleConfig(backend=False))
        assert outcome.failure_class == "invalid-case"

    def test_pipeline_exception_is_crash(self, monkeypatch):
        def boom(program, options):
            raise RuntimeError("synthetic pipeline bug")

        monkeypatch.setattr(oracle_mod, "slms", boom)
        outcome = check_source(GOOD, seed=5)
        assert outcome.failure_class == "crash"
        assert "synthetic pipeline bug" in outcome.detail

    def test_wrong_transform_is_differential(self, monkeypatch):
        from types import SimpleNamespace

        from repro.lang.parser import parse_program

        wrong = parse_program(GOOD.replace("* 0.5", "* 0.25"))

        def lying_slms(program, options):
            return SimpleNamespace(
                program=wrong, applied_count=1, loops=[]
            )

        monkeypatch.setattr(oracle_mod, "slms", lying_slms)
        outcome = check_source(
            GOOD, seed=5, config=OracleConfig(backend=False,
                                              metamorphic=False)
        )
        assert outcome.failure_class == "differential"
        assert "A" in outcome.detail

    def test_validator_disagreement_class(self, monkeypatch):
        # Force V2xx errors onto an otherwise-accepted case: the oracle
        # must surface the conflict, not swallow it.
        from repro.core.pipeline import slms as real_slms

        def poisoned(program, options):
            result = real_slms(program, options)
            for loop in result.loops:
                if loop.applied:
                    loop.diagnostics.append(
                        SimpleDiag("V206", "error")
                    )
            return result

        class SimpleDiag:
            def __init__(self, code, severity):
                self.code = code
                self.severity = severity

        monkeypatch.setattr(oracle_mod, "slms", poisoned)
        outcome = check_source(
            GOOD, seed=5, config=OracleConfig(backend=False,
                                              metamorphic=False)
        )
        assert outcome.failure_class == "validator-disagreement"
        assert "V206" in outcome.detail


class TestMetamorphic:
    def test_reversal_check_runs_on_reversible_loops(self):
        # GOOD carries an A-distance-2 dependence, so reversal is not
        # applicable there; this loop has no recurrence.
        src = """\
float A[16];
float B[16];
int i;
for (i = 0; i < 8; i++) {
    A[i] = B[i] * 0.5 + 1.0;
}
"""
        outcome = check_source(
            src, seed=5, config=OracleConfig(backend=False)
        )
        assert not outcome.failed
        assert "metamorphic-reversal" in outcome.checks_run

    def test_unroll_check_runs_on_good(self):
        outcome = check_source(
            GOOD, seed=5, config=OracleConfig(backend=False)
        )
        assert outcome.status == "ok"
        assert "metamorphic-unroll" in outcome.checks_run

    def test_outcome_roundtrips_to_dict(self):
        outcome = CaseOutcome(seed=1, profile="default", status="ok")
        payload = outcome.to_dict()
        assert payload["status"] == "ok"
        assert "source" not in payload
        assert "source" in outcome.to_dict(include_source=True)


@pytest.mark.fuzz
def test_small_batch_is_clean():
    # A slightly larger sweep than the unit tests above; still quick
    # enough for tier 1 but tagged so heavy CI can scale it up.
    for seed in range(15):
        outcome = run_case(generate_case(seed, "default"))
        assert not outcome.failed, (
            f"seed {seed}: {outcome.failure_class}: {outcome.detail}"
        )
