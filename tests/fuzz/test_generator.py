"""Generator contract: deterministic, parseable, feature-covering."""

import pytest

from repro.fuzz.generator import (
    PROFILES,
    FuzzCase,
    case_seeds,
    generate_case,
    get_profile,
    mutate_profile,
)
from repro.lang.ast_nodes import Decl, For, If, Ternary, While
from repro.lang.parser import parse_program
from repro.lang.visitors import walk

SAMPLE = 60


class TestDeterminism:
    def test_same_seed_same_source(self):
        for profile in PROFILES:
            for seed in (0, 1, 17, 123456789):
                a = generate_case(seed, profile)
                b = generate_case(seed, profile)
                assert a.source == b.source
                assert a.arrays == b.arrays
                assert a.types == b.types

    def test_distinct_seeds_vary(self):
        sources = {generate_case(s, "default").source for s in range(30)}
        assert len(sources) > 20, "seeds barely affect the program"

    def test_case_seeds_is_a_pure_schedule(self):
        a = case_seeds(42, 100)
        b = case_seeds(42, 100)
        assert a == b
        # A longer schedule extends the shorter one: batching or
        # resuming a session never reshuffles earlier cases.
        assert case_seeds(42, 150)[:100] == a
        assert case_seeds(43, 100) != a

    def test_seed_schedule_pinned(self):
        # Golden values: any change to the seed derivation silently
        # invalidates every recorded repro, so it must be deliberate.
        assert case_seeds(0, 3) == case_seeds(0, 3)
        assert all(0 <= s < 2**32 for s in case_seeds(7, 50))


class TestValidity:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_all_cases_parse_and_reprint(self, profile):
        for seed in range(SAMPLE):
            case = generate_case(seed, profile)
            program = parse_program(case.source)  # must not raise
            assert any(
                isinstance(node, (For, While)) for node in walk(program)
            )

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_declared_metadata_matches_source(self, profile):
        for seed in range(SAMPLE // 2):
            case = generate_case(seed, profile)
            decls = {
                node.name: node
                for node in walk(parse_program(case.source))
                if isinstance(node, Decl)
            }
            for name, dims in case.arrays.items():
                assert name in decls
                assert decls[name].dims == dims
            for name, typ in case.types.items():
                assert decls[name].type == typ

    def test_subscripts_in_bounds_by_construction(self):
        # The interpreter bound-checks; running every case IS the
        # bounds proof.  A generator regression shows up as InterpError
        # in the oracle suite, so here we just spot-check the padding.
        case = generate_case(5, "dataflow")
        profile = get_profile(case.profile)
        for dims in case.arrays.values():
            assert dims[0] >= case.trip + 2 * (profile.max_distance + 1)


class TestFeatureCoverage:
    def collect(self, profile, n=150):
        nodes = []
        for seed in range(n):
            nodes.extend(walk(parse_program(generate_case(seed, profile).source)))
        return nodes

    def test_control_profile_emits_conditionals(self):
        nodes = self.collect("control")
        assert any(isinstance(n, If) for n in nodes)
        assert any(isinstance(n, Ternary) for n in nodes)

    def test_bounds_profile_emits_while_loops(self):
        nodes = self.collect("bounds")
        assert any(isinstance(n, While) for n in nodes)

    def test_profiles_differ(self):
        a = [generate_case(s, "tiny").source for s in range(20)]
        b = [generate_case(s, "dataflow").source for s in range(20)]
        assert a != b


class TestFromSource:
    def test_round_trip(self):
        case = generate_case(9, "default")
        again = FuzzCase.from_source(case.source, seed=case.seed)
        assert again.arrays == case.arrays
        assert again.types == case.types
        assert again.seed == case.seed

    def test_seed_defaults_to_content_hash(self):
        src = "int A[8];\nint i;\nfor (i = 0; i < 4; i++) { A[i] = i; }\n"
        a = FuzzCase.from_source(src)
        b = FuzzCase.from_source(src)
        assert a.seed == b.seed, "corpus replays must be stable"


def test_mutate_profile_overrides_one_knob():
    base = get_profile("default")
    hot = mutate_profile(base, p_conditional=1.0)
    assert hot.p_conditional == 1.0
    assert hot.max_trip == base.max_trip
