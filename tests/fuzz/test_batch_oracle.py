"""Batched multi-env interpretation must be verdict-neutral.

``OracleConfig.batch_envs`` routes the oracle's n_envs randomized
stores through one lockstep interpreter pass
(:func:`repro.sim.interp.run_program_batched`) instead of n_envs
separate tree walks.  That is purely an optimization: every corpus
entry — and a spread of generated cases across all profiles, including
those whose data-dependent control flow forces the per-env fallback —
must classify *identically* in both modes, down to the failure class
and detail strings.
"""

import numpy as np
import pytest

from repro.fuzz.generator import generate_case
from repro.fuzz.oracle import check_source, default_config, make_env, run_case
from repro.fuzz.reduce import load_corpus
from repro.lang.parser import parse_program
from repro.sim.interp import InterpError, run_program, run_program_batched

ENTRIES = load_corpus()


class TestCorpusParity:
    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=[e.path.name for e in ENTRIES]
    )
    def test_corpus_entry_classifies_identically(self, entry):
        per_env = check_source(
            entry.source,
            seed=entry.expect_seed,
            config=default_config(batch_envs=False),
        )
        batched = check_source(
            entry.source,
            seed=entry.expect_seed,
            config=default_config(batch_envs=True),
        )
        assert per_env.to_dict() == batched.to_dict()


class TestGeneratedParity:
    @pytest.mark.parametrize(
        "profile", ["default", "control", "oob", "tiny", "scalars"]
    )
    def test_generated_cases_classify_identically(self, profile):
        for seed in range(8):
            case = generate_case(seed * 7919 + 13, profile)
            a = run_case(case, default_config(batch_envs=False))
            b = run_case(case, default_config(batch_envs=True))
            assert a.to_dict() == b.to_dict(), (profile, seed)


class TestRunProgramBatched:
    def test_lockstep_states_match_sequential(self):
        case = generate_case(4242, "default")
        program = parse_program(case.source)
        envs = [make_env(case, j) for j in range(3)]
        outcomes = run_program_batched(
            program.clone(), [dict(e) for e in envs]
        )
        assert len(outcomes) == 3
        for env, out in zip(envs, outcomes):
            ref = run_program(program.clone(), env)
            assert not isinstance(out, InterpError)
            assert sorted(ref) == sorted(out)
            for name in ref:
                if isinstance(ref[name], np.ndarray):
                    assert np.array_equal(ref[name], out[name])
                else:
                    assert ref[name] == out[name]

    def test_divergent_control_flow_falls_back(self):
        # env-dependent branch: the lockstep pass must abandon and the
        # per-env replay must still produce exact per-env results.
        source = "if (a[0] > 0) { b[0] = 1; } else { b[0] = 2; }"
        program = parse_program(source)
        envs = [
            {"a": np.array([5], dtype=np.int64),
             "b": np.zeros(1, dtype=np.int64)},
            {"a": np.array([-5], dtype=np.int64),
             "b": np.zeros(1, dtype=np.int64)},
        ]
        outcomes = run_program_batched(program, envs)
        assert outcomes[0]["b"][0] == 1
        assert outcomes[1]["b"][0] == 2

    def test_per_env_errors_preserved(self):
        # One env traps out of bounds, the other completes; outcomes
        # must mirror what sequential run_program produces, message
        # included.
        source = "b[0] = a[a[0]];"
        program = parse_program(source)
        good = {
            "a": np.array([1, 7], dtype=np.int64),
            "b": np.zeros(1, dtype=np.int64),
        }
        bad = {
            "a": np.array([9, 7], dtype=np.int64),
            "b": np.zeros(1, dtype=np.int64),
        }
        outcomes = run_program_batched(
            program.clone(), [dict(good), dict(bad)]
        )
        assert outcomes[0]["b"][0] == 7
        assert isinstance(outcomes[1], InterpError)
        with pytest.raises(InterpError) as excinfo:
            run_program(program.clone(), bad)
        assert str(outcomes[1]) == str(excinfo.value)

    def test_uniform_budget_exhaustion(self):
        source = "for (i = 0; i < 1000; i++) { s = s + i; }"
        program = parse_program(source)
        envs = [{"s": 0}, {"s": 100}]
        outcomes = run_program_batched(
            program.clone(), [dict(e) for e in envs], max_steps=50
        )
        for env, out in zip(envs, outcomes):
            assert isinstance(out, InterpError)
            with pytest.raises(InterpError) as excinfo:
                run_program(program.clone(), env, max_steps=50)
            assert str(out) == str(excinfo.value)

    def test_empty_and_single_env(self):
        program = parse_program("x = 1;")
        assert run_program_batched(program.clone(), []) == []
        (only,) = run_program_batched(program.clone(), [{"x": 0}])
        assert only["x"] == 1
