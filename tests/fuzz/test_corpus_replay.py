"""Replay every corpus counterexample through the full oracle.

Each ``tests/fuzz/corpus/*.c`` file is either a reduced counterexample
from a past fuzzing run (now fixed) or a feature exemplar mined from a
large clean run.  Replaying them on every pytest run makes each one a
permanent regression test: a reintroduced bug fails here long before
the nightly fuzz job sees it.
"""

import pytest

from repro.fuzz.oracle import check_source
from repro.fuzz.reduce import CORPUS_DIR, load_corpus

ENTRIES = load_corpus()


def test_corpus_is_populated():
    assert CORPUS_DIR.is_dir()
    assert len(ENTRIES) >= 10, (
        "the corpus must hold at least ten interesting loops; "
        f"found {len(ENTRIES)} in {CORPUS_DIR}"
    )


def test_corpus_headers_carry_provenance():
    for entry in ENTRIES:
        assert entry.header.startswith("/*"), entry.path.name
        assert entry.expect_seed is not None, (
            f"{entry.path.name}: header lacks 'generator seed N'"
        )


def test_regression_entries_present():
    # The two bug classes this fuzzer actually caught must stay pinned:
    # int scalar webs getting float rotation temps, and the validator
    # mis-assigning structurally aliased MI instances.
    names = {e.path.name for e in ENTRIES}
    assert any("mve_int_web_temps" in n for n in names)
    assert any("validator" in n for n in names)


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.path.stem for e in ENTRIES]
)
def test_replay(entry):
    outcome = check_source(entry.source, seed=entry.expect_seed)
    assert not outcome.failed, (
        f"{entry.path.name} regressed: {outcome.failure_class}: "
        f"{outcome.detail}"
    )
