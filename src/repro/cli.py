"""Command-line interface: ``slms``.

Subcommands
-----------

``slms transform FILE``
    Apply SLMS to a C-subset source file and print the transformed
    program (``--paper`` for the paper's ``||`` notation, ``--force``
    to bypass the §4 filter, ``--expansion`` to pick MVE / scalar
    expansion).

``slms figure NAME``
    Regenerate one of the paper's figures (``fig14`` … ``fig22``,
    ``text_bundles``, or ``all``); ``--quick`` trims the workload list.

``slms bench WORKLOAD``
    Run a single workload comparison on a machine/compiler pair
    (``--profile`` prints per-phase wall-clock times).

``slms sweep [WORKLOAD ...]``
    The full workloads × machine/compiler matrix (default: every corpus
    workload × the paper's pairs).  ``--csv``/``--json`` export the
    matrix; ``--workers`` fans experiments out over processes,
    ``--no-cache`` bypasses the on-disk result cache, ``--profile``
    prints per-phase totals and ``--bench-json`` writes the
    machine-readable perf record (``BENCH_sweep.json``).  ``--timeout``
    bounds each experiment's wall clock, and ``--journal``/``--resume``
    checkpoint completed experiments so a killed sweep picks up where
    it stopped (see ``docs/ROBUSTNESS.md``); a failed cell is reported
    and exits 1 instead of aborting the matrix.

``slms cache stats|clear``
    Inspect or empty the experiment result cache (``stats`` also reports
    lifetime hit/miss/evict counters from the cache's sidecar).

``slms trace WORKLOAD``
    Run one workload comparison with the observability layer enabled
    and print the decision log: filter verdict, per-candidate-II search,
    decomposition rounds, expansion choice, phase spans.  ``--trace-out``
    writes the JSON trace, ``--chrome-out`` the Chrome ``trace_event``
    form (loadable in chrome://tracing), ``--metrics`` the metrics dump;
    ``--json`` emits everything as one machine-readable object.  The
    ``figure``/``bench``/``sweep`` subcommands accept
    ``--trace/--trace-out/--metrics`` to observe whole harness runs.

``slms explain FILE``
    Per-loop SLC diagnostics: filter verdict, multi-instructions,
    dependence edges, II search outcome and the Fig. 1 table view
    (``--dot`` additionally prints the dependence graph in DOT;
    ``--check`` also runs the semantic checker).

``slms check FILE``
    Static verification: semantic-check the source, transform every
    canonical loop, and validate each emitted schedule independently
    (``--json`` for machine-readable output, ``--Werror`` to fail on
    warnings).

``slms lint FILE``
    Dataflow lint (A3xx series): interval-analysis proofs of array
    subscript bounds, dead-store and use-before-initialization
    warnings, and a liveness-derived register-pressure estimate
    checked against ``--machine``.  ``--json`` emits the shared
    ``slms-diag/1`` payload; ``--Werror`` fails on warnings, ``--notes``
    shows the informational findings.

``slms advise FILE``
    Static SLMS applicability: predict — without running the scheduler
    — whether each innermost loop will be pipelined or declined (and
    why), its recMII floor and expected II/stage counts, with
    actionable suggestions.  The same advisor backs ``slms explain``'s
    advice section.

``slms report``
    Dashboard over the run ledger: every ``sweep``/``bench``/``fuzz``/
    ``trace`` invocation appends one ``slms-ledger/1`` record (under
    ``$SLMS_LEDGER_DIR``; disable with ``SLMS_LEDGER=0``), and this
    renders the trajectory — wall clock, result digests, cache-tier
    rates, fault counts — as a terminal table or a self-contained
    HTML file (``--html``); ``--trace-in`` folds a JSON trace into a
    profiler table, ``--journal`` summarizes a checkpoint journal.

``slms obs ledger|diff|bench-export``
    Ledger tools: ``ledger`` lists recorded runs (``--verify`` re-checks
    content addresses); ``diff`` is the regression sentinel — it
    compares two entries (``HEAD~1 HEAD`` by default, or ``--bench``
    against the BENCH_sweep.json trajectory), hard-fails on result-
    digest changes, tolerance-gates wall/phase drift, and exits 1 on
    regression; ``bench-export`` emits a BENCH-schema history entry
    from a sweep ledger record.

``slms serve``
    The long-running compilation service (``docs/SERVING.md``): JSON
    protocol ``slms-serve/1`` over HTTP, request coalescing through
    the content-addressed experiment key, bounded admission with 429
    shedding, per-request timeouts/retry via the fault layer, poison-
    request quarantine, ``/healthz`` + ``/statsz``, and SIGTERM
    draining.  ``slms serve-bench`` is the concurrent-client load
    harness (writes ``BENCH_serve.json``).

Bad input never produces a traceback, and exit codes are uniform
across subcommands: **0** success, **1** failures (failed experiments,
fuzz findings, ``check`` errors, or an internal error — set
``SLMS_DEBUG=1`` for the traceback), **2** usage/input errors (bad
flags, unknown names, ``file:line:col: error: …`` frontend
diagnostics), **130** on Ctrl-C and **143** on SIGTERM (both with a
note that checkpointed partial results can be resumed via
``--resume``).

Every user-facing operation is a thin rendering shell over
:class:`repro.serve.session.Session` — the same request→response API
the server dispatches to — so CLI and service behavior cannot drift.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro import to_source
    from repro.serve.session import Session, options_from_params

    source = _read_source(args.file)
    options = options_from_params(
        {
            "enable_filter": not args.no_filter,
            "force": args.force,
            "expansion": args.expansion,
            "reduction_lanes": args.reduction_lanes,
            "allow_reassociation": args.allow_reassociation,
            "scheduler": args.scheduler,
            "sched_budget": args.sched_budget,
            "machine": args.machine,
        }
    )
    outcome = Session().compile_outcome(source, options)
    style = "paper" if args.paper else "c"
    print(to_source(outcome.program, style=style))
    if args.report:
        print("/*", file=sys.stderr)
        for idx, report in enumerate(outcome.loops):
            status = (
                f"applied II={report.ii} stages={report.stages} "
                f"expansion={report.expansion}"
                if report.applied
                else f"declined: {report.reason}"
            )
            if report.applied and report.scheduler != "heuristic":
                status += (
                    f" scheduler={report.scheduler}"
                    f" heuristic_ii={report.heuristic_ii}"
                    f" proven={report.sched_proven}"
                )
            if report.applied and report.res_mii is not None:
                status += f" res_mii={report.res_mii}"
            print(f" loop {idx}: {status}", file=sys.stderr)
        print("*/", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro import SLMSOptions, slms
    from repro.core.explain import ddg_to_dot, explain
    from repro.lang.ast_nodes import For, While
    from repro.lang.parser import parse_program
    from repro.lang.visitors import walk

    source = _read_source(args.file)
    program = parse_program(source)

    if args.check:
        from repro.verify import check_program, has_errors

        diags = check_program(program)
        print(f"===== semantic check: {len(diags)} finding(s) =====")
        for diag in diags:
            print(diag.format(args.file))
        if has_errors(diags):
            print("(semantic errors; the filter verdicts below may be moot)")
        print()
    options = SLMSOptions(
        enable_filter=not args.no_filter,
        force=args.force,
        reduction_lanes=args.reduction_lanes,
        allow_reassociation=args.allow_reassociation,
    )
    outcome = slms(program, options)

    # Pair reports with the attempted loops, in traversal order.
    def innermost_loops(node):
        for child in walk(node):
            if isinstance(child, For) and not any(
                isinstance(g, (For, While)) for s in child.body for g in walk(s)
            ):
                yield child

    loops = list(innermost_loops(program))
    for idx, (loop, report) in enumerate(zip(loops, outcome.loops)):
        if idx:
            print()
        print(f"===== loop {idx} =====")
        print(explain(loop, report))
        if args.dot and report.ddg is not None:
            print()
            print(ddg_to_dot(report.ddg, report.final_mis or None))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Full static verification of one source file.

    Runs the semantic checker over the program, then transforms every
    canonical loop with the schedule validator enabled and reports its
    findings alongside.  Exit status 1 when any error (or, under
    ``--Werror``, any warning) is found.
    """
    from repro import SLMSOptions, slms
    from repro.lang.parser import parse_program
    from repro.verify import check_program, has_errors, sort_diagnostics
    from repro.verify.diagnostics import json_payload

    source = _read_source(args.file)
    program = parse_program(source)
    diags = list(check_program(program))

    options = SLMSOptions(enable_filter=not args.no_filter, verify=True)
    outcome = slms(program, options)
    loop_reports = []
    for idx, report in enumerate(outcome.loops):
        loop_reports.append(
            {
                "loop": idx,
                "applied": report.applied,
                "ii": report.ii,
                "stages": report.stages,
                "reason": report.reason,
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            }
        )
        diags.extend(report.diagnostics)
    diags = sort_diagnostics(diags)

    failed = has_errors(diags, werror=args.werror)
    if args.json:
        print(
            json.dumps(
                json_payload(
                    args.file, diags, werror=args.werror,
                    loops=loop_reports,
                ),
                indent=2,
            )
        )
    else:
        for diag in diags:
            print(diag.format(args.file))
        applied = sum(1 for r in outcome.loops if r.applied)
        validated = sum(
            1
            for r in outcome.loops
            if r.applied and not has_errors(r.diagnostics)
        )
        print(
            f"{args.file}: {len(diags)} finding(s); "
            f"{applied}/{len(outcome.loops)} loop(s) transformed, "
            f"{validated}/{applied} schedule(s) validated"
        )
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Dataflow lint: bounds proofs, dead stores, use-before-init, and
    the register-pressure estimate for one source file."""
    from repro.lang.parser import parse_program
    from repro.machines.presets import machine_by_name
    from repro.verify import has_errors
    from repro.verify.diagnostics import json_payload
    from repro.verify.lint import lint_program

    source = _read_source(args.file)
    program = parse_program(source)
    machine = None if args.machine == "none" else machine_by_name(args.machine)
    with _Observed(args):
        diags = lint_program(program, machine)

    failed = has_errors(diags, werror=args.werror)
    if args.json:
        print(
            json.dumps(
                json_payload(
                    args.file, diags, werror=args.werror,
                    machine=args.machine,
                ),
                indent=2,
            )
        )
        return 1 if failed else 0
    shown = [d for d in diags if args.notes or d.severity != "note"]
    for diag in shown:
        print(diag.format(args.file))
    errors = sum(1 for d in diags if d.severity == "error")
    warnings = sum(1 for d in diags if d.severity == "warning")
    print(
        f"{args.file}: {errors} error(s), {warnings} warning(s), "
        f"{len(diags) - errors - warnings} note(s)"
    )
    return 1 if failed else 0


def _cmd_advise(args: argparse.Namespace) -> int:
    """Static SLMS applicability report: predicted verdict, recMII floor,
    and actionable suggestions — without running the scheduler."""
    from repro.core.advisor import render_advice
    from repro.serve.session import Session, options_from_params

    source = _read_source(args.file)
    options = options_from_params(
        {
            "enable_filter": not args.no_filter,
            "force": args.force,
            "scheduler": args.scheduler,
            "machine": args.machine,
        }
    )
    with _Observed(args):
        advices = Session().advise_objects(source, options)

    if args.json:
        print(
            json.dumps(
                {
                    "schema": "slms-advise/1",
                    "file": args.file,
                    "loops": [a.to_dict() for a in advices],
                },
                indent=2,
            )
        )
        return 0
    if not advices:
        print(f"{args.file}: no innermost canonical loop candidates")
        return 0
    for idx, advice in enumerate(advices):
        if idx:
            print()
        print(f"===== loop {idx} =====")
        print(render_advice(advice))
    return 0


def _print_phases(phase_totals, file=None) -> None:
    file = file if file is not None else sys.stdout
    print("per-phase wall clock:", file=file)
    for phase in ("parse", "transform", "compile", "simulate", "verify",
                  "cache", "total"):
        if phase in phase_totals:
            print(f"  {phase:<10} {phase_totals[phase]:8.3f} s", file=file)


def _ledger_append(entry) -> None:
    """Best-effort ledger recording: observability must never take a
    CLI run down (or even print), so every failure is swallowed."""
    try:
        from repro.obs import RunLedger, ledger_enabled

        if not ledger_enabled():
            return
        RunLedger().append(entry)
    except Exception:
        pass


def _result_digest(result) -> str:
    """Content digest of one experiment result, timing excluded (two
    identical runs differ only in wall clock, never in digest)."""
    from repro.obs import digest_of

    payload = result.to_dict()
    payload.pop("phase_times", None)
    payload.pop("cached_phase_times", None)
    return digest_of(payload)


def _print_tier_rates(stats, file=None) -> None:
    """Phase-cache traffic for freshly-run experiments in one engine
    call (nothing to print when every result came from the full cache)."""
    file = file if file is not None else sys.stdout
    tiers = ("transform", "compile", "simulate", "verify")
    traffic = {
        tier: (stats.tier_hits.get(tier, 0), stats.tier_misses.get(tier, 0))
        for tier in tiers
    }
    if not any(h + m for h, m in traffic.values()):
        return
    print("phase-cache hit rates:", file=file)
    for tier, (hits, misses) in traffic.items():
        total = hits + misses
        rate = f"{hits / total:6.1%}" if total else "     -"
        print(
            f"  {tier:<10} {rate}  ({hits} hit(s) / {misses} miss(es))",
            file=file,
        )


class _Observed:
    """Tracing/metrics scope for a CLI command, driven by its flags.

    Enables the ambient tracer when any of ``--trace``/``--trace-out``/
    ``--chrome-out`` is set and always collects metrics into a fresh
    registry; on exit writes/prints whatever the flags asked for.
    """

    def __init__(self, args):
        self._trace_out = getattr(args, "trace_out", None)
        self._chrome_out = getattr(args, "chrome_out", None)
        self._show_trace = getattr(args, "trace", False)
        self._show_metrics = getattr(args, "metrics", False)
        self.tracing = bool(
            self._show_trace or self._trace_out or self._chrome_out
        )

    def __enter__(self):
        from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer

        self._prev_registry = set_metrics(MetricsRegistry())
        self._prev_tracer = set_tracer(Tracer() if self.tracing else None)
        return self

    def __exit__(self, exc_type, exc, tb):
        from repro.obs import (
            format_metrics,
            get_metrics,
            get_tracer,
            render_trace,
            set_metrics,
            set_tracer,
            write_chrome_trace,
            write_json_trace,
        )

        tracer = get_tracer()
        registry = get_metrics()
        set_tracer(self._prev_tracer)
        set_metrics(self._prev_registry)
        if exc_type is not None:
            return False
        if self.tracing:
            trace = tracer.to_dict()
            if self._trace_out:
                write_json_trace(trace, self._trace_out)
                print(f"# trace written to {self._trace_out}",
                      file=sys.stderr)
            if self._chrome_out:
                write_chrome_trace(trace, self._chrome_out)
                print(f"# chrome trace written to {self._chrome_out}",
                      file=sys.stderr)
            if self._show_trace:
                print(render_trace(trace), file=sys.stderr)
        if self._show_metrics:
            print(format_metrics(registry.to_dict()), file=sys.stderr)
        return False


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="collect a pipeline trace and print the "
                        "decision log to stderr")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the JSON trace (implies tracing)")
    parser.add_argument("--chrome-out", metavar="PATH",
                        help="write a Chrome trace_event file for "
                        "chrome://tracing (implies tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry dump to stderr")


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness.engine import engine_defaults
    from repro.harness.figures import FIGURES, run_figure
    from repro.harness.report import render_figure

    names = sorted(FIGURES) if args.name == "all" else [args.name]
    with _Observed(args), engine_defaults(
        workers=args.workers, use_cache=not args.no_cache
    ):
        for name in names:
            print(render_figure(run_figure(name, quick=args.quick)))
            print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.serve.session import Session

    with _Observed(args):
        res = Session().bench_result(
            args.workload, args.machine, args.compiler
        )
    print(f"workload:  {res.workload} ({res.suite})")
    print(f"machine:   {res.machine}   compiler: {res.compiler}")
    print(f"SLMS:      {'applied, II=' + str(res.ii) if res.slms_applied else 'declined (' + res.slms_reason + ')'}")
    print(f"cycles:    {res.base_cycles} -> {res.slms_cycles} "
          f"(speedup {res.speedup:.3f}x)")
    print(f"energy:    {res.base_energy / 1000:.1f} nJ -> "
          f"{res.slms_energy / 1000:.1f} nJ")
    print(f"machine MS: before={res.ims_base} after={res.ims_slms}")
    if args.profile:
        _print_phases(res.phase_times)

    from repro.obs import make_entry

    _ledger_append(
        make_entry(
            "bench",
            f"{res.workload}@{res.machine}/{res.compiler}",
            config={
                "workload": res.workload,
                "machine": res.machine,
                "compiler": res.compiler,
            },
            result_digest=_result_digest(res),
            experiments=1,
            workers=1,
            wall_s=res.phase_times.get(
                "total", sum(res.phase_times.values())
            ),
            phase_times=res.phase_times,
            cached_phase_times=res.cached_phase_times,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import bench_record
    from repro.serve.session import Session, SessionConfig
    from repro.workloads import by_suite

    workloads = list(args.workloads)
    for suite in args.suite or []:
        workloads.extend(wl.name for wl in by_suite(suite))
    pairs = None
    if args.pairs:
        pairs = []
        for spec in args.pairs:
            machine, _, compiler = spec.partition("/")
            if not compiler:
                raise ValueError(
                    f"bad pair {spec!r}; expected MACHINE/COMPILER"
                )
            pairs.append((machine, compiler))

    session = Session(
        SessionConfig(use_cache=not args.no_cache, workers=args.workers)
    )
    journal_path = args.resume or args.journal
    with _Observed(args):
        sweep = session.sweep_result(
            {"workloads": workloads, "pairs": pairs},
            task_timeout_s=args.timeout,
            journal_path=journal_path,
            resume=bool(args.resume),
        )

    wrote_stdout = False
    exports = (
        (args.csv, sweep.to_csv().rstrip("\n") + "\n"),
        (args.json, sweep.to_json() + "\n"),
    )
    for path, payload in exports:
        if not path:
            continue
        if path == "-":
            sys.stdout.write(payload)
            wrote_stdout = True
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
    if not wrote_stdout and not (args.csv or args.json):
        matrix = sweep.speedup_matrix()
        columns = sorted({key for row in matrix.values() for key in row})
        print("workload".ljust(14) + "".join(c.rjust(18) for c in columns))
        for workload, row in matrix.items():
            cells = "".join(
                (f"{row[c]:.3f}x" if c in row else "-").rjust(18)
                for c in columns
            )
            print(workload.ljust(14) + cells)

    stats = sweep.stats
    if stats is not None:
        extras = ""
        if stats.journal_hits:
            extras += f", journal: {stats.journal_hits} replay(s)"
        if stats.retries:
            extras += f", {stats.retries} retry(ies)"
        print(
            f"# {stats.experiments} experiments in {stats.wall_s:.2f} s "
            f"({stats.workers} worker(s), cache: {stats.cache_hits} hit(s) / "
            f"{stats.cache_misses} miss(es){extras})",
            file=sys.stderr,
        )
        if args.profile:
            _print_phases(stats.phase_totals, file=sys.stderr)
            _print_tier_rates(stats, file=sys.stderr)
            print(
                f"worker utilization: {stats.utilization:.1%} "
                f"(busy {stats.phase_totals.get('total', 0.0):.3f} s over "
                f"{stats.workers} worker(s) × {stats.wall_s:.3f} s wall)",
                file=sys.stderr,
            )
    if args.bench_json:
        label = "sweep:" + (
            ",".join(workloads) if workloads else "all_workloads"
        )
        with open(args.bench_json, "w", encoding="utf-8") as handle:
            json.dump(bench_record(sweep, label=label), handle, indent=2)
            handle.write("\n")

    if stats is not None:
        from repro.obs import entry_from_stats, profile_results
        from repro.serve.session import sweep_digest

        try:
            folded = profile_results(sweep.results)
        except Exception:
            folded = {}
        # Raw-bytes sha256 of to_json(): byte-comparable with the
        # frozen result_digest_sha256 pinned in BENCH_sweep.json (and
        # with the digest the serve layer reports for the same sweep).
        digest = sweep_digest(sweep)
        _ledger_append(
            entry_from_stats(
                "sweep",
                "sweep:" + (",".join(workloads) if workloads else "all"),
                stats.to_dict(),
                config={
                    "workloads": list(workloads) or "all",
                    "pairs": (
                        [f"{m}/{c}" for m, c in pairs] if pairs else "default"
                    ),
                },
                result_digest=digest,
                latency=folded.get("latency"),
            )
        )
    if sweep.failures:
        print(f"# {len(sweep.failures)} experiment(s) FAILED:",
              file=sys.stderr)
        for fr in sweep.failures:
            print(
                f"#   {fr.task}: {fr.kind} in {fr.phase}: {fr.message} "
                f"({fr.attempts} attempt(s)"
                + (", quarantined)" if fr.quarantined else ")"),
                file=sys.stderr,
            )
        if journal_path:
            print(
                f"# completed results are journaled in {journal_path}; "
                "re-run with --resume to retry only the failures",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced workload comparison: the introspection entry point."""
    from repro.obs import (
        format_metrics,
        render_trace,
        write_chrome_trace,
        write_json_trace,
    )
    from repro.serve.session import Session

    # Deliberately bypasses the engine cache: a trace of a cache lookup
    # would show none of the decisions the user is here to see.
    res, trace, metrics = Session().trace_result(
        args.workload, args.machine, args.compiler,
        verify=not args.no_verify,
    )
    if args.trace_out:
        write_json_trace(trace, args.trace_out)
    if args.chrome_out:
        write_chrome_trace(trace, args.chrome_out)

    from repro.obs import make_entry

    _ledger_append(
        make_entry(
            "trace",
            f"{res.workload}@{res.machine}/{res.compiler}",
            config={
                "workload": res.workload,
                "machine": res.machine,
                "compiler": res.compiler,
                "verify": not args.no_verify,
            },
            result_digest=_result_digest(res),
            experiments=1,
            workers=1,
            wall_s=res.phase_times.get(
                "total", sum(res.phase_times.values())
            ),
            phase_times=res.phase_times,
            cached_phase_times=res.cached_phase_times,
        )
    )
    if args.json:
        from repro.serve.session import trace_payload

        print(json.dumps(trace_payload(res, trace, metrics), indent=1))
        return 0
    print(f"== trace: {res.workload} on {res.machine}/{res.compiler} ==")
    print(render_trace(trace))
    print()
    status = (
        f"applied, II={res.ii}"
        if res.slms_applied
        else f"declined ({res.slms_reason})"
    )
    print(f"SLMS:    {status}")
    print(f"cycles:  {res.base_cycles} -> {res.slms_cycles} "
          f"(speedup {res.speedup:.3f}x)")
    if args.trace_out:
        print(f"trace:   {args.trace_out}")
    if args.chrome_out:
        print(f"chrome:  {args.chrome_out} (open in chrome://tracing)")
    if args.metrics:
        print()
        print(format_metrics(metrics))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.oracle import OracleConfig
    from repro.fuzz.session import (
        FuzzSessionConfig,
        run_fuzz_session,
        save_failures,
    )

    oracle = OracleConfig(
        machine=args.machine,
        compiler=args.compiler,
        backend=not args.no_backend,
        metamorphic=not args.no_metamorphic,
        scheduler_oracle=args.oracle_scheduler,
    )
    config = FuzzSessionConfig(
        master_seed=args.seed,
        iterations=args.iterations,
        profile=args.profile,
        workers=args.workers,
        oracle=oracle,
        reduce_failures=not args.no_reduce,
    )
    import time as _time

    t_start = _time.perf_counter()
    with _Observed(args):
        report = run_fuzz_session(
            config,
            journal_path=args.resume or args.journal,
            resume=bool(args.resume),
        )
    fuzz_wall = _time.perf_counter() - t_start

    import hashlib

    from repro.obs import make_entry

    _ledger_append(
        make_entry(
            "fuzz",
            f"fuzz:seed={config.master_seed},n={config.iterations}",
            config={
                "master_seed": config.master_seed,
                "iterations": config.iterations,
                "profile": config.profile,
                "oracle": config.oracle.to_dict(),
            },
            # The report is byte-deterministic, so its sha256 is the
            # session's result digest (any drift is a real change).
            result_digest=hashlib.sha256(
                report.to_json().encode("utf-8")
            ).hexdigest(),
            experiments=config.iterations,
            workers=config.workers or 1,
            wall_s=fuzz_wall,
            faults={"failures": len(report.failures)},
        )
    )

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"# report written to {args.json}", file=sys.stderr)

    print(f"fuzz: {report.summary_line()}")
    if report.decline_reasons:
        print("decline reasons:")
        for reason, count in sorted(
            report.decline_reasons.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {count:6d}  {reason}")
    if report.failures:
        print(f"FAILURES ({len(report.failures)}):")
        for failure in report.failures:
            print(
                f"  [{failure.failure_class}] seed {failure.seed} "
                f"profile {failure.profile}: {failure.detail[:120]}"
            )
        if args.save_failures:
            written = save_failures(report, args.save_failures)
            print(f"wrote {len(written)} failing case(s) to "
                  f"{args.save_failures}")
        return 1
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    """Scheduler-backend tools (docs/SCHEDULERS.md)."""
    from repro.core.schedulers.compare import (
        compare_schedulers,
        render_compare,
    )

    report = compare_schedulers(
        workloads=args.workloads or None,
        machine=args.machine,
        budget=args.budget,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"# report written to {args.json}", file=sys.stderr)
    print(render_compare(report))
    return 0 if report.clean else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness.expcache import ExperimentCache, PhaseCache

    cache = ExperimentCache(args.dir)
    phases = PhaseCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        lifetime = stats["lifetime"]
        print(f"cache dir: {stats['dir']}")
        print(f"entries:   {stats['entries']}")
        print(f"size:      {stats['bytes']} bytes")
        if stats["corrupt"]:
            print(f"corrupt:   {stats['corrupt']} quarantined entr(ies)")
        print(
            "lifetime:  "
            f"{lifetime['hits']} hit(s), {lifetime['misses']} miss(es), "
            f"{lifetime['evictions']} eviction(s)"
        )
        pstats = phases.stats()
        print("phase tiers:")
        for tier in PhaseCache.TIERS:
            rec = pstats["tiers"][tier]
            life = rec["lifetime"]
            total = life["hits"] + life["misses"]
            rate = f"{life['hits'] / total:6.1%}" if total else "     -"
            line = (
                f"  {tier:<10} {rec['entries']:5d} entr(ies) "
                f"{rec['bytes']:>10d} bytes  "
                f"lifetime {life['hits']} hit(s) / {life['misses']} "
                f"miss(es) [{rate.strip()}]"
            )
            if rec["corrupt"]:
                line += f"  {rec['corrupt']} corrupt"
            print(line)
    else:  # clear
        tiers = (
            [t.strip() for t in args.tiers.split(",") if t.strip()]
            if args.tiers
            else None
        )
        if tiers is not None:
            bad = [
                t for t in tiers if t != "full" and t not in PhaseCache.TIERS
            ]
            if bad:
                valid = ", ".join(("full",) + PhaseCache.TIERS)
                raise ValueError(
                    f"unknown tier(s) {', '.join(bad)}; valid: {valid}"
                )
        if tiers is None or "full" in tiers:
            removed = cache.clear()
            print(f"removed {removed} cached result(s) from {cache.dir}")
        phase_tiers = (
            [t for t in tiers if t != "full"] if tiers is not None else None
        )
        if phase_tiers is None or phase_tiers:
            removed = phases.clear(phase_tiers)
            cleared = ", ".join(phase_tiers or PhaseCache.TIERS)
            print(f"removed {removed} phase entr(ies) [{cleared}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Dashboard over the run ledger: terminal view and/or HTML file."""
    from repro.obs import (
        RunLedger,
        build_report,
        fold_trace,
        render_report_html,
        render_report_text,
        summarize_journal,
    )

    ledger = RunLedger(args.ledger_dir)
    entries = ledger.entries(kind=args.kind, limit=args.limit)
    profile = None
    if args.trace_in:
        with open(args.trace_in, "r", encoding="utf-8") as handle:
            profile = fold_trace(json.load(handle)).to_dict()
    journal = summarize_journal(args.journal) if args.journal else None
    report = build_report(entries, profile=profile, journal=journal)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_report_html(report) + "\n")
        print(f"# report written to {args.html}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1)
            handle.write("\n")
        print(f"# report JSON written to {args.json_out}", file=sys.stderr)
    if not args.html or args.text:
        print(render_report_text(report))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Ledger maintenance and the regression sentinel."""
    from repro.obs import (
        RunLedger,
        diff_against_bench,
        diff_entries,
        diff_payload,
        has_failures,
        render_diff,
        render_entries,
    )

    ledger = RunLedger(args.ledger_dir)

    if args.action == "ledger":
        entries = ledger.entries(kind=args.kind, limit=args.limit)
        if args.verify:
            problems = ledger.verify()
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            if problems:
                return 1
            print(f"# {len(entries)} entr(ies), all content addresses ok",
                  file=sys.stderr)
        if not entries:
            print(f"# ledger at {ledger.path} is empty", file=sys.stderr)
            return 0
        print(render_entries(entries))
        return 0

    if args.action == "diff":
        kind = args.kind or "sweep"
        new = ledger.resolve(args.new, kind=kind)
        if args.bench:
            with open(args.bench, "r", encoding="utf-8") as handle:
                bench = json.load(handle)
            findings = diff_against_bench(
                new, bench,
                wall_tol=args.wall_tol, phase_tol=args.phase_tol,
            )
            old_label = args.bench
            old = {"id": bench.get("result_digest_sha256", "")}
        else:
            old = ledger.resolve(args.old, kind=kind)
            findings = diff_entries(
                old, new,
                wall_tol=args.wall_tol,
                phase_tol=args.phase_tol,
                allow_config_drift=args.allow_config_drift,
            )
            old_label = f"{args.old} ({str(old.get('id', ''))[:12]})"
        if args.json:
            print(json.dumps(diff_payload(findings, old, new), indent=2))
        else:
            print(
                render_diff(
                    findings,
                    old_label=old_label,
                    new_label=f"{args.new} ({str(new.get('id', ''))[:12]})",
                )
            )
        return 1 if has_failures(findings) else 0

    # bench-export: a BENCH_sweep.json history entry from the ledger,
    # so future PRs stop hand-writing phase totals.
    entry = ledger.resolve(args.ref, kind="sweep")
    tiers = entry.get("tiers") or {}
    record = {
        "pr": args.pr,
        "label": args.label or entry.get("label", ""),
        "engine_version": (entry.get("env") or {}).get("engine_version", ""),
        "experiments": entry.get("experiments", 0),
        "cache_hits": (entry.get("cache") or {}).get("hits", 0),
        "cache_misses": (entry.get("cache") or {}).get("misses", 0),
        "cache_hit_rate": (entry.get("cache") or {}).get("hit_rate", 0.0),
        "workers": entry.get("workers", 1),
        "wall_s": round(float(entry.get("wall_s", 0.0)), 3),
        "phase_totals_s": {
            phase: round(float(seconds), 3)
            for phase, seconds in (entry.get("phase_times") or {}).items()
        },
        "phase_cache_hit_rates": {
            tier: rec.get("hit_rate", 0.0) for tier, rec in tiers.items()
        },
    }
    if args.pr is None:
        record.pop("pr")
    payload = json.dumps(record, indent=1)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"# bench entry written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived compilation service (docs/SERVING.md)."""
    from repro.harness.faults import FaultPlan
    from repro.serve.server import ServeConfig, serve_forever
    from repro.serve.session import SessionConfig

    session = SessionConfig(
        machine=args.machine,
        compiler=args.compiler,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        verify=not args.no_verify,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout if args.timeout and args.timeout > 0 else None,
        crash_strikes=args.crash_strikes,
        isolation=not args.no_isolation,
        fault_plan=FaultPlan.from_env(),
        session=session,
        enable_sleep=args.enable_sleep,
        trace_out=args.trace_out,
    )
    return serve_forever(config)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Concurrent-client load harness over in-process servers."""
    from repro.serve.loadgen import run_serve_bench

    record = run_serve_bench(
        out_path=args.out,
        clients=args.clients,
        per_client=args.requests,
        chaos=not args.no_chaos,
        full=args.full,
        sweep_workers=args.sweep_workers,
        cache_dir=args.cache_dir,
    )

    from repro.obs import make_entry

    _ledger_append(
        make_entry(
            "serve",
            record["label"],
            config={
                "clients": args.clients,
                "requests_per_client": args.requests,
                "chaos": not args.no_chaos,
                "full": args.full,
            },
            result_digest=(
                record.get("digest_phase", {}).get("result_digest_sha256")
            ),
            experiments=record["latency_phase"]["requests"],
            wall_s=record["latency_phase"]["wall_s"],
            latency=record["latency"],
            faults={
                "shed": record["shed_count"],
                "chaos_failed": record.get("chaos_phase", {}).get(
                    "failed", 0
                ),
            },
            extra={"throughput_rps": record["throughput_rps"],
                   "coalesce_rate": record["coalesce_rate"]},
        )
    )
    print(
        f"serve-bench: {record['latency_phase']['requests']} requests, "
        f"p50={record['latency']['p50']:.3f}s "
        f"p99={record['latency']['p99']:.3f}s "
        f"{record['throughput_rps']:.1f} req/s, "
        f"coalesce_rate={record['coalesce_rate']:.2f}, "
        f"shed={record['shed_count']}"
    )
    if args.expect_digest:
        got = record.get("digest_phase", {}).get("result_digest_sha256")
        if got != args.expect_digest:
            print(
                f"error: served sweep digest {got} != expected "
                f"{args.expect_digest}",
                file=sys.stderr,
            )
            return 1
        print(f"# served sweep digest matches {got[:16]}…")
    return 0


class _Terminated(BaseException):
    """SIGTERM, surfaced as an exception for the exit-code boundary.

    A ``BaseException`` (like ``KeyboardInterrupt``) so no library
    ``except Exception`` handler can swallow a termination request.
    """


def _install_sigterm() -> None:
    import signal

    def raise_terminated(signum, frame):
        raise _Terminated()

    try:
        signal.signal(signal.SIGTERM, raise_terminated)
    except ValueError:  # pragma: no cover - not the main thread
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="slms",
        description="Source Level Modulo Scheduling "
        "(Ben-Asher & Meisler, ICPP 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser("transform", help="SLMS a source file")
    p_transform.add_argument("file")
    p_transform.add_argument("--paper", action="store_true",
                             help="print kernels in the paper's || notation")
    p_transform.add_argument("--force", action="store_true",
                             help="bypass the §4 bad-case filter")
    p_transform.add_argument("--no-filter", action="store_true")
    p_transform.add_argument(
        "--expansion", choices=["auto", "mve", "scalar", "none"],
        default="auto",
    )
    p_transform.add_argument(
        "--reduction-lanes", type=int, default=0, metavar="N",
        help="split min/max reductions into N lanes (§5's max-loop MVE)",
    )
    p_transform.add_argument(
        "--allow-reassociation", action="store_true",
        help="permit lane-splitting sum/product reductions "
        "(reassociates floating point)",
    )
    p_transform.add_argument(
        "--scheduler", default="heuristic", metavar="NAME",
        help="scheduling backend: heuristic (paper, default) or exact "
        "(branch-and-bound; see docs/SCHEDULERS.md)",
    )
    p_transform.add_argument(
        "--sched-budget", type=int, default=50_000, metavar="N",
        help="exact-backend placement-attempt budget (default 50000)",
    )
    p_transform.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine preset for the informational resMII floor "
        "(default: omit)",
    )
    p_transform.add_argument("--report", action="store_true",
                             help="print per-loop reports to stderr")
    p_transform.set_defaults(func=_cmd_transform)

    p_explain = sub.add_parser(
        "explain", help="per-loop SLC diagnostics for a source file"
    )
    p_explain.add_argument("file")
    p_explain.add_argument("--force", action="store_true")
    p_explain.add_argument("--no-filter", action="store_true")
    p_explain.add_argument("--reduction-lanes", type=int, default=0)
    p_explain.add_argument("--allow-reassociation", action="store_true")
    p_explain.add_argument("--dot", action="store_true",
                           help="also print the dependence graph as DOT")
    p_explain.add_argument("--check", action="store_true",
                           help="run the semantic checker before the "
                           "per-loop verdicts")
    p_explain.set_defaults(func=_cmd_explain)

    p_check = sub.add_parser(
        "check", help="static verification: semantic checker + "
        "independent schedule validation"
    )
    p_check.add_argument("file")
    p_check.add_argument("--json", action="store_true",
                         help="emit diagnostics as JSON")
    p_check.add_argument("--Werror", dest="werror", action="store_true",
                         help="treat warnings as errors")
    p_check.add_argument("--no-filter", action="store_true",
                         help="attempt SLMS even on filtered-out loops")
    p_check.set_defaults(func=_cmd_check)

    p_lint = sub.add_parser(
        "lint", help="dataflow lint: subscript-bounds proofs, dead "
        "stores, use-before-init, register pressure"
    )
    p_lint.add_argument("file")
    p_lint.add_argument("--machine", default="itanium2",
                        help="machine model for the register-pressure "
                        "check ('none' to skip it)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON "
                        "(schema slms-diag/1)")
    p_lint.add_argument("--Werror", dest="werror", action="store_true",
                        help="treat warnings as errors")
    p_lint.add_argument("--notes", action="store_true",
                        help="also print note-severity findings")
    _add_obs_flags(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_advise = sub.add_parser(
        "advise", help="static SLMS applicability: predicted verdict, "
        "recMII floor, and suggestions (no scheduling)"
    )
    p_advise.add_argument("file")
    p_advise.add_argument("--force", action="store_true",
                          help="predict with the §4 filter bypassed")
    p_advise.add_argument("--no-filter", action="store_true")
    p_advise.add_argument("--json", action="store_true",
                          help="emit the per-loop predictions as JSON")
    p_advise.add_argument(
        "--scheduler", default="heuristic", metavar="NAME",
        help="predict with this scheduling backend "
        "(heuristic or exact; docs/SCHEDULERS.md)",
    )
    p_advise.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine preset for the informational resMII floor",
    )
    _add_obs_flags(p_advise)
    p_advise.set_defaults(func=_cmd_advise)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("name")
    p_figure.add_argument("--quick", action="store_true")
    p_figure.add_argument("--workers", type=int, default=None, metavar="N",
                          help="experiment processes (default: one per CPU)")
    p_figure.add_argument("--no-cache", action="store_true",
                          help="bypass the experiment result cache")
    _add_obs_flags(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_bench = sub.add_parser("bench", help="run one workload comparison")
    p_bench.add_argument("workload")
    p_bench.add_argument("--machine", default="itanium2")
    p_bench.add_argument("--compiler", default="gcc_O3")
    p_bench.add_argument("--profile", action="store_true",
                         help="print per-phase wall-clock times")
    _add_obs_flags(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_sweep = sub.add_parser(
        "sweep", help="workloads × machine/compiler matrix"
    )
    p_sweep.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                         help="workload names (default: the whole corpus)")
    p_sweep.add_argument("--suite", action="append", metavar="SUITE",
                         help="add every workload of a suite "
                         "(livermore/linpack/nas/stone; repeatable)")
    p_sweep.add_argument("--pairs", nargs="+", metavar="MACHINE/COMPILER",
                         help="machine/compiler pairs "
                         "(default: the paper's five)")
    p_sweep.add_argument("--csv", metavar="PATH",
                         help="write the matrix as CSV ('-' for stdout)")
    p_sweep.add_argument("--json", metavar="PATH",
                         help="write the matrix as JSON ('-' for stdout)")
    p_sweep.add_argument("--workers", type=int, default=None, metavar="N",
                         help="experiment processes (default: one per CPU; "
                         "1 = serial)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the experiment result cache")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         metavar="SECS",
                         help="per-experiment wall-clock limit (a stuck "
                         "task fails instead of stalling the sweep)")
    ckpt = p_sweep.add_mutually_exclusive_group()
    ckpt.add_argument("--journal", metavar="PATH",
                      help="checkpoint completed experiments to PATH "
                      "(starts fresh, overwriting any previous journal)")
    ckpt.add_argument("--resume", metavar="PATH",
                      help="resume from the journal at PATH: replay its "
                      "completed results, re-run everything else")
    p_sweep.add_argument("--profile", action="store_true",
                         help="print per-phase wall-clock totals")
    p_sweep.add_argument("--bench-json", nargs="?", const="BENCH_sweep.json",
                         metavar="PATH",
                         help="write the machine-readable perf record "
                         "(default path: BENCH_sweep.json)")
    _add_obs_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_trace = sub.add_parser(
        "trace", help="traced single-workload run with the decision log"
    )
    p_trace.add_argument("workload")
    p_trace.add_argument("--machine", default="itanium2")
    p_trace.add_argument("--compiler", default="gcc_O3")
    p_trace.add_argument("--no-verify", action="store_true",
                         help="skip the interpreter oracle (faster)")
    p_trace.add_argument("--trace-out", metavar="PATH",
                         help="write the JSON trace")
    p_trace.add_argument("--chrome-out", metavar="PATH",
                         help="write a Chrome trace_event file for "
                         "chrome://tracing")
    p_trace.add_argument("--metrics", action="store_true",
                         help="also print the metrics registry dump")
    p_trace.add_argument("--json", action="store_true",
                         help="emit result + trace + metrics as one "
                         "JSON object")
    p_trace.set_defaults(func=_cmd_trace)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random loops vs. the SLMS oracle",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="master seed for the case schedule")
    p_fuzz.add_argument("--iterations", type=int, default=100,
                        help="number of cases to generate and judge")
    p_fuzz.add_argument("--profile", default="all",
                        help="generator profile name, or 'all' to rotate")
    p_fuzz.add_argument("--workers", type=int, default=1,
                        help="parallel case evaluation (report is "
                        "worker-count-invariant)")
    p_fuzz.add_argument("--machine", default="itanium2")
    p_fuzz.add_argument("--compiler", default="gcc_O3")
    p_fuzz.add_argument("--save-failures", metavar="DIR",
                        help="write failing cases (reduced when possible) "
                        "into DIR")
    p_fuzz.add_argument("--json", metavar="PATH",
                        help="write the deterministic session report")
    p_fuzz.add_argument("--no-backend", action="store_true",
                        help="skip the compile+execute differential layer")
    p_fuzz.add_argument("--no-metamorphic", action="store_true",
                        help="skip reversal/unroll metamorphic checks")
    p_fuzz.add_argument("--oracle-scheduler", action="store_true",
                        help="differential scheduler oracle: run the "
                        "exact backend alongside the heuristic and "
                        "flag any loop where it loses, disagrees, or "
                        "breaks validation (docs/SCHEDULERS.md)")
    p_fuzz.add_argument("--no-reduce", action="store_true",
                        help="keep failing cases unreduced")
    fckpt = p_fuzz.add_mutually_exclusive_group()
    fckpt.add_argument("--journal", metavar="PATH",
                       help="checkpoint completed cases to PATH "
                       "(starts fresh, overwriting any previous journal)")
    fckpt.add_argument("--resume", metavar="PATH",
                       help="resume from the journal at PATH: replay its "
                       "completed cases, re-run everything else")
    _add_obs_flags(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_sched = sub.add_parser(
        "sched", help="scheduler backends: differential heuristic-vs-"
        "exact comparison (docs/SCHEDULERS.md)"
    )
    sched_sub = p_sched.add_subparsers(dest="action", required=True)
    s_compare = sched_sub.add_parser(
        "compare", help="run both backends over corpus workloads and "
        "tabulate II gaps (exit 1 on any negative gap or "
        "verdict mismatch)"
    )
    s_compare.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                           help="workload names (default: all 47)")
    s_compare.add_argument("--machine", default="itanium2",
                           help="machine preset for the resMII floor "
                           "(default itanium2)")
    s_compare.add_argument("--budget", type=int, default=50_000,
                           metavar="N",
                           help="exact-backend placement-attempt budget "
                           "per loop (default 50000)")
    s_compare.add_argument("--json", metavar="PATH",
                           help="write the slms-sched/1 report to PATH")
    s_compare.set_defaults(func=_cmd_sched)

    p_serve = sub.add_parser(
        "serve", help="long-running compilation service "
        "(slms-serve/1; docs/SERVING.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="listen port (0 = ephemeral; the bound "
                         "URL is printed on startup)")
    p_serve.add_argument("--queue-limit", type=int, default=16,
                         metavar="N",
                         help="max distinct in-flight requests before "
                         "429 shedding (default 16)")
    p_serve.add_argument("--timeout", type=float, default=120.0,
                         metavar="SECS",
                         help="per-request wall-clock limit "
                         "(0 = unlimited; default 120)")
    p_serve.add_argument("--crash-strikes", type=int, default=2,
                         metavar="N",
                         help="worker crashes before a request key is "
                         "quarantined (default 2)")
    p_serve.add_argument("--no-isolation", action="store_true",
                         help="execute requests in-process (no real "
                         "hang/crash containment; faster)")
    p_serve.add_argument("--machine", default="itanium2",
                         help="session default machine")
    p_serve.add_argument("--compiler", default="gcc_O3",
                         help="session default compiler preset")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="bypass the experiment result cache")
    p_serve.add_argument("--cache-dir", default=None)
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the interpreter oracle on "
                         "experiment requests")
    p_serve.add_argument("--enable-sleep", action="store_true",
                         help="expose the deterministic sleep debug op "
                         "(load/chaos testing)")
    p_serve.add_argument("--trace-out", metavar="PATH",
                         help="write the per-request span trace on "
                         "shutdown")
    p_serve.set_defaults(func=_cmd_serve)

    p_sbench = sub.add_parser(
        "serve-bench", help="concurrent-client load harness for the "
        "serving layer (writes BENCH_serve.json)"
    )
    p_sbench.add_argument("--clients", type=int, default=8, metavar="N",
                          help="concurrent clients (default 8)")
    p_sbench.add_argument("--requests", type=int, default=3, metavar="M",
                          help="latency-phase requests per client "
                          "(default 3)")
    p_sbench.add_argument("--out", default="BENCH_serve.json",
                          metavar="PATH",
                          help="record path (default BENCH_serve.json)")
    p_sbench.add_argument("--no-chaos", action="store_true",
                          help="skip the injected crash+hang phase")
    p_sbench.add_argument("--full", action="store_true",
                          help="also run the whole-corpus sweep through "
                          "the service and record its result digest")
    p_sbench.add_argument("--sweep-workers", type=int, default=None,
                          metavar="N",
                          help="engine workers for the --full sweep")
    p_sbench.add_argument("--cache-dir", default=None,
                          help="experiment cache directory for the "
                          "benchmark servers")
    p_sbench.add_argument("--expect-digest", metavar="SHA256",
                          help="fail unless the --full sweep digest "
                          "matches (the frozen baseline check)")
    p_sbench.set_defaults(func=_cmd_serve_bench)

    p_cache = sub.add_parser(
        "cache", help="experiment result cache maintenance"
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--dir", default=None,
                         help="cache directory (default: "
                         "$SLMS_CACHE_DIR or ~/.cache/slms/experiments)")
    p_cache.add_argument("--tiers", default=None,
                         help="clear only these comma-separated tiers "
                         "(full,transform,compile,simulate,verify); "
                         "default clears everything")
    p_cache.set_defaults(func=_cmd_cache)

    p_report = sub.add_parser(
        "report", help="dashboard over the run ledger (terminal + HTML)"
    )
    p_report.add_argument("--html", metavar="PATH",
                          help="write a self-contained HTML dashboard")
    p_report.add_argument("--json-out", metavar="PATH",
                          help="write the slms-report/1 payload as JSON")
    p_report.add_argument("--text", action="store_true",
                          help="print the terminal view even when --html "
                          "is given")
    p_report.add_argument("--kind", choices=["sweep", "bench", "fuzz",
                                             "trace", "serve"],
                          default=None,
                          help="restrict to one run kind (default: all)")
    p_report.add_argument("--limit", type=int, default=None, metavar="N",
                          help="only the newest N ledger entries")
    p_report.add_argument("--trace-in", metavar="PATH",
                          help="fold an slms-trace/1 JSON file into a "
                          "profiler table")
    p_report.add_argument("--journal", metavar="PATH",
                          help="summarize an slms-journal/1 checkpoint file")
    p_report.add_argument("--ledger-dir", default=None,
                          help="ledger directory (default: $SLMS_LEDGER_DIR "
                          "or ~/.cache/slms/ledger)")
    p_report.set_defaults(func=_cmd_report)

    p_obs = sub.add_parser(
        "obs", help="run-ledger tools: listing, regression diff, "
        "BENCH export"
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)

    o_ledger = obs_sub.add_parser(
        "ledger", help="list recorded runs (newest last)"
    )
    o_ledger.add_argument("--kind", choices=["sweep", "bench", "fuzz",
                                             "trace", "serve"],
                          default=None)
    o_ledger.add_argument("--limit", type=int, default=None, metavar="N")
    o_ledger.add_argument("--verify", action="store_true",
                          help="re-derive every entry's content address")
    o_ledger.add_argument("--ledger-dir", default=None)
    o_ledger.set_defaults(func=_cmd_obs)

    o_diff = obs_sub.add_parser(
        "diff", help="regression sentinel: compare two ledger entries "
        "(exit 1 on regression)"
    )
    o_diff.add_argument("old", nargs="?", default="HEAD~1",
                        help="baseline entry: HEAD, HEAD~N or an id prefix "
                        "(default HEAD~1)")
    o_diff.add_argument("new", nargs="?", default="HEAD",
                        help="candidate entry (default HEAD)")
    o_diff.add_argument("--bench", metavar="PATH",
                        help="compare NEW against a BENCH_sweep.json "
                        "trajectory instead of another entry")
    o_diff.add_argument("--kind", choices=["sweep", "bench", "fuzz",
                                           "trace", "serve"],
                        default=None,
                        help="entry kind to resolve refs against "
                        "(default sweep)")
    o_diff.add_argument("--wall-tol", type=float, default=1.0,
                        metavar="FRAC",
                        help="allowed relative wall-clock growth "
                        "(default 1.0 = 2x)")
    o_diff.add_argument("--phase-tol", type=float, default=1.0,
                        metavar="FRAC",
                        help="allowed relative per-phase growth "
                        "(default 1.0 = 2x)")
    o_diff.add_argument("--allow-config-drift", action="store_true",
                        help="compare entries even when their config "
                        "digests differ")
    o_diff.add_argument("--json", action="store_true",
                        help="emit the slms-diff/1 payload")
    o_diff.add_argument("--ledger-dir", default=None)
    o_diff.set_defaults(func=_cmd_obs)

    o_export = obs_sub.add_parser(
        "bench-export", help="emit a BENCH_sweep.json history entry from "
        "a sweep ledger record"
    )
    o_export.add_argument("--ref", default="HEAD",
                          help="sweep entry to export (default HEAD)")
    o_export.add_argument("--pr", type=int, default=None,
                          help="PR number for the history entry")
    o_export.add_argument("--label", default=None,
                          help="override the entry's label")
    o_export.add_argument("--out", metavar="PATH",
                          help="write to PATH instead of stdout")
    o_export.add_argument("--ledger-dir", default=None)
    o_export.set_defaults(func=_cmd_obs)

    args = parser.parse_args(argv)
    from repro.lang.errors import FrontendError

    # SIGTERM gets the same graceful treatment as Ctrl-C (exit 143 and
    # a resume hint instead of a raw traceback); ``slms serve``
    # installs its own draining handler on top of this one.
    _install_sigterm()

    # Top-level exception boundary: no subcommand ever dumps a raw
    # traceback, and exit codes are uniform — 0 ok, 1 failures/internal
    # error, 2 usage or input error (argparse's own convention), 130
    # interrupted, 143 terminated.  SLMS_DEBUG=1 re-raises for
    # debugging.
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print(
            "\ninterrupted; partial results may have been checkpointed "
            "(re-run with --resume to continue)",
            file=sys.stderr,
        )
        return 130
    except _Terminated:
        print(
            "\nterminated (SIGTERM); partial results may have been "
            "checkpointed (re-run with --resume to continue)",
            file=sys.stderr,
        )
        return 143
    except FrontendError as exc:
        path = getattr(args, "file", None)
        print(exc.format(path), file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        if os.environ.get("SLMS_DEBUG"):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        if os.environ.get("SLMS_DEBUG"):
            raise
        print(
            f"internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        print("(set SLMS_DEBUG=1 to see the full traceback)",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
