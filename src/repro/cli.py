"""Command-line interface: ``slms``.

Subcommands
-----------

``slms transform FILE``
    Apply SLMS to a C-subset source file and print the transformed
    program (``--paper`` for the paper's ``||`` notation, ``--force``
    to bypass the §4 filter, ``--expansion`` to pick MVE / scalar
    expansion).

``slms figure NAME``
    Regenerate one of the paper's figures (``fig14`` … ``fig22``,
    ``text_bundles``, or ``all``); ``--quick`` trims the workload list.

``slms bench WORKLOAD``
    Run a single workload comparison on a machine/compiler pair.

``slms explain FILE``
    Per-loop SLC diagnostics: filter verdict, multi-instructions,
    dependence edges, II search outcome and the Fig. 1 table view
    (``--dot`` additionally prints the dependence graph in DOT).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro import SLMSOptions, slms, to_source

    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    options = SLMSOptions(
        enable_filter=not args.no_filter,
        force=args.force,
        expansion=args.expansion,
        reduction_lanes=args.reduction_lanes,
        allow_reassociation=args.allow_reassociation,
    )
    outcome = slms(source, options)
    style = "paper" if args.paper else "c"
    print(to_source(outcome.program, style=style))
    if args.report:
        print("/*", file=sys.stderr)
        for idx, report in enumerate(outcome.loops):
            status = (
                f"applied II={report.ii} stages={report.stages} "
                f"expansion={report.expansion}"
                if report.applied
                else f"declined: {report.reason}"
            )
            print(f" loop {idx}: {status}", file=sys.stderr)
        print("*/", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro import SLMSOptions, slms
    from repro.core.explain import ddg_to_dot, explain
    from repro.lang.ast_nodes import For, While
    from repro.lang.parser import parse_program
    from repro.lang.visitors import walk

    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse_program(source)
    options = SLMSOptions(
        enable_filter=not args.no_filter,
        force=args.force,
        reduction_lanes=args.reduction_lanes,
        allow_reassociation=args.allow_reassociation,
    )
    outcome = slms(program, options)

    # Pair reports with the attempted loops, in traversal order.
    def innermost_loops(node):
        for child in walk(node):
            if isinstance(child, For) and not any(
                isinstance(g, (For, While)) for s in child.body for g in walk(s)
            ):
                yield child

    loops = list(innermost_loops(program))
    for idx, (loop, report) in enumerate(zip(loops, outcome.loops)):
        if idx:
            print()
        print(f"===== loop {idx} =====")
        print(explain(loop, report))
        if args.dot and report.ddg is not None:
            print()
            print(ddg_to_dot(report.ddg, report.final_mis or None))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness.figures import FIGURES, run_figure
    from repro.harness.report import render_figure

    names = sorted(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        print(render_figure(run_figure(name, quick=args.quick)))
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.experiment import run_experiment
    from repro.workloads import get_workload

    res = run_experiment(
        get_workload(args.workload), args.machine, args.compiler
    )
    print(f"workload:  {res.workload} ({res.suite})")
    print(f"machine:   {res.machine}   compiler: {res.compiler}")
    print(f"SLMS:      {'applied, II=' + str(res.ii) if res.slms_applied else 'declined (' + res.slms_reason + ')'}")
    print(f"cycles:    {res.base_cycles} -> {res.slms_cycles} "
          f"(speedup {res.speedup:.3f}x)")
    print(f"energy:    {res.base_energy / 1000:.1f} nJ -> "
          f"{res.slms_energy / 1000:.1f} nJ")
    print(f"machine MS: before={res.ims_base} after={res.ims_slms}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="slms",
        description="Source Level Modulo Scheduling "
        "(Ben-Asher & Meisler, ICPP 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser("transform", help="SLMS a source file")
    p_transform.add_argument("file")
    p_transform.add_argument("--paper", action="store_true",
                             help="print kernels in the paper's || notation")
    p_transform.add_argument("--force", action="store_true",
                             help="bypass the §4 bad-case filter")
    p_transform.add_argument("--no-filter", action="store_true")
    p_transform.add_argument(
        "--expansion", choices=["auto", "mve", "scalar", "none"],
        default="auto",
    )
    p_transform.add_argument(
        "--reduction-lanes", type=int, default=0, metavar="N",
        help="split min/max reductions into N lanes (§5's max-loop MVE)",
    )
    p_transform.add_argument(
        "--allow-reassociation", action="store_true",
        help="permit lane-splitting sum/product reductions "
        "(reassociates floating point)",
    )
    p_transform.add_argument("--report", action="store_true",
                             help="print per-loop reports to stderr")
    p_transform.set_defaults(func=_cmd_transform)

    p_explain = sub.add_parser(
        "explain", help="per-loop SLC diagnostics for a source file"
    )
    p_explain.add_argument("file")
    p_explain.add_argument("--force", action="store_true")
    p_explain.add_argument("--no-filter", action="store_true")
    p_explain.add_argument("--reduction-lanes", type=int, default=0)
    p_explain.add_argument("--allow-reassociation", action="store_true")
    p_explain.add_argument("--dot", action="store_true",
                           help="also print the dependence graph as DOT")
    p_explain.set_defaults(func=_cmd_explain)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("name")
    p_figure.add_argument("--quick", action="store_true")
    p_figure.set_defaults(func=_cmd_figure)

    p_bench = sub.add_parser("bench", help="run one workload comparison")
    p_bench.add_argument("workload")
    p_bench.add_argument("--machine", default="itanium2")
    p_bench.add_argument("--compiler", default="gcc_O3")
    p_bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
