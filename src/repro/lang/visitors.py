"""Traversal and rewriting utilities over the AST.

:class:`NodeVisitor` / :class:`NodeTransformer` follow the familiar
``ast``-module pattern.  On top of them the module provides the small
rewriters every SLMS pass needs:

* :func:`substitute_index` — replace a loop index ``i`` with ``i + k``
  (the core of kernel/prologue/epilogue generation), folding constants
  so ``A[i + 2 - 2]`` prints as ``A[i]``;
* :func:`rename_scalar` — variable renaming for MVE and multi-def
  scalar renaming;
* def/use sets and operation counting for the dependence analysis and
  the bad-case filter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.lang.ast_nodes import (
    ARITH_OPS,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Node,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children())


class NodeVisitor:
    """Dispatches ``visit_<ClassName>`` methods; default recurses."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)


class NodeTransformer:
    """Rebuilds the tree bottom-up; ``visit_<ClassName>`` may return a
    replacement node.  The input tree is never mutated."""

    def visit(self, node: Node) -> Node:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Node:
        if isinstance(node, (IntLit, FloatLit, Var)):
            return node.clone()
        if isinstance(node, ArrayRef):
            return ArrayRef(node.name, [self.visit(i) for i in node.indices], node.loc)
        if isinstance(node, BinOp):
            return BinOp(node.op, self.visit(node.left), self.visit(node.right), node.loc)
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, self.visit(node.operand), node.loc)
        if isinstance(node, Ternary):
            return Ternary(
                self.visit(node.cond), self.visit(node.then), self.visit(node.els), node.loc
            )
        if isinstance(node, Call):
            return Call(node.name, [self.visit(a) for a in node.args], node.loc)
        if isinstance(node, Decl):
            init = self.visit(node.init) if node.init is not None else None
            return Decl(node.type, node.name, node.dims, init, node.loc)
        if isinstance(node, Assign):
            return Assign(self.visit(node.target), self.visit(node.value), node.op, node.loc)
        if isinstance(node, ExprStmt):
            return ExprStmt(self.visit(node.expr), node.loc)
        if isinstance(node, If):
            return If(
                self.visit(node.cond),
                [self.visit(s) for s in node.then],
                [self.visit(s) for s in node.els],
                node.loc,
            )
        if isinstance(node, For):
            return For(
                self.visit(node.init) if node.init is not None else None,
                self.visit(node.cond) if node.cond is not None else None,
                self.visit(node.step) if node.step is not None else None,
                [self.visit(s) for s in node.body],
                node.loc,
            )
        if isinstance(node, While):
            return While(self.visit(node.cond), [self.visit(s) for s in node.body], node.loc)
        if isinstance(node, ParGroup):
            return ParGroup([self.visit(s) for s in node.stmts], node.loc)
        if isinstance(node, Program):
            return Program([self.visit(s) for s in node.body], node.loc)
        return node.clone()


# ---------------------------------------------------------------------------
# Collection helpers
# ---------------------------------------------------------------------------


def collect_vars(node: Node) -> Set[str]:
    """Names of every scalar variable mentioned anywhere in the subtree."""
    return {n.name for n in walk(node) if isinstance(n, Var)}


def collect_array_refs(node: Node) -> List[ArrayRef]:
    """Every array reference in the subtree, in traversal order."""
    return [n for n in walk(node) if isinstance(n, ArrayRef)]


def collect_calls(node: Node) -> List[Call]:
    """Every function call in the subtree."""
    return [n for n in walk(node) if isinstance(n, Call)]


def used_scalars(stmt: Stmt) -> Set[str]:
    """Scalar names *read* by a statement.

    For ``x = e`` the target is not a use; for ``x += e`` it is.  Scalars
    inside array subscripts count as uses.
    """
    if isinstance(stmt, Assign):
        used: Set[str] = set()
        used |= collect_vars(stmt.expanded_value())
        if isinstance(stmt.target, ArrayRef):
            for idx in stmt.target.indices:
                used |= collect_vars(idx)
        return used
    if isinstance(stmt, If):
        used = collect_vars(stmt.cond)
        for s in stmt.then:
            used |= used_scalars(s)
        for s in stmt.els:
            used |= used_scalars(s)
        return used
    if isinstance(stmt, ExprStmt):
        return collect_vars(stmt.expr)
    if isinstance(stmt, ParGroup):
        used = set()
        for s in stmt.stmts:
            used |= used_scalars(s)
        return used
    if isinstance(stmt, Decl):
        return collect_vars(stmt.init) if stmt.init is not None else set()
    # Loops and control statements: conservatively everything mentioned.
    return collect_vars(stmt)


def defined_scalars(stmt: Stmt) -> Set[str]:
    """Scalar names *written* by a statement."""
    if isinstance(stmt, Assign):
        return {stmt.target.name} if isinstance(stmt.target, Var) else set()
    if isinstance(stmt, If):
        defined: Set[str] = set()
        for s in stmt.then:
            defined |= defined_scalars(s)
        for s in stmt.els:
            defined |= defined_scalars(s)
        return defined
    if isinstance(stmt, ParGroup):
        defined = set()
        for s in stmt.stmts:
            defined |= defined_scalars(s)
        return defined
    if isinstance(stmt, Decl):
        return {stmt.name} if not stmt.dims else set()
    if isinstance(stmt, (For, While)):
        defined = set()
        for child in stmt.children():
            if isinstance(child, Stmt):
                defined |= defined_scalars(child)
        return defined
    return set()


# ---------------------------------------------------------------------------
# Rewriters
# ---------------------------------------------------------------------------


class _IndexSubstituter(NodeTransformer):
    def __init__(self, var: str, replacement: Expr):
        self.var = var
        self.replacement = replacement

    def visit_Var(self, node: Var) -> Expr:
        if node.name == self.var:
            return self.replacement.clone()
        return node.clone()


def _fold(expr: Expr) -> Expr:
    """Constant-fold integer +/-/* so shifted indices stay readable."""
    if isinstance(expr, BinOp):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            if expr.op == "+":
                return IntLit(left.value + right.value, expr.loc)
            if expr.op == "-":
                return IntLit(left.value - right.value, expr.loc)
            if expr.op == "*":
                return IntLit(left.value * right.value, expr.loc)
        # (v + a) + b  ->  v + (a+b)
        if (
            expr.op in ("+", "-")
            and isinstance(right, IntLit)
            and isinstance(left, BinOp)
            and left.op in ("+", "-")
            and isinstance(left.right, IntLit)
        ):
            a = left.right.value if left.op == "+" else -left.right.value
            b = right.value if expr.op == "+" else -right.value
            total = a + b
            if total == 0:
                return left.left
            if total > 0:
                return BinOp("+", left.left, IntLit(total), expr.loc)
            return BinOp("-", left.left, IntLit(-total), expr.loc)
        if expr.op in ("+", "-") and isinstance(right, IntLit) and right.value == 0:
            return left
        if expr.op == "+" and isinstance(left, IntLit) and left.value == 0:
            return right
        return BinOp(expr.op, left, right, expr.loc)
    if isinstance(expr, (Var, IntLit, FloatLit)):
        return expr
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, [_fold(i) for i in expr.indices], expr.loc)
    if isinstance(expr, UnaryOp):
        inner = _fold(expr.operand)
        if expr.op == "-" and isinstance(inner, IntLit):
            return IntLit(-inner.value, expr.loc)
        return UnaryOp(expr.op, inner, expr.loc)
    if isinstance(expr, Ternary):
        return Ternary(_fold(expr.cond), _fold(expr.then), _fold(expr.els), expr.loc)
    if isinstance(expr, Call):
        return Call(expr.name, [_fold(a) for a in expr.args], expr.loc)
    return expr


class _Folder(NodeTransformer):
    def visit(self, node: Node) -> Node:
        if isinstance(node, Expr):
            return _fold(node)
        return self.generic_visit(node)


def fold_constants(node: Node) -> Node:
    """Return a copy with integer constant arithmetic folded."""
    return _Folder().visit(node)


def substitute_index(node: Node, var: str, offset: int) -> Node:
    """Return a copy of ``node`` with loop index ``var`` shifted by ``offset``.

    ``substitute_index(A[i-1] = A[i+1], "i", 2)`` gives ``A[i+1] = A[i+3]``.
    Constants are folded after substitution so indices stay canonical.
    """
    if offset == 0:
        return fold_constants(node)
    replacement: Expr
    if offset > 0:
        replacement = BinOp("+", Var(var), IntLit(offset))
    else:
        replacement = BinOp("-", Var(var), IntLit(-offset))
    substituted = _IndexSubstituter(var, replacement).visit(node)
    return _Folder().visit(substituted)


def substitute_expr(node: Node, var: str, replacement: Expr) -> Node:
    """Return a copy with every ``Var(var)`` replaced by ``replacement``."""
    return _Folder().visit(_IndexSubstituter(var, replacement).visit(node))


class _ScalarRenamer(NodeTransformer):
    def __init__(self, mapping: Dict[str, str]):
        self.mapping = mapping

    def visit_Var(self, node: Var) -> Var:
        return Var(self.mapping.get(node.name, node.name), node.loc)


def rename_scalar(node: Node, old: str, new: str) -> Node:
    """Return a copy with scalar ``old`` renamed to ``new`` (arrays untouched)."""
    return _ScalarRenamer({old: new}).visit(node)


def rename_scalars(node: Node, mapping: Dict[str, str]) -> Node:
    """Rename several scalars at once."""
    return _ScalarRenamer(dict(mapping)).visit(node)


# ---------------------------------------------------------------------------
# Operation counting (used by the §4 bad-case filter and machine models)
# ---------------------------------------------------------------------------


def count_ops(node: Node) -> Dict[str, int]:
    """Count load/store/arithmetic operations in a subtree.

    Returns a dict with keys ``"load"``, ``"store"``, ``"arith"``,
    ``"mul"``, ``"div"``, ``"addr_arith"``, ``"call"``.  Array reads count
    as loads, array writes as stores.  Arithmetic *inside array
    subscripts* is address computation — the paper's §4 AO count excludes
    it (its swap-loop example has AO=1, the single ``*2``) — so it is
    reported separately as ``addr_arith``.
    """
    counts = {
        "load": 0,
        "store": 0,
        "arith": 0,
        "mul": 0,
        "div": 0,
        "addr_arith": 0,
        "call": 0,
    }

    def count_addr(expr: Expr) -> None:
        for n in walk(expr):
            if isinstance(n, BinOp) and n.op in ARITH_OPS:
                counts["addr_arith"] += 1

    def visit_expr(expr: Expr) -> None:
        # Manual stack walk so array subscripts route to count_addr.
        stack: List[Expr] = [expr]
        while stack:
            n = stack.pop()
            if isinstance(n, ArrayRef):
                counts["load"] += 1
                for idx in n.indices:
                    count_addr(idx)
                continue
            if isinstance(n, BinOp) and n.op in ARITH_OPS:
                counts["arith"] += 1
                if n.op == "*":
                    counts["mul"] += 1
                elif n.op in ("/", "%"):
                    counts["div"] += 1
            elif isinstance(n, Call):
                counts["call"] += 1
            stack.extend(c for c in n.children() if isinstance(c, Expr))

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.expanded_value())
            if isinstance(stmt.target, ArrayRef):
                counts["store"] += 1
                # Compound ops re-read the target: expanded_value() already
                # cloned it as a load, so only the store itself is added here.
                if stmt.op is None:
                    for idx in stmt.target.indices:
                        count_addr(idx)
        elif isinstance(stmt, If):
            visit_expr(stmt.cond)
            for s in stmt.then:
                visit_stmt(s)
            for s in stmt.els:
                visit_stmt(s)
        elif isinstance(stmt, ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, ParGroup):
            for s in stmt.stmts:
                visit_stmt(s)
        elif isinstance(stmt, (For, While)):
            if isinstance(stmt, While):
                visit_expr(stmt.cond)
            for s in stmt.body:
                visit_stmt(s)
        elif isinstance(stmt, Decl) and stmt.init is not None:
            visit_expr(stmt.init)

    if isinstance(node, Program):
        for s in node.body:
            visit_stmt(s)
    elif isinstance(node, Stmt):
        visit_stmt(node)
    else:
        visit_expr(node)  # type: ignore[arg-type]
    return counts
