"""Traversal and rewriting utilities over the AST.

:class:`NodeVisitor` / :class:`NodeTransformer` follow the familiar
``ast``-module pattern.  On top of them the module provides the small
rewriters every SLMS pass needs:

* :func:`substitute_index` — replace a loop index ``i`` with ``i + k``
  (the core of kernel/prologue/epilogue generation), folding constants
  so ``A[i + 2 - 2]`` prints as ``A[i]``;
* :func:`rename_scalar` — variable renaming for MVE and multi-def
  scalar renaming;
* def/use sets and operation counting for the dependence analysis and
  the bad-case filter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.lang.ast_nodes import (
    ARITH_OPS,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Node,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children())


class NodeVisitor:
    """Dispatches ``visit_<ClassName>`` methods; default recurses."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)


class NodeTransformer:
    """Rebuilds the tree bottom-up; ``visit_<ClassName>`` may return a
    replacement node.  The input tree is never mutated."""

    def visit(self, node: Node) -> Node:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Node:
        if isinstance(node, (IntLit, FloatLit, Var)):
            return node.clone()
        if isinstance(node, ArrayRef):
            return ArrayRef(node.name, [self.visit(i) for i in node.indices], node.loc)
        if isinstance(node, BinOp):
            return BinOp(node.op, self.visit(node.left), self.visit(node.right), node.loc)
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, self.visit(node.operand), node.loc)
        if isinstance(node, Ternary):
            return Ternary(
                self.visit(node.cond), self.visit(node.then), self.visit(node.els), node.loc
            )
        if isinstance(node, Call):
            return Call(node.name, [self.visit(a) for a in node.args], node.loc)
        if isinstance(node, Decl):
            init = self.visit(node.init) if node.init is not None else None
            return Decl(node.type, node.name, node.dims, init, node.loc)
        if isinstance(node, Assign):
            return Assign(self.visit(node.target), self.visit(node.value), node.op, node.loc)
        if isinstance(node, ExprStmt):
            return ExprStmt(self.visit(node.expr), node.loc)
        if isinstance(node, If):
            return If(
                self.visit(node.cond),
                [self.visit(s) for s in node.then],
                [self.visit(s) for s in node.els],
                node.loc,
            )
        if isinstance(node, For):
            return For(
                self.visit(node.init) if node.init is not None else None,
                self.visit(node.cond) if node.cond is not None else None,
                self.visit(node.step) if node.step is not None else None,
                [self.visit(s) for s in node.body],
                node.loc,
            )
        if isinstance(node, While):
            return While(self.visit(node.cond), [self.visit(s) for s in node.body], node.loc)
        if isinstance(node, ParGroup):
            return ParGroup([self.visit(s) for s in node.stmts], node.loc)
        if isinstance(node, Program):
            return Program([self.visit(s) for s in node.body], node.loc)
        return node.clone()


# ---------------------------------------------------------------------------
# Collection helpers
# ---------------------------------------------------------------------------


def collect_vars(node: Node) -> Set[str]:
    """Names of every scalar variable mentioned anywhere in the subtree."""
    return {n.name for n in walk(node) if isinstance(n, Var)}


def collect_array_refs(node: Node) -> List[ArrayRef]:
    """Every array reference in the subtree, in traversal order."""
    return [n for n in walk(node) if isinstance(n, ArrayRef)]


def collect_calls(node: Node) -> List[Call]:
    """Every function call in the subtree."""
    return [n for n in walk(node) if isinstance(n, Call)]


def used_scalars(stmt: Stmt) -> Set[str]:
    """Scalar names *read* by a statement.

    For ``x = e`` the target is not a use; for ``x += e`` it is.  Scalars
    inside array subscripts count as uses.
    """
    if isinstance(stmt, Assign):
        used: Set[str] = set()
        used |= collect_vars(stmt.expanded_value())
        if isinstance(stmt.target, ArrayRef):
            for idx in stmt.target.indices:
                used |= collect_vars(idx)
        return used
    if isinstance(stmt, If):
        used = collect_vars(stmt.cond)
        for s in stmt.then:
            used |= used_scalars(s)
        for s in stmt.els:
            used |= used_scalars(s)
        return used
    if isinstance(stmt, ExprStmt):
        return collect_vars(stmt.expr)
    if isinstance(stmt, ParGroup):
        used = set()
        for s in stmt.stmts:
            used |= used_scalars(s)
        return used
    if isinstance(stmt, Decl):
        return collect_vars(stmt.init) if stmt.init is not None else set()
    # Loops and control statements: conservatively everything mentioned.
    return collect_vars(stmt)


def defined_scalars(stmt: Stmt) -> Set[str]:
    """Scalar names *written* by a statement."""
    if isinstance(stmt, Assign):
        return {stmt.target.name} if isinstance(stmt.target, Var) else set()
    if isinstance(stmt, If):
        defined: Set[str] = set()
        for s in stmt.then:
            defined |= defined_scalars(s)
        for s in stmt.els:
            defined |= defined_scalars(s)
        return defined
    if isinstance(stmt, ParGroup):
        defined = set()
        for s in stmt.stmts:
            defined |= defined_scalars(s)
        return defined
    if isinstance(stmt, Decl):
        return {stmt.name} if not stmt.dims else set()
    if isinstance(stmt, (For, While)):
        defined = set()
        for child in stmt.children():
            if isinstance(child, Stmt):
                defined |= defined_scalars(child)
        return defined
    return set()


# ---------------------------------------------------------------------------
# Rewriters
# ---------------------------------------------------------------------------


class _IndexSubstituter(NodeTransformer):
    def __init__(self, var: str, replacement: Expr):
        self.var = var
        self.replacement = replacement

    def visit_Var(self, node: Var) -> Expr:
        if node.name == self.var:
            return self.replacement.clone()
        return node.clone()


def _fold_binop(
    op: str, left: Expr, right: Expr, loc, orig: Optional[BinOp] = None
) -> Expr:
    """Fold a binary node whose children are *already folded*.

    When ``orig`` is given and no rule fires on unchanged children, the
    original node is returned instead of an identical rebuild (see the
    ``reuse`` mode of the rewriters below).
    """
    if isinstance(left, IntLit) and isinstance(right, IntLit):
        if op == "+":
            return IntLit(left.value + right.value, loc)
        if op == "-":
            return IntLit(left.value - right.value, loc)
        if op == "*":
            return IntLit(left.value * right.value, loc)
    # (v + a) + b  ->  v + (a+b)
    if (
        op in ("+", "-")
        and isinstance(right, IntLit)
        and isinstance(left, BinOp)
        and left.op in ("+", "-")
        and isinstance(left.right, IntLit)
    ):
        a = left.right.value if left.op == "+" else -left.right.value
        b = right.value if op == "+" else -right.value
        total = a + b
        if total == 0:
            return left.left
        if total > 0:
            return BinOp("+", left.left, IntLit(total), loc)
        return BinOp("-", left.left, IntLit(-total), loc)
    if op in ("+", "-") and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "+" and isinstance(left, IntLit) and left.value == 0:
        return right
    if orig is not None and left is orig.left and right is orig.right:
        return orig
    return BinOp(op, left, right, loc)


def _fold(expr: Expr, reuse: bool = False) -> Expr:
    """Constant-fold integer +/-/* so shifted indices stay readable.

    With ``reuse`` the pass returns the *original* subtree object
    wherever nothing folded — the output then shares interior nodes
    (not just leaves) with the input.  Callers that treat both trees as
    read-only (the schedule validator) opt in to make repeated
    canonicalization of shared subtrees O(1); everyone else keeps the
    rebuild-always behaviour.
    """
    if isinstance(expr, BinOp):
        return _fold_binop(
            expr.op,
            _fold(expr.left, reuse),
            _fold(expr.right, reuse),
            expr.loc,
            expr if reuse else None,
        )
    if isinstance(expr, (Var, IntLit, FloatLit)):
        return expr
    if isinstance(expr, ArrayRef):
        indices = [_fold(i, reuse) for i in expr.indices]
        if reuse and all(n is o for n, o in zip(indices, expr.indices)):
            return expr
        return ArrayRef(expr.name, indices, expr.loc)
    if isinstance(expr, UnaryOp):
        inner = _fold(expr.operand, reuse)
        if expr.op == "-" and isinstance(inner, IntLit):
            return IntLit(-inner.value, expr.loc)
        if reuse and inner is expr.operand:
            return expr
        return UnaryOp(expr.op, inner, expr.loc)
    if isinstance(expr, Ternary):
        cond = _fold(expr.cond, reuse)
        then = _fold(expr.then, reuse)
        els = _fold(expr.els, reuse)
        if reuse and cond is expr.cond and then is expr.then and els is expr.els:
            return expr
        return Ternary(cond, then, els, expr.loc)
    if isinstance(expr, Call):
        args = [_fold(a, reuse) for a in expr.args]
        if reuse and all(n is o for n, o in zip(args, expr.args)):
            return expr
        return Call(expr.name, args, expr.loc)
    return expr


class _Folder(NodeTransformer):
    def __init__(self, reuse: bool = False):
        self.reuse = reuse

    def visit(self, node: Node) -> Node:
        if isinstance(node, Expr):
            return _fold(node, self.reuse)
        return self.generic_visit(node)


def fold_constants(node: Node, reuse: bool = False) -> Node:
    """Return a copy with integer constant arithmetic folded.

    ``reuse`` opts in to sharing unchanged *interior* nodes with the
    input (see :func:`_fold`); only safe when the caller never mutates
    either tree.
    """
    return _Folder(reuse).visit(node)


def _subst_fold(
    expr: Expr, var: str, replacement: Expr, reuse: bool = False
) -> Expr:
    """``_fold`` of the ``var`` → ``replacement`` substitution of
    ``expr``, in a single bottom-up pass.

    Structurally identical to
    ``_fold(_IndexSubstituter(var, replacement).visit(expr))`` — the
    substitution only touches ``Var`` leaves and ``_fold`` is bottom-up,
    so folding substituted children before the parent is the same tree
    the two-pass pipeline builds.  Like ``_fold``, untouched leaves are
    shared with the input, never mutated; with ``reuse``, untouched
    interior nodes are shared too (read-only callers only).
    """
    if isinstance(expr, Var):
        return _fold(replacement.clone()) if expr.name == var else expr
    if isinstance(expr, (IntLit, FloatLit)):
        return expr
    if isinstance(expr, BinOp):
        return _fold_binop(
            expr.op,
            _subst_fold(expr.left, var, replacement, reuse),
            _subst_fold(expr.right, var, replacement, reuse),
            expr.loc,
            expr if reuse else None,
        )
    if isinstance(expr, ArrayRef):
        indices = [_subst_fold(i, var, replacement, reuse) for i in expr.indices]
        if reuse and all(n is o for n, o in zip(indices, expr.indices)):
            return expr
        return ArrayRef(expr.name, indices, expr.loc)
    if isinstance(expr, UnaryOp):
        inner = _subst_fold(expr.operand, var, replacement, reuse)
        if expr.op == "-" and isinstance(inner, IntLit):
            return IntLit(-inner.value, expr.loc)
        if reuse and inner is expr.operand:
            return expr
        return UnaryOp(expr.op, inner, expr.loc)
    if isinstance(expr, Ternary):
        cond = _subst_fold(expr.cond, var, replacement, reuse)
        then = _subst_fold(expr.then, var, replacement, reuse)
        els = _subst_fold(expr.els, var, replacement, reuse)
        if reuse and cond is expr.cond and then is expr.then and els is expr.els:
            return expr
        return Ternary(cond, then, els, expr.loc)
    if isinstance(expr, Call):
        args = [_subst_fold(a, var, replacement, reuse) for a in expr.args]
        if reuse and all(n is o for n, o in zip(args, expr.args)):
            return expr
        return Call(expr.name, args, expr.loc)
    return expr


class _SubstFolder(NodeTransformer):
    def __init__(self, var: str, replacement: Expr, reuse: bool = False):
        self.var = var
        self.replacement = replacement
        self.reuse = reuse

    def visit(self, node: Node) -> Node:
        if isinstance(node, Expr):
            return _subst_fold(node, self.var, self.replacement, self.reuse)
        return self.generic_visit(node)


def substitute_index(node: Node, var: str, offset: int) -> Node:
    """Return a copy of ``node`` with loop index ``var`` shifted by ``offset``.

    ``substitute_index(A[i-1] = A[i+1], "i", 2)`` gives ``A[i+1] = A[i+3]``.
    Constants are folded after substitution so indices stay canonical.
    """
    if offset == 0:
        return fold_constants(node)
    replacement: Expr
    if offset > 0:
        replacement = BinOp("+", Var(var), IntLit(offset))
    else:
        replacement = BinOp("-", Var(var), IntLit(-offset))
    return _SubstFolder(var, replacement).visit(node)


def substitute_expr(
    node: Node, var: str, replacement: Expr, reuse: bool = False
) -> Node:
    """Return a copy with every ``Var(var)`` replaced by ``replacement``,
    folding constants as it rebuilds (one fused pass).

    ``reuse`` opts in to sharing unchanged interior nodes with the
    input (see :func:`_fold`); only safe for read-only callers.
    """
    return _SubstFolder(var, replacement, reuse).visit(node)


class _ScalarRenamer(NodeTransformer):
    def __init__(self, mapping: Dict[str, str]):
        self.mapping = mapping

    def visit_Var(self, node: Var) -> Var:
        return Var(self.mapping.get(node.name, node.name), node.loc)


def rename_scalar(node: Node, old: str, new: str) -> Node:
    """Return a copy with scalar ``old`` renamed to ``new`` (arrays untouched)."""
    return _ScalarRenamer({old: new}).visit(node)


def rename_scalars(node: Node, mapping: Dict[str, str]) -> Node:
    """Rename several scalars at once."""
    return _ScalarRenamer(dict(mapping)).visit(node)


# ---------------------------------------------------------------------------
# Operation counting (used by the §4 bad-case filter and machine models)
# ---------------------------------------------------------------------------


def count_ops(node: Node) -> Dict[str, int]:
    """Count load/store/arithmetic operations in a subtree.

    Returns a dict with keys ``"load"``, ``"store"``, ``"arith"``,
    ``"mul"``, ``"div"``, ``"addr_arith"``, ``"call"``.  Array reads count
    as loads, array writes as stores.  Arithmetic *inside array
    subscripts* is address computation — the paper's §4 AO count excludes
    it (its swap-loop example has AO=1, the single ``*2``) — so it is
    reported separately as ``addr_arith``.
    """
    counts = {
        "load": 0,
        "store": 0,
        "arith": 0,
        "mul": 0,
        "div": 0,
        "addr_arith": 0,
        "call": 0,
    }

    def count_addr(expr: Expr) -> None:
        for n in walk(expr):
            if isinstance(n, BinOp) and n.op in ARITH_OPS:
                counts["addr_arith"] += 1

    def visit_expr(expr: Expr) -> None:
        # Manual stack walk so array subscripts route to count_addr.
        stack: List[Expr] = [expr]
        while stack:
            n = stack.pop()
            if isinstance(n, ArrayRef):
                counts["load"] += 1
                for idx in n.indices:
                    count_addr(idx)
                continue
            if isinstance(n, BinOp) and n.op in ARITH_OPS:
                counts["arith"] += 1
                if n.op == "*":
                    counts["mul"] += 1
                elif n.op in ("/", "%"):
                    counts["div"] += 1
            elif isinstance(n, Call):
                counts["call"] += 1
            stack.extend(c for c in n.children() if isinstance(c, Expr))

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.expanded_value())
            if isinstance(stmt.target, ArrayRef):
                counts["store"] += 1
                # Compound ops re-read the target: expanded_value() already
                # cloned it as a load, so only the store itself is added here.
                if stmt.op is None:
                    for idx in stmt.target.indices:
                        count_addr(idx)
        elif isinstance(stmt, If):
            visit_expr(stmt.cond)
            for s in stmt.then:
                visit_stmt(s)
            for s in stmt.els:
                visit_stmt(s)
        elif isinstance(stmt, ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, ParGroup):
            for s in stmt.stmts:
                visit_stmt(s)
        elif isinstance(stmt, (For, While)):
            if isinstance(stmt, While):
                visit_expr(stmt.cond)
            for s in stmt.body:
                visit_stmt(s)
        elif isinstance(stmt, Decl) and stmt.init is not None:
            visit_expr(stmt.init)

    if isinstance(node, Program):
        for s in node.body:
            visit_stmt(s)
    elif isinstance(node, Stmt):
        visit_stmt(node)
    else:
        visit_expr(node)  # type: ignore[arg-type]
    return counts
