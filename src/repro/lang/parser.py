"""Recursive-descent parser for the C subset.

Grammar (expressions use standard C precedence):

.. code-block:: text

    program    := (decl | stmt)*
    decl       := ("int"|"float"|"double") declarator ("," declarator)* ";"
    declarator := ident ("[" INT "]")* ("=" expr)?
    stmt       := decl | for | while | if | "break" ";" | "continue" ";"
                | "{" stmt* "}" | simple ";"
    for        := "for" "(" simple? ";" expr? ";" simple? ")" body
    while      := "while" "(" expr ")" body
    if         := "if" "(" expr ")" body ("else" body)?
    simple     := lvalue ("="|"+="|"-="|"*="|"/="|"%=") expr
                | lvalue "++" | lvalue "--" | "++" lvalue | "--" lvalue
                | call
    postfix    := primary ("[" expr ("," expr)* "]")*

``double`` is accepted as a synonym for ``float``.  Both ``A[i][j]`` and
the paper's ``A[i, j]`` index syntax produce a single multi-dimensional
:class:`~repro.lang.ast_nodes.ArrayRef`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    """Parses a token list produced by :func:`repro.lang.lexer.tokenize`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._at(kind, text):
            tok = self._peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.loc)
        return self._next()

    def _at_type(self) -> bool:
        return self._at("keyword", "int") or self._at("keyword", "float") or self._at(
            "keyword", "double"
        )

    # -- entry points ----------------------------------------------------------
    def parse_program(self) -> Program:
        body: List[Stmt] = []
        while not self._at("eof"):
            if self._at_type():
                body.extend(self._decl())
            else:
                body.append(self._stmt())
        return Program(body)

    def parse_stmt(self) -> Stmt:
        stmt = self._stmt()
        self._expect("eof")
        return stmt

    def parse_expr(self) -> Expr:
        expr = self._expr()
        self._expect("eof")
        return expr

    # -- declarations ------------------------------------------------------------
    def _decl(self) -> List[Decl]:
        tok = self._next()
        typ = "float" if tok.text == "double" else tok.text
        decls: List[Decl] = []
        while True:
            name = self._expect("ident")
            dims: List[int] = []
            while self._at("op", "["):
                self._next()
                size = self._expect("int")
                dims.append(int(size.text))
                self._expect("op", "]")
            init: Optional[Expr] = None
            if self._at("op", "="):
                self._next()
                init = self._expr()
            decls.append(Decl(typ, name.text, dims, init, name.loc))
            if self._at("op", ","):
                self._next()
                continue
            break
        self._expect("op", ";")
        return decls

    # -- statements -----------------------------------------------------------------
    def _stmt(self) -> Stmt:
        if self._at_type():
            decls = self._decl()
            if len(decls) != 1:
                # Multi-declarator statements only appear at top level where
                # _decl() is called directly; inside bodies keep it single.
                raise ParseError(
                    "multiple declarators in one statement are only allowed "
                    "at top level",
                    decls[1].loc,
                )
            return decls[0]
        if self._at("keyword", "for"):
            return self._for()
        if self._at("keyword", "while"):
            return self._while()
        if self._at("keyword", "if"):
            return self._if()
        if self._at("keyword", "break"):
            tok = self._next()
            self._expect("op", ";")
            return Break(tok.loc)
        if self._at("keyword", "continue"):
            tok = self._next()
            self._expect("op", ";")
            return Continue(tok.loc)
        if self._at("op", "{"):
            raise ParseError(
                "bare block statements are not supported outside loop/if bodies",
                self._peek().loc,
            )
        stmt = self._simple()
        self._expect("op", ";")
        return stmt

    def _body(self) -> List[Stmt]:
        """A loop or branch body: either a braced list or one statement."""
        if self._at("op", "{"):
            self._next()
            stmts: List[Stmt] = []
            while not self._at("op", "}"):
                if self._at("eof"):
                    raise ParseError("unterminated block", self._peek().loc)
                stmts.append(self._stmt())
            self._next()
            return stmts
        if self._at("op", ";"):  # empty body
            self._next()
            return []
        return [self._stmt()]

    def _for(self) -> For:
        tok = self._expect("keyword", "for")
        self._expect("op", "(")
        init = None if self._at("op", ";") else self._simple()
        self._expect("op", ";")
        cond = None if self._at("op", ";") else self._expr()
        self._expect("op", ";")
        step = None if self._at("op", ")") else self._simple()
        self._expect("op", ")")
        body = self._body()
        return For(init, cond, step, body, tok.loc)

    def _while(self) -> While:
        tok = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._expr()
        self._expect("op", ")")
        body = self._body()
        return While(cond, body, tok.loc)

    def _if(self) -> If:
        tok = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._expr()
        self._expect("op", ")")
        then = self._body()
        els: List[Stmt] = []
        if self._at("keyword", "else"):
            self._next()
            if self._at("keyword", "if"):
                els = [self._if()]
            else:
                els = self._body()
        return If(cond, then, els, tok.loc)

    def _simple(self) -> Stmt:
        """An assignment, increment/decrement, or expression-statement."""
        tok = self._peek()
        if self._at("op", "++") or self._at("op", "--"):
            op = self._next().text
            target = self._postfix()
            if not isinstance(target, (Var, ArrayRef)):
                raise ParseError("++/-- needs an lvalue", tok.loc)
            return Assign(target, IntLit(1, tok.loc), op[0], tok.loc)
        expr = self._expr_no_assign()
        if self._at("op", "++") or self._at("op", "--"):
            op = self._next().text
            if not isinstance(expr, (Var, ArrayRef)):
                raise ParseError("++/-- needs an lvalue", tok.loc)
            return Assign(expr, IntLit(1, tok.loc), op[0], tok.loc)
        if self._at("op", "="):
            self._next()
            if not isinstance(expr, (Var, ArrayRef)):
                raise ParseError("assignment target must be an lvalue", tok.loc)
            return Assign(expr, self._expr(), None, tok.loc)
        for text, op in _COMPOUND_ASSIGN.items():
            if self._at("op", text):
                self._next()
                if not isinstance(expr, (Var, ArrayRef)):
                    raise ParseError("assignment target must be an lvalue", tok.loc)
                return Assign(expr, self._expr(), op, tok.loc)
        if isinstance(expr, Call):
            return ExprStmt(expr, tok.loc)
        raise ParseError("expression statement has no effect", tok.loc)

    # -- expressions --------------------------------------------------------------
    # _expr_no_assign exists so `_simple` can parse an lvalue-or-call prefix
    # without consuming an `=` as equality's neighbour.

    def _expr(self) -> Expr:
        return self._ternary()

    def _expr_no_assign(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._or()
        if self._at("op", "?"):
            tok = self._next()
            then = self._expr()
            self._expect("op", ":")
            els = self._ternary()
            return Ternary(cond, then, els, tok.loc)
        return cond

    def _or(self) -> Expr:
        left = self._and()
        while self._at("op", "||"):
            tok = self._next()
            left = BinOp("||", left, self._and(), tok.loc)
        return left

    def _and(self) -> Expr:
        left = self._equality()
        while self._at("op", "&&"):
            tok = self._next()
            left = BinOp("&&", left, self._equality(), tok.loc)
        return left

    def _equality(self) -> Expr:
        left = self._relational()
        while self._at("op", "==") or self._at("op", "!="):
            tok = self._next()
            left = BinOp(tok.text, left, self._relational(), tok.loc)
        return left

    def _relational(self) -> Expr:
        left = self._additive()
        while any(self._at("op", op) for op in ("<", "<=", ">", ">=")):
            tok = self._next()
            left = BinOp(tok.text, left, self._additive(), tok.loc)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._at("op", "+") or self._at("op", "-"):
            tok = self._next()
            left = BinOp(tok.text, left, self._multiplicative(), tok.loc)
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while any(self._at("op", op) for op in ("*", "/", "%")):
            tok = self._next()
            left = BinOp(tok.text, left, self._unary(), tok.loc)
        return left

    def _unary(self) -> Expr:
        if self._at("op", "-") or self._at("op", "!") or self._at("op", "+"):
            tok = self._next()
            operand = self._unary()
            # Fold negated literals so `-1` parses as a literal, which keeps
            # affine subscript analysis and printing simple.
            if tok.text == "-" and isinstance(operand, IntLit):
                return IntLit(-operand.value, tok.loc)
            if tok.text == "-" and isinstance(operand, FloatLit):
                return FloatLit(-operand.value, tok.loc)
            if tok.text == "+":
                return operand
            return UnaryOp(tok.text, operand, tok.loc)
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self._at("op", "["):
            self._next()
            indices = [self._expr()]
            while self._at("op", ","):
                self._next()
                indices.append(self._expr())
            self._expect("op", "]")
            if isinstance(expr, Var):
                expr = ArrayRef(expr.name, indices, expr.loc)
            elif isinstance(expr, ArrayRef):
                expr = ArrayRef(expr.name, expr.indices + indices, expr.loc)
            else:
                raise ParseError("cannot index a non-array expression", expr.loc)
        return expr

    def _primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return IntLit(int(tok.text), tok.loc)
        if tok.kind == "float":
            self._next()
            return FloatLit(float(tok.text), tok.loc)
        if tok.kind == "ident":
            self._next()
            if self._at("op", "("):
                self._next()
                args: List[Expr] = []
                if not self._at("op", ")"):
                    args.append(self._expr())
                    while self._at("op", ","):
                        self._next()
                        args.append(self._expr())
                self._expect("op", ")")
                return Call(tok.text, args, tok.loc)
            return Var(tok.text, tok.loc)
        if self._at("op", "("):
            self._next()
            expr = self._expr()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)


def parse_program(source: str) -> Program:
    """Parse a full program (declarations + statements)."""
    return Parser(tokenize(source)).parse_program()


# Source text → parsed master tree for parse_program_cached.  Bounded
# as a backstop against unbounded distinct sources (fuzzing).
_PARSE_CACHE: dict = {}
_PARSE_CACHE_LIMIT = 256


def parse_program_cached(source: str) -> Program:
    """Parse with a source-keyed memo, returning a private clone.

    A sweep re-parses the same workload sources once per machine; the
    text is the key, so a hit is exact, and every caller (including the
    one that populates an entry) gets a fresh ``clone()`` — the cached
    master is never handed out, so downstream mutation cannot leak
    between callers.  Cloning costs a fraction of lexing + parsing.
    """
    prog = _PARSE_CACHE.get(source)
    if prog is None:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.clear()
        prog = parse_program(source)
        _PARSE_CACHE[source] = prog
    return prog.clone()


def parse_stmt(source: str) -> Stmt:
    """Parse exactly one statement."""
    return Parser(tokenize(source)).parse_stmt()


def parse_expr(source: str) -> Expr:
    """Parse exactly one expression."""
    return Parser(tokenize(source)).parse_expr()
