"""C-subset language frontend for the source-level compiler.

This package implements the representation layer the SLMS algorithm works
on: a lexer and recursive-descent parser for a small C dialect (the loops
found in Livermore/Linpack/NAS-style kernels), an abstract syntax tree with
structural equality, a pretty-printer that can round-trip programs back to
compilable C, and visitor/transformer utilities used by every later stage.

The dialect covers: ``int``/``float`` declarations with array dimensions,
``for``/``while``/``if`` statements, assignments (including compound
``+=``-style operators and ``++``/``--``), arithmetic/relational/logical
expressions, multi-dimensional array references (both ``A[i][j]`` and the
paper's ``A[i, j]`` spelling), ternary expressions, and opaque function
calls.
"""

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Node,
    ParGroup,
    Program,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.errors import LexError, ParseError, SourceLocation
from repro.lang.lexer import Lexer, Token, tokenize
from repro.lang.parser import Parser, parse_expr, parse_program, parse_stmt
from repro.lang.printer import to_source
from repro.lang.visitors import (
    NodeTransformer,
    NodeVisitor,
    collect_array_refs,
    collect_calls,
    collect_vars,
    count_ops,
    defined_scalars,
    rename_scalar,
    substitute_index,
    used_scalars,
    walk,
)

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Break",
    "Call",
    "Continue",
    "Decl",
    "ExprStmt",
    "FloatLit",
    "For",
    "If",
    "IntLit",
    "Lexer",
    "LexError",
    "Node",
    "NodeTransformer",
    "NodeVisitor",
    "ParGroup",
    "ParseError",
    "Parser",
    "Program",
    "SourceLocation",
    "Ternary",
    "Token",
    "UnaryOp",
    "Var",
    "While",
    "collect_array_refs",
    "collect_calls",
    "collect_vars",
    "count_ops",
    "defined_scalars",
    "parse_expr",
    "parse_program",
    "parse_stmt",
    "rename_scalar",
    "substitute_index",
    "to_source",
    "tokenize",
    "used_scalars",
    "walk",
]
