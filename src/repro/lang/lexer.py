"""Hand-written lexer for the C subset.

The token stream is a plain list of :class:`Token` objects; the parser
indexes into it.  ``//`` and ``/* */`` comments are skipped.  The paper's
``||`` parallel-set separator is tokenized as the ordinary logical-or
operator; the parser decides from context whether it separates statements
in a ParGroup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.lang.errors import LexError, SourceLocation

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "double",
        "for",
        "while",
        "if",
        "else",
        "break",
        "continue",
        "return",
    }
)

# Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=",
    ">>=",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
)
_SINGLE_OPS = "+-*/%<>=!?:;,(){}[]&|"


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``"ident"``, ``"keyword"``, ``"int"``, ``"float"``,
    ``"op"``, ``"eof"``; ``text`` is the matched lexeme.
    """

    kind: str
    text: str
    loc: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.loc})"


class Lexer:
    """Tokenizes a source string; iterate or call :meth:`tokens`."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor --------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col)

    # -- whitespace and comments --------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    # -- token scanners ------------------------------------------------------
    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        saw_dot = False
        saw_exp = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and self.pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    saw_exp = True
                    self._advance()
                    if self._peek() in "+-":
                        self._advance()
                else:
                    break
            else:
                break
        text = self.source[start : self.pos]
        if text in (".",):
            raise LexError("malformed number", loc)
        kind = "float" if (saw_dot or saw_exp) else "int"
        return Token(kind, text, loc)

    def _scan_ident(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, loc)

    def _scan_op(self) -> Token:
        loc = self._loc()
        for op in _MULTI_OPS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, loc)
        ch = self._peek()
        if ch in _SINGLE_OPS:
            self._advance()
            return Token("op", ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    # -- public API ----------------------------------------------------------
    def tokens(self) -> List[Token]:
        """Scan the whole input, returning tokens plus a trailing EOF."""
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token("eof", "", self._loc()))
                return out
            ch = self._peek()
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                out.append(self._scan_number())
            elif ch.isalpha() or ch == "_":
                out.append(self._scan_ident())
            else:
                out.append(self._scan_op())

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokens())


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` including the EOF token."""
    return Lexer(source).tokens()
