"""Error types and source locations for the C-subset frontend."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A (line, column) position in the input text, both 1-based.

    ``SourceLocation(0, 0)`` is the "unknown" sentinel: positions are
    1-based, so line 0 never names a real place in the input and must
    never be rendered (``is_known`` guards that).
    """

    line: int = 0
    col: int = 0

    @property
    def is_known(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"


class FrontendError(Exception):
    """Base class for lexer/parser errors carrying a source location."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc or SourceLocation()
        self.message = message
        super().__init__(
            f"{self.loc}: {message}" if self.loc.is_known else message
        )

    def format(self, path: str | None = None) -> str:
        """Compiler-style one-liner: ``file:line:col: error: message``."""
        parts = []
        if path:
            parts.append(path)
        if self.loc.is_known:
            parts.append(str(self.loc))
        prefix = ":".join(parts)
        body = f"error: {self.message}"
        return f"{prefix}: {body}" if prefix else body


class LexError(FrontendError):
    """Raised on an unrecognised character or malformed literal."""


class ParseError(FrontendError):
    """Raised when the token stream does not match the grammar."""
