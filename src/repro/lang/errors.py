"""Error types and source locations for the C-subset frontend."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A (line, column) position in the input text, both 1-based."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"


class FrontendError(Exception):
    """Base class for lexer/parser errors carrying a source location."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc or SourceLocation()
        super().__init__(f"{self.loc}: {message}" if loc else message)


class LexError(FrontendError):
    """Raised on an unrecognised character or malformed literal."""


class ParseError(FrontendError):
    """Raised when the token stream does not match the grammar."""
