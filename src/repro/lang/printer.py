"""Pretty-printer: AST back to C source.

Two styles are supported:

* ``style="c"`` (default) emits standard compilable C; ParGroups flatten
  to sequential statements with a ``/* || */`` marker comment so the
  parallelism annotation survives a round trip through a text editor.
* ``style="paper"`` emits the notation used in the SLMS paper, joining
  ParGroup members with `` || `` on one line, which makes transformed
  loops easy to compare against the paper's figures.

The printer inserts parentheses from a precedence table, so
``to_source(parse_expr(s))`` reparses to a structurally equal tree.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Node,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)

# Higher binds tighter.  Matches the parser's precedence ladder.
_PREC = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_PREC = 7
_PRIMARY_PREC = 8


def _fmt_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return repr(value)


class Printer:
    """Stateful printer; one instance per :func:`to_source` call."""

    def __init__(self, indent: str = "    ", style: str = "c"):
        if style not in ("c", "paper"):
            raise ValueError(f"unknown style {style!r}")
        self.indent = indent
        self.style = style

    # -- expressions ---------------------------------------------------------
    def expr(self, node: Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_prec(node)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, node: Expr) -> tuple[str, int]:
        if isinstance(node, IntLit):
            return str(node.value), _PRIMARY_PREC
        if isinstance(node, FloatLit):
            return _fmt_float(node.value), _PRIMARY_PREC
        if isinstance(node, Var):
            return node.name, _PRIMARY_PREC
        if isinstance(node, ArrayRef):
            idx = "][".join(self.expr(i) for i in node.indices)
            return f"{node.name}[{idx}]", _PRIMARY_PREC
        if isinstance(node, Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{node.name}({args})", _PRIMARY_PREC
        if isinstance(node, UnaryOp):
            inner = self.expr(node.operand, _UNARY_PREC)
            return f"{node.op}{inner}", _UNARY_PREC
        if isinstance(node, BinOp):
            prec = _PREC[node.op]
            left = self.expr(node.left, prec)
            # Right operand needs prec+1 for left-associative operators so
            # a - (b - c) keeps its parentheses.
            right = self.expr(node.right, prec + 1)
            return f"{left} {node.op} {right}", prec
        if isinstance(node, Ternary):
            cond = self.expr(node.cond, 1)
            then = self.expr(node.then)
            els = self.expr(node.els, 1)
            return f"{cond} ? {then} : {els}", 0
        raise TypeError(f"cannot print expression node {type(node).__name__}")

    # -- statements -------------------------------------------------------------
    def stmt(self, node: Stmt, depth: int = 0) -> str:
        pad = self.indent * depth
        if isinstance(node, Decl):
            dims = "".join(f"[{d}]" for d in node.dims)
            init = f" = {self.expr(node.init)}" if node.init is not None else ""
            return f"{pad}{node.type} {node.name}{dims}{init};"
        if isinstance(node, Assign):
            return f"{pad}{self._assign_text(node)};"
        if isinstance(node, ExprStmt):
            return f"{pad}{self.expr(node.expr)};"
        if isinstance(node, Break):
            return f"{pad}break;"
        if isinstance(node, Continue):
            return f"{pad}continue;"
        if isinstance(node, If):
            # Paper style prints predicated single statements inline, as
            # the paper's figures do: `if (pred0) max0 = arr[i];`.
            if (
                self.style == "paper"
                and not node.els
                and len(node.then) == 1
                and isinstance(node.then[0], (Assign, ExprStmt, Break, Continue))
            ):
                inner = self.stmt(node.then[0], 0)
                return f"{pad}if ({self.expr(node.cond)}) {inner}"
            out = f"{pad}if ({self.expr(node.cond)}) {{\n"
            out += self.block(node.then, depth + 1)
            out += f"{pad}}}"
            if node.els:
                out += " else {\n"
                out += self.block(node.els, depth + 1)
                out += f"{pad}}}"
            return out
        if isinstance(node, For):
            init = self._inline_stmt(node.init)
            cond = self.expr(node.cond) if node.cond is not None else ""
            step = self._inline_stmt(node.step)
            out = f"{pad}for ({init}; {cond}; {step}) {{\n"
            out += self.block(node.body, depth + 1)
            out += f"{pad}}}"
            return out
        if isinstance(node, While):
            out = f"{pad}while ({self.expr(node.cond)}) {{\n"
            out += self.block(node.body, depth + 1)
            out += f"{pad}}}"
            return out
        if isinstance(node, ParGroup):
            return self._pargroup(node, depth)
        raise TypeError(f"cannot print statement node {type(node).__name__}")

    def _assign_text(self, node: Assign) -> str:
        target = self.expr(node.target)
        if node.op is not None and node.value == IntLit(1):
            if node.op == "+":
                return f"{target}++"
            if node.op == "-":
                return f"{target}--"
        op = f"{node.op}=" if node.op is not None else "="
        return f"{target} {op} {self.expr(node.value)}"

    def _inline_stmt(self, node: Stmt | None) -> str:
        if node is None:
            return ""
        if isinstance(node, Assign):
            return self._assign_text(node)
        if isinstance(node, ExprStmt):
            return self.expr(node.expr)
        raise TypeError(
            f"{type(node).__name__} cannot appear in a for-header"
        )

    def _pargroup(self, node: ParGroup, depth: int) -> str:
        pad = self.indent * depth
        if self.style == "paper":
            parts = []
            for stmt in node.stmts:
                text = self.stmt(stmt, 0)
                parts.append(text)
            return pad + " || ".join(parts)
        lines = []
        for i, stmt in enumerate(node.stmts):
            text = self.stmt(stmt, depth)
            if i < len(node.stmts) - 1:
                text += " /* || */"
            lines.append(text)
        return "\n".join(lines)

    def block(self, stmts, depth: int) -> str:
        out = ""
        for stmt in stmts:
            out += self.stmt(stmt, depth) + "\n"
        return out

    def program(self, node: Program) -> str:
        return self.block(node.body, 0)


def to_source(node: Node, style: str = "c", indent: str = "    ") -> str:
    """Render any AST node back to source text.

    ``style="paper"`` joins ParGroup members with `` || `` as in the
    paper's figures; ``style="c"`` (default) emits compilable C.
    """
    printer = Printer(indent=indent, style=style)
    if isinstance(node, Program):
        return printer.program(node)
    if isinstance(node, Stmt):
        return printer.stmt(node)
    if isinstance(node, Expr):
        return printer.expr(node)
    raise TypeError(f"cannot print {type(node).__name__}")
