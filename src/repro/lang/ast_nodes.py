"""Abstract syntax tree for the C subset.

Nodes are small mutable classes with structural equality (location is
ignored when comparing), ``clone()`` for deep copies, and ``children()``
for generic traversal.  The SLMS passes rewrite trees functionally: they
``clone()`` what they keep and build fresh nodes for what they change, so
sharing bugs cannot leak between the original and transformed programs.

Expression nodes: :class:`IntLit`, :class:`FloatLit`, :class:`Var`,
:class:`ArrayRef`, :class:`BinOp`, :class:`UnaryOp`, :class:`Ternary`,
:class:`Call`.

Statement nodes: :class:`Decl`, :class:`Assign`, :class:`If`,
:class:`For`, :class:`While`, :class:`Break`, :class:`Continue`,
:class:`ExprStmt`, :class:`ParGroup` (a set of statements the scheduler
has proven independent — the paper's ``s1 || s2`` rows), and
:class:`Program` as the top-level container.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.lang.errors import SourceLocation

# Binary operators grouped by kind; used by the type checker, the printer
# precedence table and the resource counters.
ARITH_OPS = ("+", "-", "*", "/", "%")
REL_OPS = ("<", "<=", ">", ">=", "==", "!=")
LOGIC_OPS = ("&&", "||")
ALL_BINOPS = ARITH_OPS + REL_OPS + LOGIC_OPS


class Node:
    """Base class for every AST node."""

    __slots__ = ("loc",)

    def __init__(self, loc: Optional[SourceLocation] = None):
        self.loc = loc or SourceLocation()

    # -- generic traversal ------------------------------------------------
    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (statements and expressions)."""
        return iter(())

    def clone(self) -> "Node":
        """Return a deep copy of this subtree."""
        raise NotImplementedError

    # -- structural equality ----------------------------------------------
    def _key(self) -> tuple:
        """A tuple fully describing this node minus its location."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        from repro.lang.printer import to_source

        return f"<{type(self).__name__} {to_source(self)!r}>"


class Expr(Node):
    """Marker base class for expressions."""

    __slots__ = ()


class Stmt(Node):
    """Marker base class for statements."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class IntLit(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.value = int(value)

    def clone(self) -> "IntLit":
        return IntLit(self.value, self.loc)

    def _key(self) -> tuple:
        return (self.value,)


class FloatLit(Expr):
    """Floating point literal."""

    __slots__ = ("value",)

    def __init__(self, value: float, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.value = float(value)

    def clone(self) -> "FloatLit":
        return FloatLit(self.value, self.loc)

    def _key(self) -> tuple:
        return (self.value,)


class Var(Expr):
    """Scalar variable reference."""

    __slots__ = ("name",)

    def __init__(self, name: str, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.name = name

    def clone(self) -> "Var":
        return Var(self.name, self.loc)

    def _key(self) -> tuple:
        return (self.name,)


class ArrayRef(Expr):
    """Array element reference ``A[e0]`` or ``A[e0][e1]``/``A[e0, e1]``."""

    __slots__ = ("name", "indices")

    def __init__(
        self,
        name: str,
        indices: Sequence[Expr],
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.name = name
        self.indices = list(indices)
        if not self.indices:
            raise ValueError("ArrayRef needs at least one index")

    def children(self) -> Iterator[Node]:
        return iter(self.indices)

    def clone(self) -> "ArrayRef":
        return ArrayRef(self.name, [i.clone() for i in self.indices], self.loc)

    def _key(self) -> tuple:
        return (self.name, tuple(self.indices))


class BinOp(Expr):
    """Binary operation; ``op`` is one of :data:`ALL_BINOPS`."""

    __slots__ = ("op", "left", "right")

    def __init__(
        self, op: str, left: Expr, right: Expr, loc: Optional[SourceLocation] = None
    ):
        super().__init__(loc)
        if op not in ALL_BINOPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.left.clone(), self.right.clone(), self.loc)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)


class UnaryOp(Expr):
    """Unary ``-e`` or ``!e``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if op not in ("-", "!", "+"):
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Iterator[Node]:
        yield self.operand

    def clone(self) -> "UnaryOp":
        return UnaryOp(self.op, self.operand.clone(), self.loc)

    def _key(self) -> tuple:
        return (self.op, self.operand)


class Ternary(Expr):
    """Conditional expression ``cond ? then : els``."""

    __slots__ = ("cond", "then", "els")

    def __init__(
        self, cond: Expr, then: Expr, els: Expr, loc: Optional[SourceLocation] = None
    ):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.els

    def clone(self) -> "Ternary":
        return Ternary(self.cond.clone(), self.then.clone(), self.els.clone(), self.loc)

    def _key(self) -> tuple:
        return (self.cond, self.then, self.els)


class Call(Expr):
    """Opaque function call ``f(a, b)``.

    SLMS treats calls as barriers: an MI containing a call conflicts with
    every memory reference, which is the conservative contract Tiny used.
    """

    __slots__ = ("name", "args")

    def __init__(
        self,
        name: str,
        args: Sequence[Expr],
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.name = name
        self.args = list(args)

    def children(self) -> Iterator[Node]:
        return iter(self.args)

    def clone(self) -> "Call":
        return Call(self.name, [a.clone() for a in self.args], self.loc)

    def _key(self) -> tuple:
        return (self.name, tuple(self.args))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Decl(Stmt):
    """Declaration ``int x = 0;`` / ``float A[100][4];``.

    ``dims`` is empty for scalars.  Array dimensions must be integer
    literals (constant-size arrays are all the workloads need).
    """

    __slots__ = ("type", "name", "dims", "init")

    def __init__(
        self,
        type: str,
        name: str,
        dims: Sequence[int] = (),
        init: Optional[Expr] = None,
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        if type not in ("int", "float"):
            raise ValueError(f"unsupported type {type!r}")
        self.type = type
        self.name = name
        self.dims = tuple(int(d) for d in dims)
        self.init = init

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init

    def clone(self) -> "Decl":
        return Decl(
            self.type,
            self.name,
            self.dims,
            self.init.clone() if self.init is not None else None,
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.type, self.name, self.dims, self.init)


class Assign(Stmt):
    """Assignment ``target = value;`` or compound ``target op= value;``.

    ``op`` is ``None`` for plain assignment or one of the arithmetic
    operators for compound forms (``+=`` stores ``op='+'``).  ``i++`` is
    parsed as ``i += 1``.
    """

    __slots__ = ("target", "value", "op")

    def __init__(
        self,
        target: Expr,
        value: Expr,
        op: Optional[str] = None,
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        if not isinstance(target, (Var, ArrayRef)):
            raise ValueError("assignment target must be a variable or array ref")
        if op is not None and op not in ARITH_OPS:
            raise ValueError(f"unsupported compound operator {op!r}")
        self.target = target
        self.value = value
        self.op = op

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value

    def clone(self) -> "Assign":
        return Assign(self.target.clone(), self.value.clone(), self.op, self.loc)

    def _key(self) -> tuple:
        return (self.target, self.value, self.op)

    def expanded_value(self) -> Expr:
        """The full RHS with compound operators expanded.

        ``x += e`` reads ``x`` as well as writing it; dependence analysis
        works on the expanded ``x = x + e`` form.
        """
        if self.op is None:
            return self.value
        return BinOp(self.op, self.target.clone(), self.value.clone(), self.loc)


class If(Stmt):
    """``if (cond) { then } else { els }``; branches are statement lists."""

    __slots__ = ("cond", "then", "els")

    def __init__(
        self,
        cond: Expr,
        then: Sequence[Stmt],
        els: Sequence[Stmt] = (),
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.cond = cond
        self.then = list(then)
        self.els = list(els)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield from self.then
        yield from self.els

    def clone(self) -> "If":
        return If(
            self.cond.clone(),
            [s.clone() for s in self.then],
            [s.clone() for s in self.els],
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.cond, tuple(self.then), tuple(self.els))


class For(Stmt):
    """``for (init; cond; step) { body }``.

    ``init`` and ``step`` are single statements (or ``None``); the
    canonical analyzable form is ``for (i = lo; i < hi; i++)`` — see
    :mod:`repro.transforms.normalize` for the recognizer.
    """

    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Stmt],
        body: Sequence[Stmt],
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = list(body)

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield from self.body

    def clone(self) -> "For":
        return For(
            self.init.clone() if self.init is not None else None,
            self.cond.clone() if self.cond is not None else None,
            self.step.clone() if self.step is not None else None,
            [s.clone() for s in self.body],
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.init, self.cond, self.step, tuple(self.body))


class While(Stmt):
    """``while (cond) { body }``."""

    __slots__ = ("cond", "body")

    def __init__(
        self,
        cond: Expr,
        body: Sequence[Stmt],
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.cond = cond
        self.body = list(body)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield from self.body

    def clone(self) -> "While":
        return While(self.cond.clone(), [s.clone() for s in self.body], self.loc)

    def _key(self) -> tuple:
        return (self.cond, tuple(self.body))


class Break(Stmt):
    """``break;``"""

    __slots__ = ()

    def clone(self) -> "Break":
        return Break(self.loc)

    def _key(self) -> tuple:
        return ()


class Continue(Stmt):
    """``continue;``"""

    __slots__ = ()

    def clone(self) -> "Continue":
        return Continue(self.loc)

    def _key(self) -> tuple:
        return ()


class ExprStmt(Stmt):
    """An expression evaluated for effect — in this dialect, a call."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.expr = expr

    def children(self) -> Iterator[Node]:
        yield self.expr

    def clone(self) -> "ExprStmt":
        return ExprStmt(self.expr.clone(), self.loc)

    def _key(self) -> tuple:
        return (self.expr,)


class ParGroup(Stmt):
    """Statements the scheduler proved mutually independent.

    This is the paper's ``s1; || s2; || s3;`` kernel row.  Semantically a
    ParGroup executes its statements in the listed order (which SLMS
    guarantees is a legal serialization); the annotation tells the final
    compiler's list scheduler it may issue them in the same cycle.
    """

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.stmts = list(stmts)

    def children(self) -> Iterator[Node]:
        return iter(self.stmts)

    def clone(self) -> "ParGroup":
        return ParGroup([s.clone() for s in self.stmts], self.loc)

    def _key(self) -> tuple:
        return (tuple(self.stmts),)


class Program(Node):
    """Top-level container: declarations followed by statements."""

    __slots__ = ("body",)

    def __init__(self, body: Sequence[Stmt], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.body = list(body)

    def children(self) -> Iterator[Node]:
        return iter(self.body)

    def clone(self) -> "Program":
        return Program([s.clone() for s in self.body], self.loc)

    def _key(self) -> tuple:
        return (tuple(self.body),)

    def decls(self) -> Iterable[Decl]:
        """Top-level declarations, in order."""
        return (s for s in self.body if isinstance(s, Decl))

    def stmts(self) -> Iterable[Stmt]:
        """Top-level non-declaration statements, in order."""
        return (s for s in self.body if not isinstance(s, Decl))
