"""Affine normal form for array subscripts.

A subscript is *affine in the loop index* ``i`` when it can be written
``coeff * i + offset + Σ c_k · sym_k`` with integer ``coeff``/``offset``
and loop-invariant symbols ``sym_k`` (other scalar variables such as the
outer-loop index ``j`` or the bound ``n``).  Dependence distances between
two references cancel the symbolic parts when they match, which is how
``A[i + j]`` vs ``A[i + j - 1]`` still yields an exact distance of 1.

:func:`analyze_subscript` returns ``None`` for anything non-affine
(``A[i*i]``, ``A[B[i]]``, float arithmetic in a subscript, …); callers
treat that as "dependence unknown" and decline to pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.lang.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)

SymTuple = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class AffineExpr:
    """``coeff * index + offset + Σ syms[name] * name``.

    ``syms`` is a canonical sorted tuple of ``(name, coeff)`` pairs with
    zero coefficients removed, so equality and hashing are structural.
    """

    coeff: int = 0
    offset: int = 0
    syms: SymTuple = field(default_factory=tuple)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr(0, value, ())

    @staticmethod
    def index(coeff: int = 1) -> "AffineExpr":
        return AffineExpr(coeff, 0, ())

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "AffineExpr":
        return AffineExpr(0, 0, ((name, coeff),))

    # -- arithmetic -----------------------------------------------------------
    def _sym_map(self) -> Mapping[str, int]:
        return dict(self.syms)

    @staticmethod
    def _normalize(mapping: Mapping[str, int]) -> SymTuple:
        return tuple(sorted((k, v) for k, v in mapping.items() if v != 0))

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        syms = dict(self._sym_map())
        for name, coeff in other.syms:
            syms[name] = syms.get(name, 0) + coeff
        return AffineExpr(
            self.coeff + other.coeff,
            self.offset + other.offset,
            self._normalize(syms),
        )

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "AffineExpr":
        return AffineExpr(
            self.coeff * factor,
            self.offset * factor,
            self._normalize({k: v * factor for k, v in self.syms}),
        )

    # -- queries -----------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return self.coeff == 0 and not self.syms

    @property
    def has_symbols(self) -> bool:
        return bool(self.syms)

    def same_shape(self, other: "AffineExpr") -> bool:
        """True when the two expressions differ only in the constant term.

        This is the condition under which a dependence distance between
        subscripts is an exact integer regardless of symbol values.
        """
        return self.coeff == other.coeff and self.syms == other.syms

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.coeff:
            parts.append(f"{self.coeff}*i" if self.coeff != 1 else "i")
        for name, coeff in self.syms:
            parts.append(f"{coeff}*{name}" if coeff != 1 else name)
        if self.offset or not parts:
            parts.append(str(self.offset))
        return " + ".join(parts)


def analyze_subscript(expr: Expr, index_var: str) -> Optional[AffineExpr]:
    """Normalize ``expr`` to affine form in ``index_var``; ``None`` if not affine.

    Every scalar other than the index variable is treated as a
    loop-invariant symbol.  (If it is actually loop-variant, the scalar
    dependence analysis will already have created edges that serialize
    the statements involved, so treating it symbolically here is safe.)
    """
    if isinstance(expr, IntLit):
        return AffineExpr.constant(expr.value)
    if isinstance(expr, FloatLit):
        return None  # float subscripts are not integer-affine
    if isinstance(expr, Var):
        if expr.name == index_var:
            return AffineExpr.index()
        return AffineExpr.symbol(expr.name)
    if isinstance(expr, UnaryOp):
        inner = analyze_subscript(expr.operand, index_var)
        if inner is None:
            return None
        if expr.op == "-":
            return inner.scale(-1)
        if expr.op == "+":
            return inner
        return None  # logical not in a subscript: give up
    if isinstance(expr, BinOp):
        left = analyze_subscript(expr.left, index_var)
        right = analyze_subscript(expr.right, index_var)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right.scale(left.offset)
            if right.is_constant:
                return left.scale(right.offset)
            return None  # i*j, i*i: nonlinear
        if expr.op == "/":
            # Exact division by a constant that divides every coefficient
            # stays affine (A[(2*i)/2]); anything else is nonlinear.
            if right.is_constant and right.offset != 0:
                d = right.offset
                if (
                    left.coeff % d == 0
                    and left.offset % d == 0
                    and all(c % d == 0 for _, c in left.syms)
                ):
                    return AffineExpr(
                        left.coeff // d,
                        left.offset // d,
                        tuple((n, c // d) for n, c in left.syms),
                    )
            return None
        return None  # %, comparisons, logicals: not affine
    if isinstance(expr, (ArrayRef, Call, Ternary)):
        return None
    return None
