"""Canonical-loop recognition.

SLMS (and every loop transformation here) operates on *analyzable* for
loops: ``for (i = lo; i < hi; i += step)`` with an integer step and a
loop-invariant bound.  :func:`LoopInfo.from_for` recognizes that shape
(also ``<=``, ``>``/``>=`` with negative steps and ``i--``) and exposes
the pieces; it returns ``None`` for anything else, which callers treat
as "decline to transform".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang.ast_nodes import Assign, BinOp, Expr, For, IntLit, Var
from repro.lang.visitors import collect_vars, defined_scalars


@dataclass(frozen=True)
class LoopInfo:
    """The header of a canonical counted loop.

    ``lo``/``hi`` are the *half-open* bounds in iteration order: the loop
    executes for ``i = lo, lo+step, …`` while ``i`` is strictly before
    ``hi`` (for negative steps, strictly after).  ``lo_const``/``hi_const``
    are the concrete values when the bounds are integer literals.
    """

    var: str
    lo: Expr
    hi: Expr
    step: int
    lo_const: Optional[int]
    hi_const: Optional[int]

    @property
    def trip_count(self) -> Optional[int]:
        """Concrete iteration count when both bounds are literals."""
        if self.lo_const is None or self.hi_const is None:
            return None
        if self.step > 0:
            span = self.hi_const - self.lo_const
            return max(0, -(-span // self.step))  # ceil(span/step)
        span = self.lo_const - self.hi_const
        return max(0, -(-span // (-self.step)))

    @staticmethod
    def from_for(loop: For) -> Optional["LoopInfo"]:
        """Recognize a canonical counted loop; ``None`` if not canonical."""
        # init:  i = lo
        if not isinstance(loop.init, Assign) or loop.init.op is not None:
            return None
        if not isinstance(loop.init.target, Var):
            return None
        var = loop.init.target.name
        lo = loop.init.value

        # step:  i += c / i -= c (includes i++/i--), or the spelled-out
        # forms i = i + c / i = i - c / i = c + i.
        if not isinstance(loop.step, Assign):
            return None
        if not isinstance(loop.step.target, Var) or loop.step.target.name != var:
            return None
        step: Optional[int] = None
        if isinstance(loop.step.value, IntLit) and loop.step.op in ("+", "-"):
            step = (
                loop.step.value.value
                if loop.step.op == "+"
                else -loop.step.value.value
            )
        elif loop.step.op is None and isinstance(loop.step.value, BinOp):
            value = loop.step.value
            if (
                isinstance(value.left, Var)
                and value.left.name == var
                and isinstance(value.right, IntLit)
                and value.op in ("+", "-")
            ):
                step = (
                    value.right.value
                    if value.op == "+"
                    else -value.right.value
                )
            elif (
                value.op == "+"
                and isinstance(value.right, Var)
                and value.right.name == var
                and isinstance(value.left, IntLit)
            ):
                step = value.left.value
        if step is None or step == 0:
            return None

        # cond:  i < hi | i <= hi | i > hi | i >= hi  (var on the left)
        cond = loop.cond
        if not isinstance(cond, BinOp):
            return None
        if not (isinstance(cond.left, Var) and cond.left.name == var):
            return None
        bound = cond.right
        if cond.op == "<" and step > 0:
            hi = bound
        elif cond.op == "<=" and step > 0:
            hi = BinOp("+", bound.clone(), IntLit(1))
        elif cond.op == ">" and step < 0:
            hi = bound
        elif cond.op == ">=" and step < 0:
            hi = BinOp("-", bound.clone(), IntLit(1))
        else:
            return None

        # The bound and the index var must be loop-invariant w.r.t. the body.
        body_defs = set()
        for stmt in loop.body:
            body_defs |= defined_scalars(stmt)
        if var in body_defs:
            return None  # body modifies the index: not canonical
        if collect_vars(hi) & body_defs:
            return None  # bound is loop-variant

        lo_const = lo.value if isinstance(lo, IntLit) else None
        hi_const: Optional[int]
        if isinstance(hi, IntLit):
            hi_const = hi.value
        elif (
            isinstance(hi, BinOp)
            and isinstance(hi.left, IntLit)
            and isinstance(hi.right, IntLit)
        ):
            hi_const = (
                hi.left.value + hi.right.value
                if hi.op == "+"
                else hi.left.value - hi.right.value
            )
        else:
            hi_const = None
        return LoopInfo(var, lo, hi, step, lo_const, hi_const)
