"""Array and scalar dependence analysis for SLMS.

The SLMS algorithm consumes a loop body partitioned into
multi-instructions (MIs) plus a dependence graph whose edges carry
``<iteration-distance, delay>`` labels (paper §3, Fig. 6).  This package
produces that graph:

* :mod:`repro.analysis.affine` — normalizes subscripts to
  ``coeff * i + offset (+ symbols)`` form;
* :mod:`repro.analysis.deptests` — classic array dependence tests (ZIV,
  strong/weak SIV, GCD, Banerjee) returning *constant iteration
  distances* when they exist;
* :mod:`repro.analysis.fourier_motzkin` — an integer linear feasibility
  core (the "omega-lite" stand-in for Pugh's Omega test that Tiny used);
* :mod:`repro.analysis.scalars` — scalar def/use dependences with kill
  analysis;
* :mod:`repro.analysis.ddg` — the MI-level dependence multigraph;
* :mod:`repro.analysis.delays` — the paper's §3.5 source-level delay
  rules.
"""

from repro.analysis.affine import AffineExpr, analyze_subscript
from repro.analysis.ddg import (
    Dependence,
    DependenceGraph,
    build_ddg,
    raise_to_mi_edges,
)
from repro.analysis.delays import edge_delay
from repro.analysis.deptests import DependenceResult, test_dependence
from repro.analysis.fourier_motzkin import IntegerSystem, is_feasible
from repro.analysis.scalars import scalar_dependences

__all__ = [
    "AffineExpr",
    "Dependence",
    "DependenceGraph",
    "DependenceResult",
    "IntegerSystem",
    "analyze_subscript",
    "build_ddg",
    "edge_delay",
    "is_feasible",
    "raise_to_mi_edges",
    "scalar_dependences",
    "test_dependence",
]
