"""MI-level data dependence graph with ``<distance, delay>`` edges.

:func:`build_ddg` turns a loop (its ordered MI statements plus header
info) into the dependence multigraph SLMS schedules against, merging

* array dependences from the §3-style subscript tests (dependence edges
  between memory reference nodes are "raised" to the parent MI — §5
  step 4a),
* scalar dependences with kill analysis,
* conservative barriers for opaque calls.

Each edge carries the dependence kind, the variable/array responsible,
the iteration distance, and the §3.5 source-level delay.  The graph also
records *imprecision*: any non-affine subscript, unknown-distance
dependence, or call barrier marks it, and SLMS declines imprecise loops
(matching Tiny, which only transforms loops its Omega test fully
understands).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.affine import AffineExpr, analyze_subscript
from repro.analysis.delays import edge_delay
from repro.analysis.deptests import DependenceResult, test_dependence
from repro.analysis.loopinfo import LoopInfo
from repro.analysis.scalars import scalar_dependences
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    Call,
    Decl,
    Expr,
    ExprStmt,
    If,
    Stmt,
)
from repro.lang.visitors import walk


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between MI positions ``src → dst``.

    The dependence source executes in iteration ``i`` and the sink in
    iteration ``i + distance`` (``distance ≥ 0``; distance-0 edges always
    have ``src < dst`` in body order).  ``delay`` follows §3.5.
    """

    kind: str  # "flow" | "anti" | "output"
    src: int
    dst: int
    var: str
    distance: int
    delay: int
    exact: bool = True

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.kind} {self.var}: MI{self.src} -> MI{self.dst} "
            f"<dist={self.distance}, delay={self.delay}>"
        )


@dataclass
class _MemRef:
    """One array access inside an MI, normalized to affine subscripts."""

    mi: int
    name: str
    subs: Optional[Tuple[AffineExpr, ...]]  # None: non-affine
    is_write: bool
    # Subscript mentions a scalar the body redefines: the affine form's
    # "loop-invariant symbol" assumption does not hold, so any conflict
    # involving this reference must be treated as unknown.
    variant_syms: bool = False


@dataclass
class DependenceGraph:
    """The SLMS dependence multigraph over MI positions ``0..n-1``."""

    n: int
    edges: List[Dependence] = field(default_factory=list)
    precise: bool = True
    reasons: List[str] = field(default_factory=list)

    def add(self, dep: Dependence) -> None:
        self.edges.append(dep)

    def mark_imprecise(self, reason: str) -> None:
        self.precise = False
        if reason not in self.reasons:
            self.reasons.append(reason)

    # -- queries ----------------------------------------------------------
    def loop_carried(self) -> List[Dependence]:
        return [e for e in self.edges if e.distance >= 1]

    def edges_between(self, src: int, dst: int) -> List[Dependence]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    def self_edges(self, mi: int) -> List[Dependence]:
        return [e for e in self.edges if e.src == mi and e.dst == mi]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Graph view for cycle enumeration (one parallel edge per dep)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.n))
        for e in self.edges:
            graph.add_edge(e.src, e.dst, distance=e.distance, delay=e.delay)
        return graph

    def dominant_edges(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Per node pair, the tightest ``(delay, distance)`` pair.

        For MII purposes the binding label between two MIs maximizes
        ``delay − II·distance``; since delay is a function of positions
        only, that is the *minimum distance* among parallel edges (and
        their shared positional delay).
        """
        best: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for e in self.edges:
            key = (e.src, e.dst)
            if key not in best or e.distance < best[key][1]:
                best[key] = (e.delay, e.distance)
        return best


def _collect_mem_refs(
    stmt: Stmt, mi: int, index_var: str, body_defined: frozenset
) -> List[_MemRef]:
    """Array accesses of one MI, with read/write roles.

    ``body_defined`` holds the scalars written anywhere in the loop
    body; a subscript touching one of them is flagged ``variant_syms``
    (its affine form is only valid within a single iteration).
    """
    refs: List[_MemRef] = []

    def make_ref(ref: ArrayRef, is_write: bool) -> _MemRef:
        subs = []
        variant = False
        for idx in ref.indices:
            a = analyze_subscript(idx, index_var)
            if a is None:
                return _MemRef(mi, ref.name, None, is_write)
            if any(name in body_defined for name, _c in a.syms):
                variant = True
            subs.append(a)
        return _MemRef(mi, ref.name, tuple(subs), is_write, variant)

    def add_reads(expr: Expr) -> None:
        for node in walk(expr):
            if isinstance(node, ArrayRef):
                refs.append(make_ref(node, False))

    def visit(s: Stmt) -> None:
        if isinstance(s, Assign):
            add_reads(s.expanded_value())
            if isinstance(s.target, ArrayRef):
                refs.append(make_ref(s.target, True))
                for idx in s.target.indices:
                    add_reads(idx)
        elif isinstance(s, If):
            add_reads(s.cond)
            for inner in list(s.then) + list(s.els):
                visit(inner)
        elif isinstance(s, ExprStmt):
            add_reads(s.expr)
        elif isinstance(s, Decl) and s.init is not None:
            add_reads(s.init)

    visit(stmt)
    return refs


def _has_call(stmt: Stmt) -> bool:
    return any(isinstance(n, Call) for n in walk(stmt))


def _kind(src_write: bool, dst_write: bool) -> str:
    if src_write and dst_write:
        return "output"
    if src_write:
        return "flow"
    return "anti"


def raise_to_mi_edges(
    result: DependenceResult,
    ref1: _MemRef,
    ref2: _MemRef,
) -> List[Tuple[str, int, int, int, bool]]:
    """Convert one reference-pair test into directed MI-level edges.

    Returns ``(kind, src_mi, dst_mi, distance, exact)`` tuples with
    ``distance ≥ 0``; a negative tested distance flips the edge (the
    "source" of the dependence is whichever access runs first).
    """
    a, b = ref1.mi, ref2.mi
    out: List[Tuple[str, int, int, int, bool]] = []

    def directed(distance: int) -> None:
        if distance > 0:
            out.append((_kind(ref1.is_write, ref2.is_write), a, b, distance, result.exact))
        elif distance < 0:
            out.append((_kind(ref2.is_write, ref1.is_write), b, a, -distance, result.exact))
        else:  # distance == 0: body order decides direction
            if a < b:
                out.append((_kind(ref1.is_write, ref2.is_write), a, b, 0, result.exact))
            elif b < a:
                out.append((_kind(ref2.is_write, ref1.is_write), b, a, 0, result.exact))
            # a == b at distance 0: within one MI; expression evaluation
            # order covers it, no edge.

    if not result.exists:
        return out
    if result.distance is not None:
        directed(result.distance)
        return out
    # All distances (or unknown): the binding constraint is the minimal
    # forward distance in each direction (larger distances only relax
    # the schedule inequality d·II + (j−i) ≥ delay).
    if a == b:
        out.append((_kind(ref1.is_write, ref2.is_write), a, b, 1, result.exact))
        return out
    lo_mi, hi_mi = (a, b) if a < b else (b, a)
    if a < b:
        out.append((_kind(ref1.is_write, ref2.is_write), lo_mi, hi_mi, 0, result.exact))
        out.append((_kind(ref2.is_write, ref1.is_write), hi_mi, lo_mi, 1, result.exact))
    else:
        out.append((_kind(ref2.is_write, ref1.is_write), lo_mi, hi_mi, 0, result.exact))
        out.append((_kind(ref1.is_write, ref2.is_write), hi_mi, lo_mi, 1, result.exact))
    return out


def build_ddg(
    stmts: Sequence[Stmt],
    info: LoopInfo,
) -> DependenceGraph:
    """Build the MI dependence graph for a loop body.

    ``stmts`` are the ordered MI statements (after if-conversion / MI
    partitioning); ``info`` is the loop header.
    """
    graph = DependenceGraph(n=len(stmts))
    seen: set = set()

    def add(kind: str, src: int, dst: int, distance: int, var: str, exact: bool) -> None:
        key = (kind, src, dst, distance, var)
        if key in seen:
            return
        seen.add(key)
        graph.add(
            Dependence(
                kind=kind,
                src=src,
                dst=dst,
                var=var,
                distance=distance,
                delay=edge_delay(src, dst),
                exact=exact,
            )
        )

    # ---- call barriers ----------------------------------------------------
    for mi, stmt in enumerate(stmts):
        if _has_call(stmt):
            graph.mark_imprecise(f"MI{mi} contains an opaque call")

    # ---- array dependences ----------------------------------------------
    from repro.lang.visitors import defined_scalars

    body_defined = frozenset(
        name
        for stmt in stmts
        for name in defined_scalars(stmt)
        if name != info.var
    )
    all_refs: List[_MemRef] = []
    for mi, stmt in enumerate(stmts):
        all_refs.extend(_collect_mem_refs(stmt, mi, info.var, body_defined))
    for ref in all_refs:
        if ref.subs is None:
            graph.mark_imprecise(
                f"non-affine subscript on {ref.name!r} in MI{ref.mi}"
            )

    by_array: Dict[str, List[_MemRef]] = {}
    for ref in all_refs:
        by_array.setdefault(ref.name, []).append(ref)

    for name, refs in by_array.items():
        for i, r1 in enumerate(refs):
            for r2 in refs[i:]:
                if not (r1.is_write or r2.is_write):
                    continue
                if r1.subs is None or r2.subs is None:
                    # Unknown subscripts: conservative all-distance dep.
                    result = DependenceResult.unknown()
                elif r1.variant_syms or r2.variant_syms:
                    # A loop-variant scalar in a subscript invalidates
                    # the cross-iteration affine comparison.
                    result = DependenceResult.unknown()
                else:
                    if len(r1.subs) != len(r2.subs):
                        graph.mark_imprecise(
                            f"rank mismatch on array {name!r}"
                        )
                        result = DependenceResult.unknown()
                    else:
                        result = test_dependence(
                            r1.subs,
                            r2.subs,
                            lo=info.lo_const,
                            hi=info.hi_const,
                            step=info.step,
                        )
                if result.exists and not result.exact:
                    graph.mark_imprecise(
                        f"unknown-distance dependence on {name!r} between "
                        f"MI{r1.mi} and MI{r2.mi}"
                    )
                for kind, src, dst, distance, exact in raise_to_mi_edges(
                    result, r1, r2
                ):
                    add(kind, src, dst, distance, name, exact)

    # ---- scalar dependences ----------------------------------------------
    for dep in scalar_dependences(stmts, info.var):
        add(dep.kind, dep.src, dep.dst, dep.distance, dep.var, True)

    from repro.obs import get_tracer

    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "ddg.build",
            nodes=graph.n,
            edges=len(graph.edges),
            loop_carried=len(graph.loop_carried()),
            precise=graph.precise,
            reasons=list(graph.reasons),
        )
    return graph
