"""Scalar (register) dependences between multi-instructions.

Given the ordered list of MI statements of a loop body, this module
computes flow/anti/output dependences carried by scalar variables, with
iteration distances 0 (intra-iteration) or 1 (loop-carried through the
back edge) and proper *kill* analysis: an unconditional redefinition of
a scalar between a def and a use severs the dependence.

Defs under an ``if`` (predicated MIs) are treated as *non-killing* defs:
they generate dependences but do not terminate earlier values, which is
the conservative contract predication requires.

The loop's own index variable is excluded — the loop structure carries
it, and SLMS rewrites it explicitly during kernel construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.lang.ast_nodes import Assign, If, Stmt, Var
from repro.lang.visitors import used_scalars


@dataclass(frozen=True)
class ScalarDep:
    """A scalar dependence edge between MI positions.

    ``distance`` 0 means same iteration (``src`` precedes ``dst`` in the
    body), 1 means carried to the next iteration.
    """

    kind: str  # "flow" | "anti" | "output"
    src: int
    dst: int
    var: str
    distance: int


def _stmt_defs(stmt: Stmt) -> Tuple[Set[str], Set[str]]:
    """Return (unconditional defs, conditional defs) of scalars."""
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, Var):
            return {stmt.target.name}, set()
        return set(), set()
    if isinstance(stmt, If):
        cond_defs: Set[str] = set()
        for s in list(stmt.then) + list(stmt.els):
            uncond, cond = _stmt_defs(s)
            cond_defs |= uncond | cond
        return set(), cond_defs
    return set(), set()


def scalar_dependences(
    stmts: Sequence[Stmt],
    index_var: str,
) -> List[ScalarDep]:
    """All scalar dependences among the ordered MI statements."""
    n = len(stmts)
    uses: List[Set[str]] = []
    kills: List[Set[str]] = []  # unconditional defs
    defs: List[Set[str]] = []  # all defs (killing or not)
    for stmt in stmts:
        uncond, cond = _stmt_defs(stmt)
        uses.append({v for v in used_scalars(stmt) if v != index_var})
        kills.append({v for v in uncond if v != index_var})
        defs.append({v for v in (uncond | cond) if v != index_var})

    variables: Set[str] = set()
    for s in defs:
        variables |= s
    # Only variables written somewhere in the body create dependences.

    edges: List[ScalarDep] = []
    seen: Set[Tuple[str, int, int, str, int]] = set()

    def emit(kind: str, src: int, dst: int, var: str, distance: int) -> None:
        key = (kind, src, dst, var, distance)
        if key not in seen:
            seen.add(key)
            edges.append(ScalarDep(kind, src, dst, var, distance))

    for var in sorted(variables):
        def_positions = [m for m in range(n) if var in defs[m]]
        use_positions = [m for m in range(n) if var in uses[m]]
        kill_positions = [m for m in range(n) if var in kills[m]]

        def killed_between(start: int, end: int) -> bool:
            """Any kill at positions start < p < end (same iteration)?"""
            return any(start < p < end for p in kill_positions)

        def killed_wrapping(after: int, before: int) -> bool:
            """Any kill after ``after`` to body end, or body start to
            strictly before ``before`` (the back-edge path)?"""
            return any(p > after for p in kill_positions) or any(
                p < before for p in kill_positions
            )

        # ---- flow: def at a reaches use at b ------------------------------
        for a in def_positions:
            for b in use_positions:
                if a < b and not killed_between(a, b):
                    emit("flow", a, b, var, 0)
                # Loop-carried: value leaves iteration i, read in i+1.
                if not killed_wrapping(a, b):
                    emit("flow", a, b, var, 1)

        # ---- anti: use at a, later def at b overwrites --------------------
        for a in use_positions:
            for b in def_positions:
                if a < b and not killed_between(a, b):
                    emit("anti", a, b, var, 0)
                if not killed_wrapping(a, b):
                    emit("anti", a, b, var, 1)

        # ---- output: def at a, def at b -----------------------------------
        for a in def_positions:
            for b in def_positions:
                if a < b and not killed_between(a, b):
                    emit("output", a, b, var, 0)
                if not killed_wrapping(a, b):
                    emit("output", a, b, var, 1)

    return edges
