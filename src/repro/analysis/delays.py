"""Source-level delay model (paper §3.5).

At source level there are no pipeline stalls, so the paper defines the
delay of a dependence edge purely from MI positions, chosen so that the
sum of delays along every dependence cycle is at least the number of
edges in the cycle:

1. ``delay(MIᵢ, MIᵢ) = 1``        (loop-carried self dependence)
2. ``delay(MIᵢ, MIᵢ₊₁) = 1``      (consecutive MIs)
3. forward edge ``i < j``: the maximal delay along any path from
   ``MIᵢ`` to ``MIⱼ`` — with unit delays between consecutive MIs this
   is exactly ``j − i``
4. back edge ``i > j``: ``delay = 1``

With these delays, Fig. 8's cycle ``c→d→f→c`` gets ``1 + 2 + 1`` over
distance 2, i.e. MII 2, matching the paper.
"""

from __future__ import annotations


def edge_delay(src: int, dst: int) -> int:
    """Delay of a dependence edge between MI positions ``src`` and ``dst``."""
    if src == dst:
        return 1  # rule 1: self dependence
    if dst > src:
        return dst - src  # rules 2+3: forward edge, max unit-delay path
    return 1  # rule 4: back edge
