"""Integer linear feasibility via Fourier–Motzkin elimination.

This is the "omega-lite" core standing in for Pugh's Omega test, which
the paper's Tiny implementation used for exact dependence analysis.  It
decides (or conservatively approximates) whether a system of integer
linear constraints has a solution:

* equalities are removed first by a GCD divisibility check and, where a
  variable has a ±1 coefficient, exact substitution;
* remaining variables are eliminated by combining lower and upper
  bounds.  When either coefficient is 1 the combination is exact; when
  both exceed 1 we also track Pugh's *dark shadow*
  (``b·p + a·q ≥ (a−1)(b−1)``), giving a sound three-valued answer.

The verdict is :data:`FEASIBLE`, :data:`INFEASIBLE`, or :data:`MAYBE`
(real shadow feasible but dark shadow not — the classic Omega test would
splinter; dependence analysis treats MAYBE as "assume dependent").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Tuple

FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
MAYBE = "maybe"

# Elimination can square the constraint count per variable; bail out to
# MAYBE (conservative) rather than burn unbounded time.
_MAX_CONSTRAINTS = 4000


@dataclass
class _Linear:
    """``Σ coeffs[v]·v + const`` with integer coefficients."""

    coeffs: Dict[str, int]
    const: int

    def normalized(self) -> "_Linear":
        coeffs = {v: c for v, c in self.coeffs.items() if c != 0}
        divisor = 0
        for c in coeffs.values():
            divisor = gcd(divisor, abs(c))
        if divisor > 1:
            # For an inequality  Σ a_i x_i + c >= 0  dividing by g gives
            # Σ (a_i/g) x_i + floor(c/g) >= 0  (tightening is sound).
            coeffs = {v: c // divisor for v, c in coeffs.items()}
            const = self.const // divisor  # floor division tightens >= 0
            return _Linear(coeffs, const)
        return _Linear(coeffs, self.const)


@dataclass
class IntegerSystem:
    """A conjunction of integer linear equalities and inequalities.

    Build with :meth:`add_eq` / :meth:`add_ge`; terms are ``{var: coeff}``
    dicts plus a constant.  ``add_ge(t, c)`` asserts ``t + c >= 0``.
    """

    equalities: List[_Linear] = field(default_factory=list)
    inequalities: List[_Linear] = field(default_factory=list)

    def add_eq(self, coeffs: Dict[str, int], const: int = 0) -> None:
        self.equalities.append(_Linear(dict(coeffs), const))

    def add_ge(self, coeffs: Dict[str, int], const: int = 0) -> None:
        self.inequalities.append(_Linear(dict(coeffs), const))

    def variables(self) -> List[str]:
        names = set()
        for lin in self.equalities + self.inequalities:
            names.update(v for v, c in lin.coeffs.items() if c != 0)
        return sorted(names)


def _substitute_eq(target: _Linear, var: str, replacement: _Linear, var_coeff: int) -> _Linear:
    """Replace ``var`` in ``target`` given ``var_coeff·var + replacement = 0``
    with ``|var_coeff| == 1`` (so ``var = -replacement/var_coeff`` exactly)."""
    c = target.coeffs.get(var, 0)
    if c == 0:
        return target
    # var = -replacement / var_coeff ; var_coeff is ±1.
    coeffs = dict(target.coeffs)
    coeffs[var] = 0
    sign = -var_coeff  # var = sign * replacement
    for v, rc in replacement.coeffs.items():
        coeffs[v] = coeffs.get(v, 0) + c * sign * rc
    const = target.const + c * sign * replacement.const
    return _Linear(coeffs, const)


def is_feasible(system: IntegerSystem) -> str:
    """Decide integer feasibility; returns FEASIBLE / INFEASIBLE / MAYBE."""
    # Equalities must NOT be GCD-normalized with floor division — the
    # divisibility of the constant is exactly what the GCD test checks.
    eqs = [_Linear(dict(lin.coeffs), lin.const) for lin in system.equalities]
    ineqs = [lin.normalized() for lin in system.inequalities]
    exact = True

    # --- equality elimination -------------------------------------------
    progress = True
    while eqs and progress:
        progress = False
        for idx, eq in enumerate(eqs):
            coeffs = {v: c for v, c in eq.coeffs.items() if c != 0}
            if not coeffs:
                if eq.const != 0:
                    return INFEASIBLE
                eqs.pop(idx)
                progress = True
                break
            g = 0
            for c in coeffs.values():
                g = gcd(g, abs(c))
            if eq.const % g != 0:
                return INFEASIBLE  # GCD test
            if g > 1:
                coeffs = {v: c // g for v, c in coeffs.items()}
                eq = _Linear(coeffs, eq.const // g)
                eqs[idx] = eq
            unit = next((v for v, c in coeffs.items() if abs(c) == 1), None)
            if unit is not None:
                var_coeff = coeffs[unit]
                rest = _Linear({v: c for v, c in coeffs.items() if v != unit}, eq.const)
                eqs = [
                    _substitute_eq(other, unit, rest, var_coeff)
                    for j, other in enumerate(eqs)
                    if j != idx
                ]
                ineqs = [_substitute_eq(other, unit, rest, var_coeff) for other in ineqs]
                ineqs = [lin.normalized() for lin in ineqs]
                progress = True
                break
        else:
            break
    # Any leftover equalities (no unit coefficient): relax to two ineqs.
    for eq in eqs:
        if not any(eq.coeffs.values()):
            if eq.const != 0:
                return INFEASIBLE
            continue
        exact = False  # the pair of inequalities loses integrality info
        ineqs.append(_Linear(dict(eq.coeffs), eq.const))
        ineqs.append(_Linear({v: -c for v, c in eq.coeffs.items()}, -eq.const))

    # --- Fourier–Motzkin on inequalities ------------------------------------
    real = [lin.normalized() for lin in ineqs]
    dark = [_Linear(dict(lin.coeffs), lin.const) for lin in real]

    def eliminate(constraints: List[_Linear], dark_mode: bool) -> Tuple[str, List[_Linear]]:
        nonlocal exact
        current = constraints
        while True:
            variables = sorted(
                {v for lin in current for v, c in lin.coeffs.items() if c != 0}
            )
            if not variables:
                break
            # Pick the variable with the fewest lower*upper combinations.
            def cost(var: str) -> int:
                lowers = sum(1 for lin in current if lin.coeffs.get(var, 0) > 0)
                uppers = sum(1 for lin in current if lin.coeffs.get(var, 0) < 0)
                return lowers * uppers - lowers - uppers

            var = min(variables, key=cost)
            lowers = [lin for lin in current if lin.coeffs.get(var, 0) > 0]
            uppers = [lin for lin in current if lin.coeffs.get(var, 0) < 0]
            others = [lin for lin in current if lin.coeffs.get(var, 0) == 0]
            new: List[_Linear] = list(others)
            for lo in lowers:
                a = lo.coeffs[var]
                for up in uppers:
                    b = -up.coeffs[var]
                    coeffs: Dict[str, int] = {}
                    for v, c in lo.coeffs.items():
                        if v != var:
                            coeffs[v] = coeffs.get(v, 0) + b * c
                    for v, c in up.coeffs.items():
                        if v != var:
                            coeffs[v] = coeffs.get(v, 0) + a * c
                    const = b * lo.const + a * up.const
                    if a > 1 and b > 1:
                        if dark_mode:
                            const -= (a - 1) * (b - 1)
                        else:
                            exact = False  # real shadow only: may overcount
                    new.append(_Linear(coeffs, const).normalized())
            if len(new) > _MAX_CONSTRAINTS:
                return MAYBE, []
            current = new
        for lin in current:
            if lin.const < 0:
                return INFEASIBLE, []
        return FEASIBLE, current

    real_verdict, _ = eliminate(real, dark_mode=False)
    if real_verdict == INFEASIBLE:
        return INFEASIBLE
    if real_verdict == MAYBE:
        return MAYBE
    if exact:
        return FEASIBLE
    dark_verdict, _ = eliminate(dark, dark_mode=True)
    if dark_verdict == FEASIBLE:
        return FEASIBLE
    return MAYBE
