"""Dataflow analysis framework over the statement-level control-flow graph.

The package provides one generic engine and three concrete analyses:

* :mod:`repro.analysis.dataflow.cfg` — a statement-granularity CFG for
  the C subset (loops, branches, ``break``/``continue``), built without
  cloning so results map back onto the caller's AST nodes;
* :mod:`repro.analysis.dataflow.solver` — an iterative worklist solver
  with per-edge refinement hooks and widening at loop heads;
* :mod:`repro.analysis.dataflow.reaching` — reaching definitions over
  scalars, including "uninitialized" pseudo-definitions for declared
  but unassigned names;
* :mod:`repro.analysis.dataflow.liveness` — backward liveness (every
  declared scalar is observable at program exit, so dead stores are
  writes provably overwritten before any read);
* :mod:`repro.analysis.dataflow.intervals` — integer value-range
  analysis with condition refinement on branch edges, the engine behind
  ``slms lint``'s array-bounds proofs.

``slms lint`` (:mod:`repro.verify.lint`) and the applicability advisor
(:mod:`repro.core.advisor`) are the two in-tree consumers; see
``docs/ANALYSIS.md`` for the lattice/transfer definitions.
"""

from repro.analysis.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow.intervals import (
    Interval,
    IntervalAnalysis,
    eval_interval,
    interval_envs,
)
from repro.analysis.dataflow.liveness import LivenessAnalysis, live_sets
from repro.analysis.dataflow.reaching import (
    Def,
    ReachingDefsAnalysis,
    reaching_defs,
)
from repro.analysis.dataflow.solver import DataflowAnalysis, DataflowResult, solve

__all__ = [
    "CFG",
    "CFGNode",
    "DataflowAnalysis",
    "DataflowResult",
    "Def",
    "Interval",
    "IntervalAnalysis",
    "LivenessAnalysis",
    "ReachingDefsAnalysis",
    "build_cfg",
    "eval_interval",
    "interval_envs",
    "live_sets",
    "reaching_defs",
    "solve",
]
