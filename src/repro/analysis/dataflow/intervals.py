"""Integer interval (value-range) analysis.

The abstract value is an environment ``{name: Interval}``; a missing
name means "unknown" (⊤ = [-∞, +∞]) and the unreachable state is
``None`` (⊥).  Transfer evaluates right-hand sides with interval
arithmetic; branch edges refine the environment with the branch
condition (``i < N`` bounds ``i`` along the ``true`` edge), and loop
heads widen unstable bounds to ±∞ — the classic combination that turns
``for (i = 0; i < 300; i++)`` into the *exact* fact ``i ∈ [0, 299]``
inside the body.

``slms lint`` uses the per-node environments to prove (or refute)
array-subscript bounds; the fuzz ``oob`` oracle relies on the analysis
being exact for affine subscripts under literal bounds, which is what
makes "no false negatives on the generated family" a checkable claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.dataflow.cfg import CFG, CFGNode, FALSE, TRUE
from repro.analysis.dataflow.solver import DataflowAnalysis, DataflowResult, solve
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)

INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ±∞ endpoints allowed."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ------------------------------------------------------
    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    # -- predicates --------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo == -INF and self.hi == INF

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def inside(self, lo: float, hi: float) -> bool:
        """Entirely within ``[lo, hi]``."""
        return self.lo >= lo and self.hi <= hi

    def disjoint(self, lo: float, hi: float) -> bool:
        """No overlap with ``[lo, hi]``."""
        return self.hi < lo or self.lo > hi

    # -- lattice -----------------------------------------------------------
    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widened(self, newer: "Interval") -> "Interval":
        return Interval(
            self.lo if newer.lo >= self.lo else -INF,
            self.hi if newer.hi <= self.hi else INF,
        )

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            _mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(products), max(products))

    def __str__(self) -> str:
        def fmt(v: float) -> str:
            if v == INF:
                return "+inf"
            if v == -INF:
                return "-inf"
            return str(int(v)) if float(v).is_integer() else str(v)

        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


def _mul(a: float, b: float) -> float:
    # IEEE says inf * 0 = nan; in interval arithmetic the product of a
    # zero bound with an unbounded one is 0.
    if a == 0 or b == 0:
        return 0.0
    return a * b


Env = Optional[Dict[str, Interval]]  # None = unreachable (⊥)


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


def eval_interval(expr: Expr, env: Dict[str, Interval]) -> Interval:
    """Interval of ``expr`` under ``env`` (⊤ for anything unmodelled)."""
    if isinstance(expr, IntLit):
        return Interval.point(expr.value)
    if isinstance(expr, FloatLit):
        return Interval.point(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, Interval.top())
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            return -eval_interval(expr.operand, env)
        if expr.op == "!":
            return Interval(0, 1)
        return Interval.top()
    if isinstance(expr, BinOp):
        return _eval_binop(expr, env)
    if isinstance(expr, Ternary):
        return eval_interval(expr.then, env).hull(
            eval_interval(expr.els, env)
        )
    if isinstance(expr, Call):
        return _eval_call(expr, env)
    if isinstance(expr, ArrayRef):
        return Interval.top()
    return Interval.top()


def _eval_binop(expr: BinOp, env: Dict[str, Interval]) -> Interval:
    op = expr.op
    if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
        return Interval(0, 1)
    left = eval_interval(expr.left, env)
    right = eval_interval(expr.right, env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return _eval_div(left, right)
    if op == "%":
        return _eval_mod(left, right)
    return Interval.top()


def _eval_div(left: Interval, right: Interval) -> Interval:
    # Only safe when the divisor provably excludes zero.
    if right.contains(0) or right.is_top:
        return Interval.top()
    quotients = []
    for a in (left.lo, left.hi):
        for b in (right.lo, right.hi):
            if math.isinf(a) or math.isinf(b):
                return Interval.top()
            quotients.append(a / b)
    # C division truncates toward zero; the true-quotient hull padded to
    # the surrounding integers is a sound overapproximation.
    return Interval(math.floor(min(quotients)), math.ceil(max(quotients)))


def _eval_mod(left: Interval, right: Interval) -> Interval:
    if right.contains(0) or math.isinf(right.lo) or math.isinf(right.hi):
        return Interval.top()
    bound = max(abs(right.lo), abs(right.hi)) - 1
    lo = -bound if left.lo < 0 else 0
    hi = bound if left.hi > 0 else 0
    return Interval(min(lo, 0), max(hi, 0))


def _eval_call(expr: Call, env: Dict[str, Interval]) -> Interval:
    args = [eval_interval(a, env) for a in expr.args]
    if expr.name == "abs" and len(args) == 1:
        a = args[0]
        lo = 0.0 if a.contains(0) else min(abs(a.lo), abs(a.hi))
        return Interval(lo, max(abs(a.lo), abs(a.hi)))
    if expr.name == "min" and len(args) == 2:
        return Interval(
            min(args[0].lo, args[1].lo), min(args[0].hi, args[1].hi)
        )
    if expr.name == "max" and len(args) == 2:
        return Interval(
            max(args[0].lo, args[1].lo), max(args[0].hi, args[1].hi)
        )
    return Interval.top()


# ---------------------------------------------------------------------------
# condition refinement
# ---------------------------------------------------------------------------

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def refine_env(
    cond: Expr, assume_true: bool, env: Dict[str, Interval]
) -> Env:
    """``env`` strengthened by assuming ``cond`` is true (or false).

    Returns ``None`` when the assumption is provably impossible —
    marking the edge unreachable.  Only comparison shapes with a bare
    variable on one side are narrowed; everything else passes through.
    """
    if isinstance(cond, UnaryOp) and cond.op == "!":
        return refine_env(cond.operand, not assume_true, env)
    if not isinstance(cond, BinOp):
        return env
    op = cond.op
    if op == "&&" and assume_true:
        first = refine_env(cond.left, True, env)
        return None if first is None else refine_env(cond.right, True, first)
    if op == "||" and not assume_true:
        first = refine_env(cond.left, False, env)
        return None if first is None else refine_env(cond.right, False, first)
    if op not in _FLIP:
        return env
    if not assume_true:
        op = _NEGATE[op]
    out = env
    if isinstance(cond.left, Var):
        out = _narrow(out, cond.left.name, op,
                      eval_interval(cond.right, env))
        if out is None:
            return None
    if isinstance(cond.right, Var):
        out = _narrow(out, cond.right.name, _FLIP[op],
                      eval_interval(cond.left, env))
    return out


def _narrow(
    env: Optional[Dict[str, Interval]], name: str, op: str, rhs: Interval
) -> Env:
    """Constrain ``name`` by ``name <op> rhs``; None when impossible."""
    if env is None:
        return None
    current = env.get(name, Interval.top())
    if op == "<":
        bound = Interval(-INF, rhs.hi - 1)
    elif op == "<=":
        bound = Interval(-INF, rhs.hi)
    elif op == ">":
        bound = Interval(rhs.lo + 1, INF)
    elif op == ">=":
        bound = Interval(rhs.lo, INF)
    elif op == "==":
        bound = rhs
    else:  # != prunes nothing unless rhs is a point at an endpoint
        if rhs.is_point and current.lo == rhs.lo == current.hi:
            return None
        return env
    narrowed = current.meet(bound)
    if narrowed is None:
        return None
    out = dict(env)
    out[name] = narrowed
    return out


# ---------------------------------------------------------------------------
# the analysis
# ---------------------------------------------------------------------------


class IntervalAnalysis(DataflowAnalysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> Env:
        return {}

    def initial(self, cfg: CFG, node: CFGNode) -> Env:
        return None  # unreachable until proven otherwise

    def join(self, values: List[Env]) -> Env:
        reachable = [v for v in values if v is not None]
        if not reachable:
            return None
        out: Dict[str, Interval] = {}
        first = reachable[0]
        for name in first:
            if all(name in v for v in reachable):
                interval = first[name]
                for v in reachable[1:]:
                    interval = interval.hull(v[name])
                if not interval.is_top:
                    out[name] = interval
        return out

    def transfer(self, node: CFGNode, value: Env) -> Env:
        if value is None:
            return None
        stmt = node.stmt
        if node.kind != "stmt" or stmt is None:
            return value
        if isinstance(stmt, Decl):
            if stmt.dims:
                return value
            out = dict(value)
            if stmt.init is not None:
                out[stmt.name] = eval_interval(stmt.init, value)
            else:
                out.pop(stmt.name, None)
            return out
        if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
            out = dict(value)
            rhs = eval_interval(stmt.expanded_value(), value)
            if rhs.is_top:
                out.pop(stmt.target.name, None)
            else:
                out[stmt.target.name] = rhs
            return out
        return value

    def refine(self, node: CFGNode, label, value: Env) -> Env:
        if value is None or node.cond is None or label is None:
            return value
        if label == TRUE:
            return refine_env(node.cond, True, value)
        if label == FALSE:
            return refine_env(node.cond, False, value)
        return value

    def widen(self, node: CFGNode, old: Env, new: Env) -> Env:
        if old is None or new is None:
            return new
        out: Dict[str, Interval] = {}
        for name, interval in new.items():
            if name in old:
                widened = old[name].widened(interval)
                if not widened.is_top:
                    out[name] = widened
            # names absent from the previous head value jump to ⊤
        return out


def interval_envs(cfg: CFG) -> DataflowResult:
    """Solve the interval analysis; ``inputs[n]`` is the environment in
    force just before node ``n`` executes (``None`` = unreachable)."""
    return solve(cfg, IntervalAnalysis())
