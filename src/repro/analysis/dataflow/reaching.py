"""Reaching definitions over scalars.

The lattice element is a frozenset of :class:`Def` facts.  A ``Decl``
with an initializer is a real definition; a ``Decl`` *without* one
generates an "uninitialized" pseudo-definition, so a use whose reaching
set contains the pseudo-def may observe an undefined value (the lint
A305 warning).  Names never declared in the analyzed fragment (loop
indices of kernel excerpts, harness-supplied scalars) get no pseudo-def
and are treated as externally defined.
"""

from __future__ import annotations

from typing import FrozenSet, List, NamedTuple

from repro.analysis.dataflow.cfg import CFG, CFGNode, node_defs
from repro.analysis.dataflow.solver import DataflowAnalysis, DataflowResult, solve
from repro.lang.ast_nodes import Decl


class Def(NamedTuple):
    """One definition fact: ``var`` defined at CFG node ``node`` (or the
    declared-but-never-assigned pseudo-def when ``uninit``)."""

    var: str
    node: int
    uninit: bool = False


Defs = FrozenSet[Def]


class ReachingDefsAnalysis(DataflowAnalysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> Defs:
        return frozenset()

    def initial(self, cfg: CFG, node: CFGNode) -> Defs:
        return frozenset()

    def join(self, values: List[Defs]) -> Defs:
        out: set = set()
        for value in values:
            out |= value
        return frozenset(out)

    def transfer(self, node: CFGNode, value: Defs) -> Defs:
        killed = node_defs(node)
        if isinstance(node.stmt, Decl) and not node.stmt.dims:
            killed = killed | {node.stmt.name}
        if not killed:
            return value
        out = {d for d in value if d.var not in killed}
        stmt = node.stmt
        if isinstance(stmt, Decl):
            out.add(Def(stmt.name, node.id, uninit=stmt.init is None))
        else:
            for var in node_defs(node):
                out.add(Def(var, node.id))
        return frozenset(out)


def reaching_defs(cfg: CFG) -> DataflowResult:
    """Solve reaching definitions; ``inputs[n]`` is the set reaching
    node ``n``'s uses."""
    return solve(cfg, ReachingDefsAnalysis())
