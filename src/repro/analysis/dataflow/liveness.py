"""Backward liveness over scalars.

A name is live at a point when some path from it reaches a read before
any write.  The exit boundary is *every declared scalar*: the simulator
reports final scalar values as observable program state (the fuzz
oracle compares them bit-for-bit), so a value held at exit is a live
value, and "dead store" means *provably overwritten before any read on
every path* — never merely "written late".

``slms lint`` derives two facts from this analysis: A304 dead-store
warnings and the per-loop register-pressure estimate (the maximum
number of simultaneously live scalars across the loop body, an upper
bound on what a backend must keep in registers before spilling).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.analysis.dataflow.cfg import CFG, CFGNode, node_defs, node_uses
from repro.analysis.dataflow.solver import DataflowAnalysis, DataflowResult, solve
from repro.lang.ast_nodes import Decl

Live = FrozenSet[str]


class LivenessAnalysis(DataflowAnalysis):
    direction = "backward"

    def __init__(self, live_at_exit: Set[str]):
        self.live_at_exit = frozenset(live_at_exit)

    def boundary(self, cfg: CFG) -> Live:
        return self.live_at_exit

    def initial(self, cfg: CFG, node: CFGNode) -> Live:
        return frozenset()

    def join(self, values: List[Live]) -> Live:
        out: set = set()
        for value in values:
            out |= value
        return frozenset(out)

    def transfer(self, node: CFGNode, value: Live) -> Live:
        # Backward: value is live-out; result is live-in = use ∪ (out − def).
        return frozenset(node_uses(node) | (value - node_defs(node)))


def declared_scalars(cfg: CFG) -> Set[str]:
    """Names declared as scalars anywhere in the analyzed fragment."""
    out: Set[str] = set()
    for node in cfg.nodes:
        if isinstance(node.stmt, Decl) and not node.stmt.dims:
            out.add(node.stmt.name)
    return out


def live_sets(cfg: CFG, live_at_exit: Set[str] = None) -> DataflowResult:
    """Solve liveness.  For a backward analysis ``inputs[n]`` is the
    node's live-*out* set and ``outputs[n]`` its live-*in* set."""
    if live_at_exit is None:
        live_at_exit = declared_scalars(cfg)
    return solve(cfg, LivenessAnalysis(live_at_exit))
