"""Generic iterative dataflow solver.

An analysis implements the :class:`DataflowAnalysis` protocol — a join
semilattice plus node transfer functions — and :func:`solve` iterates a
worklist to the least fixpoint.  Two hooks beyond the textbook core:

* ``refine(node, label, value)`` — applied per *edge* when propagating
  out of a branch node, so an analysis can strengthen facts with the
  branch condition (interval analysis narrows ``i`` along the ``true``
  edge of ``i < N``);
* ``widen(node, old, new)`` — applied at the CFG's loop heads once a
  head has been revisited :data:`WIDEN_AFTER` times, which bounds the
  iteration count for infinite-height lattices (intervals).

Finite-lattice analyses (reaching definitions, liveness) terminate
without widening; the hook defaults to identity-on-``new``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.dataflow.cfg import CFG, CFGNode

#: Visits of a widen point before widening kicks in.
WIDEN_AFTER = 2

#: Hard cap on node visits — a diverging transfer function is a bug in
#: the analysis, surfaced as an error instead of a hang.
MAX_VISITS_PER_NODE = 1000


class DataflowAnalysis:
    """Base protocol; concrete analyses override the lattice pieces."""

    #: ``"forward"`` or ``"backward"``.
    direction = "forward"

    def boundary(self, cfg: CFG) -> Any:
        """Value at the entry (forward) / exit (backward) node."""
        raise NotImplementedError

    def initial(self, cfg: CFG, node: CFGNode) -> Any:
        """The bottom value every other node starts from."""
        raise NotImplementedError

    def join(self, values: List[Any]) -> Any:
        raise NotImplementedError

    def transfer(self, node: CFGNode, value: Any) -> Any:
        raise NotImplementedError

    def refine(self, node: CFGNode, label: Optional[str], value: Any) -> Any:
        return value

    def widen(self, node: CFGNode, old: Any, new: Any) -> Any:
        return new

    def equal(self, a: Any, b: Any) -> bool:
        return a == b


@dataclass
class DataflowResult:
    """Fixpoint values per node: ``inputs`` before the node's transfer
    in analysis direction, ``outputs`` after."""

    inputs: Dict[int, Any] = field(default_factory=dict)
    outputs: Dict[int, Any] = field(default_factory=dict)

    def value_in(self, node_id: int) -> Any:
        return self.inputs.get(node_id)

    def value_out(self, node_id: int) -> Any:
        return self.outputs.get(node_id)


def solve(cfg: CFG, analysis: DataflowAnalysis) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to its least fixpoint."""
    forward = analysis.direction == "forward"
    start = cfg.entry if forward else cfg.exit
    edges_in = cfg.preds if forward else cfg.succs
    edges_out = cfg.succs if forward else cfg.preds

    order = cfg.rpo()
    if not forward:
        order = list(reversed(order))
    position = {node_id: i for i, node_id in enumerate(order)}

    result = DataflowResult()
    for node in cfg.nodes:
        result.inputs[node.id] = analysis.initial(cfg, node)
        result.outputs[node.id] = analysis.transfer(
            node, result.inputs[node.id]
        )
    result.inputs[start] = analysis.boundary(cfg)
    result.outputs[start] = analysis.transfer(
        cfg.node(start), result.inputs[start]
    )

    visits: Dict[int, int] = {}
    worklist = sorted(
        (n.id for n in cfg.nodes), key=lambda i: position.get(i, len(order))
    )
    pending = set(worklist)
    while worklist:
        node_id = worklist.pop(0)
        pending.discard(node_id)
        node = cfg.node(node_id)
        visits[node_id] = visits.get(node_id, 0) + 1
        if visits[node_id] > MAX_VISITS_PER_NODE:
            raise RuntimeError(
                f"dataflow solver did not converge at node {node_id}"
            )

        incoming = [
            analysis.refine(cfg.node(src), label, result.outputs[src])
            for src, label in edges_in.get(node_id, ())
        ]
        if node_id == start:
            incoming.append(analysis.boundary(cfg))
        if not incoming:
            new_in = result.inputs[node_id]
        else:
            new_in = analysis.join(incoming)
        if (
            node_id in cfg.widen_points
            and visits[node_id] > WIDEN_AFTER
        ):
            new_in = analysis.widen(node, result.inputs[node_id], new_in)

        new_out = analysis.transfer(node, new_in)
        result.inputs[node_id] = new_in
        if analysis.equal(new_out, result.outputs[node_id]):
            continue
        result.outputs[node_id] = new_out
        for succ, _label in edges_out.get(node_id, ()):
            if succ not in pending:
                pending.add(succ)
                worklist.append(succ)
        worklist.sort(key=lambda i: position.get(i, len(order)))
    return result


def iterate_nodes(cfg: CFG, kinds: Iterable[str] = ("stmt", "branch")):
    """Convenience: nodes of the given kinds in source order."""
    wanted = set(kinds)
    return [n for n in cfg.nodes if n.kind in wanted]
