"""Statement-level control-flow graph for the C subset.

Each executable statement becomes one node; ``If``/``For``/``While``
conditions become *branch* nodes whose outgoing edges carry a
``"true"``/``"false"`` label so analyses can refine facts per side
(interval analysis turns ``i < N`` into a bound on ``i`` along the body
edge).  ``ParGroup`` rows are flattened in their listed order — SLMS
guarantees that order is a legal serialization.

The builder never clones: ``CFGNode.stmt`` aliases the caller's AST, so
analysis results can be keyed back to source statements (and their
``loc``) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ast_nodes import (
    Assign,
    Break,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    For,
    If,
    ParGroup,
    Stmt,
    While,
)
from repro.lang.errors import SourceLocation

#: Edge labels for the two sides of a branch node (plain edges are None).
TRUE, FALSE = "true", "false"


@dataclass
class CFGNode:
    """One CFG node.

    ``kind`` is ``"entry"``, ``"exit"``, ``"stmt"`` (Decl / Assign /
    ExprStmt / loop init / loop step), or ``"branch"`` (an ``If`` or
    loop condition, held in ``cond``).
    """

    id: int
    kind: str
    stmt: Optional[Stmt] = None
    cond: Optional[Expr] = None

    @property
    def loc(self) -> SourceLocation:
        node = self.stmt if self.stmt is not None else self.cond
        return getattr(node, "loc", None) or SourceLocation()


@dataclass
class CFG:
    """The graph: nodes, labelled edges, and the loop-head widen set."""

    nodes: List[CFGNode] = field(default_factory=list)
    succs: Dict[int, List[Tuple[int, Optional[str]]]] = field(
        default_factory=dict
    )
    preds: Dict[int, List[Tuple[int, Optional[str]]]] = field(
        default_factory=dict
    )
    entry: int = 0
    exit: int = 0
    #: Loop-head branch nodes — the solver's widening points.
    widen_points: Set[int] = field(default_factory=set)

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    def stmt_nodes(self) -> List[CFGNode]:
        """Every non-synthetic node, in creation (≈ source) order."""
        return [n for n in self.nodes if n.kind in ("stmt", "branch")]

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry (forward iteration order)."""
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative postorder DFS.
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        while stack:
            node, idx = stack.pop()
            if idx == 0:
                if node in seen:
                    continue
                seen.add(node)
            succs = self.succs.get(node, ())
            if idx < len(succs):
                stack.append((node, idx + 1))
                nxt = succs[idx][0]
                if nxt not in seen:
                    stack.append((nxt, 0))
            else:
                order.append(node)
        order.reverse()
        return order


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def new(self, kind: str, stmt: Optional[Stmt] = None,
            cond: Optional[Expr] = None) -> int:
        node = CFGNode(len(self.cfg.nodes), kind, stmt, cond)
        self.cfg.nodes.append(node)
        self.cfg.succs[node.id] = []
        self.cfg.preds[node.id] = []
        return node.id

    def edge(self, src: int, dst: int, label: Optional[str] = None) -> None:
        self.cfg.succs[src].append((dst, label))
        self.cfg.preds[dst].append((src, label))

    def attach(self, frontier: Sequence[Tuple[int, Optional[str]]],
               dst: int) -> None:
        for src, label in frontier:
            self.edge(src, dst, label)

    # ``frontier`` is the set of dangling (node, label) edges waiting for
    # the next statement; lowering a statement consumes it and returns
    # the new frontier (empty after break/continue — code after them in
    # the same block is unreachable and gets no incoming edges).
    def lower_block(
        self,
        stmts: Sequence[Stmt],
        frontier: List[Tuple[int, Optional[str]]],
        breaks: Optional[List[Tuple[int, Optional[str]]]],
        continue_to: Optional[int],
    ) -> List[Tuple[int, Optional[str]]]:
        for stmt in stmts:
            frontier = self.lower_stmt(stmt, frontier, breaks, continue_to)
        return frontier

    def lower_stmt(
        self,
        stmt: Stmt,
        frontier: List[Tuple[int, Optional[str]]],
        breaks: Optional[List[Tuple[int, Optional[str]]]],
        continue_to: Optional[int],
    ) -> List[Tuple[int, Optional[str]]]:
        if isinstance(stmt, ParGroup):
            return self.lower_block(stmt.stmts, frontier, breaks, continue_to)

        if isinstance(stmt, If):
            branch = self.new("branch", stmt, stmt.cond)
            self.attach(frontier, branch)
            out = self.lower_block(
                stmt.then, [(branch, TRUE)], breaks, continue_to
            )
            if stmt.els:
                out += self.lower_block(
                    stmt.els, [(branch, FALSE)], breaks, continue_to
                )
            else:
                out.append((branch, FALSE))
            return out

        if isinstance(stmt, For):
            init = self.new("stmt", stmt.init)
            self.attach(frontier, init)
            head = self.new("branch", stmt, stmt.cond)
            self.cfg.widen_points.add(head)
            self.edge(init, head)
            step = self.new("stmt", stmt.step)
            my_breaks: List[Tuple[int, Optional[str]]] = []
            body_out = self.lower_block(
                stmt.body, [(head, TRUE)], my_breaks, step
            )
            self.attach(body_out, step)
            self.edge(step, head)
            return [(head, FALSE)] + my_breaks

        if isinstance(stmt, While):
            head = self.new("branch", stmt, stmt.cond)
            self.cfg.widen_points.add(head)
            self.attach(frontier, head)
            my_breaks = []
            body_out = self.lower_block(
                stmt.body, [(head, TRUE)], my_breaks, head
            )
            self.attach(body_out, head)
            return [(head, FALSE)] + my_breaks

        if isinstance(stmt, Break):
            node = self.new("stmt", stmt)
            self.attach(frontier, node)
            if breaks is not None:
                breaks.append((node, None))
            return []

        if isinstance(stmt, Continue):
            node = self.new("stmt", stmt)
            self.attach(frontier, node)
            if continue_to is not None:
                self.edge(node, continue_to)
            return []

        # Decl / Assign / ExprStmt — one plain node.
        node = self.new("stmt", stmt)
        self.attach(frontier, node)
        return [(node, None)]


def build_cfg(stmts: Sequence[Stmt]) -> CFG:
    """Build the CFG of a statement list (a program body or loop body)."""
    builder = _Builder()
    entry = builder.new("entry")
    frontier = builder.lower_block(stmts, [(entry, None)], None, None)
    exit_node = builder.new("exit")
    builder.attach(frontier, exit_node)
    cfg = builder.cfg
    cfg.entry, cfg.exit = entry, exit_node
    return cfg


def node_uses(node: CFGNode) -> Set[str]:
    """Scalar names read by a node (branch conditions included)."""
    from repro.lang.visitors import collect_vars, used_scalars

    if node.kind == "branch":
        return collect_vars(node.cond) if node.cond is not None else set()
    if node.stmt is None:
        return set()
    if isinstance(node.stmt, Decl):
        return (
            collect_vars(node.stmt.init) if node.stmt.init is not None
            else set()
        )
    return used_scalars(node.stmt)


def node_defs(node: CFGNode) -> Set[str]:
    """Scalar names written by a node."""
    from repro.lang.visitors import defined_scalars

    if node.kind != "stmt" or node.stmt is None:
        return set()
    if isinstance(node.stmt, Decl):
        return {node.stmt.name} if not node.stmt.dims else set()
    return defined_scalars(node.stmt)
