"""Array dependence tests over affine subscript pairs.

:func:`test_dependence` answers: for two references to the same array,
for which iteration differences ``δ = i₂ − i₁`` can they touch the same
element?  The result is one of

* **no dependence** (``exists=False``),
* an exact **constant distance** (strong SIV — the only form SLMS can
  pipeline, since the modulo schedule needs a fixed iteration distance),
* **all distances** (ZIV with identical subscripts, e.g. ``A[0]`` in
  every iteration),
* **unknown** (non-constant or symbolic; Fourier–Motzkin is used to
  refute where possible, otherwise the loop is declined).

Distances are reported in *iteration* units: a loop stepping by 2 whose
subscripts differ by 4 has distance 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.affine import AffineExpr
from repro.analysis.fourier_motzkin import (
    INFEASIBLE,
    MAYBE,
    IntegerSystem,
    is_feasible,
)


@dataclass(frozen=True)
class DependenceResult:
    """Outcome of a dependence test between two references.

    ``exists``
        False only when the test *proved* independence.
    ``distance``
        The unique constant iteration distance when one exists
        (may be negative: ref2's iteration precedes ref1's).
    ``all_distances``
        True for ZIV-style conflicts occurring at every distance.
    ``exact``
        True when the answer is proven, False for conservative MAYBEs.
    """

    exists: bool
    distance: Optional[int] = None
    all_distances: bool = False
    exact: bool = True

    @staticmethod
    def independent() -> "DependenceResult":
        return DependenceResult(exists=False)

    @staticmethod
    def at(distance: int) -> "DependenceResult":
        return DependenceResult(exists=True, distance=distance)

    @staticmethod
    def everywhere() -> "DependenceResult":
        return DependenceResult(exists=True, all_distances=True)

    @staticmethod
    def unknown() -> "DependenceResult":
        return DependenceResult(exists=True, exact=False)

    @property
    def is_constant(self) -> bool:
        return self.exists and self.distance is not None


# Per-dimension verdicts used internally.
_NO = "no"
_ALL = "all"
_CONST = "const"
_UNKNOWN = "unknown"


def _test_dim(
    d1: AffineExpr, d2: AffineExpr
) -> Tuple[str, Optional[int]]:
    """Test one subscript dimension; returns (verdict, delta)."""
    a1, a2 = d1.coeff, d2.coeff
    if a1 == 0 and a2 == 0:
        # ZIV: loop-invariant on both sides.
        if d1 == d2:
            return _ALL, None
        if d1.syms == d2.syms:
            return _NO, None  # same symbols, different constants
        return _UNKNOWN, None  # e.g. A[j] vs A[k]
    if a1 == a2:
        # Strong SIV: a·i₁ + b₁ = a·i₂ + b₂  ⇒  δ = (b₁ − b₂)/a.
        if d1.syms != d2.syms:
            return _UNKNOWN, None
        diff = d1.offset - d2.offset
        if diff % a1 != 0:
            return _NO, None
        return _CONST, diff // a1
    # Weak SIV / general: distance varies with i (e.g. A[i] vs A[2i]).
    return _UNKNOWN, None


def _fm_refute(
    sub1: Sequence[AffineExpr],
    sub2: Sequence[AffineExpr],
    lo: Optional[int],
    hi: Optional[int],
) -> str:
    """Build the full integer system for the reference pair and test it."""
    system = IntegerSystem()
    for d1, d2 in zip(sub1, sub2):
        coeffs: dict = {}
        if d1.coeff:
            coeffs["i1"] = coeffs.get("i1", 0) + d1.coeff
        if d2.coeff:
            coeffs["i2"] = coeffs.get("i2", 0) - d2.coeff
        for name, c in d1.syms:
            coeffs[f"s_{name}"] = coeffs.get(f"s_{name}", 0) + c
        for name, c in d2.syms:
            coeffs[f"s_{name}"] = coeffs.get(f"s_{name}", 0) - c
        system.add_eq(coeffs, d1.offset - d2.offset)
    if lo is not None:
        system.add_ge({"i1": 1}, -lo)
        system.add_ge({"i2": 1}, -lo)
    if hi is not None:
        system.add_ge({"i1": -1}, hi - 1)
        system.add_ge({"i2": -1}, hi - 1)
    return is_feasible(system)


def test_dependence(
    sub1: Sequence[AffineExpr],
    sub2: Sequence[AffineExpr],
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    step: int = 1,
) -> DependenceResult:
    """Test whether two same-array references can conflict.

    ``sub1``/``sub2`` are per-dimension affine subscripts (same rank);
    ``lo``/``hi`` are the loop's concrete bounds when known
    (``for (i = lo; i < hi; …)``); ``step`` is the loop increment.
    The distance in the result is ``(i₂ − i₁) / step`` — iteration units.
    """
    if len(sub1) != len(sub2):
        raise ValueError("subscript rank mismatch")
    if step == 0:
        raise ValueError("loop step cannot be 0")

    deltas: list[int] = []
    saw_unknown = False
    for d1, d2 in zip(sub1, sub2):
        verdict, delta = _test_dim(d1, d2)
        if verdict == _NO:
            return DependenceResult.independent()
        if verdict == _CONST:
            deltas.append(delta)  # type: ignore[arg-type]
        elif verdict == _UNKNOWN:
            saw_unknown = True

    if deltas:
        if any(d != deltas[0] for d in deltas):
            # Two dimensions demand different iteration differences —
            # they can never be satisfied simultaneously.
            return DependenceResult.independent()
        delta = deltas[0]
        if delta % step != 0:
            return DependenceResult.independent()
        # Exact division; for negative steps this flips the sign so the
        # distance is always in execution-order iteration units.
        distance = delta // step
        # Bounds can kill a dependence whose distance exceeds the trip count.
        if lo is not None and hi is not None:
            trip = max(0, -(-(hi - lo) // abs(step)))  # ceil division
            if abs(distance) >= trip:
                return DependenceResult.independent()
        if saw_unknown:
            # Constant distance in one dim but another dim unresolved:
            # try to refute the whole system, else conservative.
            fm = _fm_refute(sub1, sub2, lo, hi)
            if fm == INFEASIBLE:
                return DependenceResult.independent()
            return DependenceResult(
                exists=True, distance=distance, exact=False
            )
        return DependenceResult.at(distance)

    if saw_unknown:
        fm = _fm_refute(sub1, sub2, lo, hi)
        if fm == INFEASIBLE:
            return DependenceResult.independent()
        result = DependenceResult.unknown()
        if fm == MAYBE:
            return result
        return result  # FEASIBLE but distance non-constant: still unknown

    # Every dimension said "all": the same element every iteration.
    return DependenceResult.everywhere()
