"""Loop distribution (fission).

Splits a loop into one loop per group of statements, where groups are
the strongly connected components of the statement dependence graph and
loops are emitted in topological (dependence) order.  Statements tied in
a dependence cycle stay together; everything else gets its own loop,
which is the classical enabler for vectorization and for applying SLMS
to the recurrence-free parts.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.analysis.ddg import build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import For
from repro.transforms.errors import TransformError


def distribute(loop: For) -> List[For]:
    """Distribute ``loop``; returns the ordered list of new loops."""
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    graph = build_ddg(loop.body, info)
    if not graph.precise:
        raise TransformError(
            "cannot prove distribution legal: " + "; ".join(graph.reasons)
        )
    n = len(loop.body)
    if n <= 1:
        return [loop.clone()]

    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(n))
    for edge in graph.edges:
        digraph.add_edge(edge.src, edge.dst)

    components = list(nx.strongly_connected_components(digraph))
    condensed = nx.condensation(digraph, scc=components)
    order = list(nx.topological_sort(condensed))

    loops: List[For] = []
    for comp_id in order:
        members = sorted(condensed.nodes[comp_id]["members"])
        new_loop = loop.clone()
        new_loop.body = [loop.body[m].clone() for m in members]
        loops.append(new_loop)
    return loops
