"""Loop reversal.

Legal only when the loop carries no dependence across iterations (every
dependence distance is 0): running iterations backwards then touches
disjoint data per iteration.  Loop-carried scalar dependences (including
floating-point accumulators, whose reassociation would change results
bit-for-bit) make reversal illegal and are declined.
"""

from __future__ import annotations

from repro.analysis.ddg import build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import Assign, BinOp, For, IntLit, Var
from repro.lang.visitors import fold_constants
from repro.transforms.errors import TransformError


def reverse(loop: For) -> For:
    """Return the reversed loop; raises :class:`TransformError` if illegal."""
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    graph = build_ddg(loop.body, info)
    if not graph.precise:
        raise TransformError(
            "cannot prove reversal legal: " + "; ".join(graph.reasons)
        )
    carried = graph.loop_carried()
    if carried:
        edge = carried[0]
        raise TransformError(
            f"loop-carried dependence on {edge.var!r} "
            f"(distance {edge.distance}) forbids reversal"
        )

    var = info.var
    step = info.step
    if step > 0:
        # for (i = lo; i < hi; i += s)  ->  runs lo, lo+s, ..., last.
        # Reversed: for (i = last; i >= lo; i -= s), with last = the
        # final executed value.  For literal bounds compute it exactly;
        # for symbolic bounds only step 1 has a closed form (hi - 1).
        if info.trip_count is not None:
            last = info.lo_const + (info.trip_count - 1) * step
            new_lo: object = IntLit(last)
        elif step == 1:
            new_lo = fold_constants(BinOp("-", info.hi.clone(), IntLit(1)))
        else:
            raise TransformError(
                "reversal of a symbolic-bound loop needs step 1"
            )
        return For(
            init=Assign(Var(var), new_lo),
            cond=BinOp(">", Var(var), fold_constants(BinOp("-", info.lo.clone(), IntLit(1)))),
            step=Assign(Var(var), IntLit(step), "-"),
            body=[s.clone() for s in loop.body],
        )
    # Downward loop: mirror of the above.
    if info.trip_count is not None:
        last = info.lo_const + (info.trip_count - 1) * step
        new_lo = IntLit(last)
    elif step == -1:
        new_lo = fold_constants(BinOp("+", info.hi.clone(), IntLit(1)))
    else:
        raise TransformError("reversal of a symbolic-bound loop needs step -1")
    return For(
        init=Assign(Var(var), new_lo),
        cond=BinOp("<", Var(var), fold_constants(BinOp("+", info.lo.clone(), IntLit(1)))),
        step=Assign(Var(var), IntLit(-step), "+"),
        body=[s.clone() for s in loop.body],
    )
