"""Classical source-level loop transformations (paper §6).

The point of a *source level* compiler is that modulo scheduling can be
combined freely with the standard loop-restructuring toolkit — applied
before SLMS to expose parallelism (interchange, fusion) or after it
(fusion of SLMSed loops), and SLMS itself can *enable* transformations
(Fig. 10: SLMS makes two unfusable loops fusable).

All transformations here follow the same contract as SLMS: they take
ASTs, never mutate their input, verify legality with the dependence
machinery from :mod:`repro.analysis`, and *decline* (raising
:class:`TransformError` or returning ``None``) when legality cannot be
proven.
"""

from repro.transforms.errors import TransformError
from repro.transforms.distribution import distribute
from repro.transforms.fusion import can_fuse, fuse
from repro.transforms.interchange import interchange
from repro.transforms.peel import peel
from repro.transforms.reversal import reverse
from repro.transforms.tiling import strip_mine, tile
from repro.transforms.unroll import unroll

__all__ = [
    "TransformError",
    "can_fuse",
    "distribute",
    "fuse",
    "interchange",
    "peel",
    "reverse",
    "strip_mine",
    "tile",
    "unroll",
]
