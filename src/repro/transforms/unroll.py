"""Loop unrolling.

§6 uses unrolling in two roles: resolving cases where the II is too
close to the MI count, and improving resource utilization of an SLMSed
kernel.  Unrolling is always legal: the main loop runs groups of
``factor`` consecutive iterations (bodies index-shifted by
``0, step, …, (factor−1)·step``) and a remainder loop finishes the
stragglers.  With literal bounds the remainder is emitted as
straight-line code.
"""

from __future__ import annotations

from typing import List

from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import Assign, BinOp, For, IntLit, Stmt, Var
from repro.lang.visitors import fold_constants, substitute_index
from repro.transforms.errors import TransformError


def unroll(loop: For, factor: int) -> List[Stmt]:
    """Unroll ``loop`` by ``factor``; returns the replacement statements."""
    if factor < 2:
        raise TransformError("unroll factor must be >= 2")
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    step = info.step
    var = info.var

    body: List[Stmt] = []
    for copy in range(factor):
        for stmt in loop.body:
            body.append(substitute_index(stmt.clone(), var, copy * step))

    # Main loop: run while a full group of `factor` iterations remains:
    # i + (factor-1)*step must still satisfy the bound.
    margin = (factor - 1) * step
    if margin >= 0:
        bound = BinOp("-", info.hi.clone(), IntLit(margin))
    else:
        bound = BinOp("+", info.hi.clone(), IntLit(-margin))
    bound = fold_constants(bound)
    cmp_op = "<" if step > 0 else ">"
    main = For(
        init=Assign(Var(var), info.lo.clone()),
        cond=BinOp(cmp_op, Var(var), bound),
        step=Assign(Var(var), IntLit(abs(step) * factor), "+" if step > 0 else "-"),
        body=body,
    )

    # Remainder: continue from wherever the main loop stopped.
    remainder = For(
        init=None,
        cond=BinOp(cmp_op, Var(var), info.hi.clone()),
        step=Assign(Var(var), IntLit(abs(step)), "+" if step > 0 else "-"),
        body=[s.clone() for s in loop.body],
    )

    trip = info.trip_count
    if trip is not None and trip % factor == 0:
        return [main]
    return [main, remainder]
