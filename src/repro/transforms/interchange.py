"""Loop interchange (§6).

Swaps the loops of a *perfect* 2-deep nest.  §6's motivating example:
``for j { for i { t = a[i,j]; a[i,j+1] = t; } }`` cannot be SLMSed (the
inner loop carries a flow dependence through ``a``), but after
interchange the inner-loop dependence vanishes and SLMS gets II = 1.

Legality: no dependence may have a direction vector that interchange
turns lexicographically negative, i.e. none may be ``(δ_outer > 0,
δ_inner < 0)``.  We compute exact per-variable distances for *separable*
subscripts (each dimension indexed by at most one of the two loop
variables — covers the paper's examples and the workload corpus) and
decline anything else.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.affine import AffineExpr, analyze_subscript
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import ArrayRef, Assign, For, If, Stmt
from repro.lang.visitors import collect_vars, defined_scalars, walk
from repro.transforms.errors import TransformError

# Distance along one loop variable: an exact integer, FREE (conflicts at
# every distance), or None meaning "no constraint computed yet".
FREE = "free"


def _per_var_distance(
    subs1: Tuple[AffineExpr, ...],
    subs2: Tuple[AffineExpr, ...],
    outer: str,
    inner: str,
) -> Optional[Tuple[object, object]]:
    """Exact (δ_outer, δ_inner) for separable subscript pairs.

    Returns ``None`` when provably independent; raises
    :class:`TransformError` for non-separable / non-affine shapes.
    """
    d_outer: object = FREE
    d_inner: object = FREE
    for a1, a2 in zip(subs1, subs2):
        # a1/a2 are affine in `inner`; the outer variable appears in syms.
        outer1 = dict(a1.syms).get(outer, 0)
        outer2 = dict(a2.syms).get(outer, 0)
        inner1, inner2 = a1.coeff, a2.coeff
        if (inner1 and outer1) or (inner2 and outer2):
            raise TransformError("coupled subscript (uses both loop vars)")
        rest1 = tuple((n, c) for n, c in a1.syms if n != outer)
        rest2 = tuple((n, c) for n, c in a2.syms if n != outer)
        if rest1 != rest2:
            raise TransformError("symbolic subscript mismatch")
        diff = a1.offset - a2.offset
        if inner1 or inner2:
            if inner1 != inner2:
                raise TransformError("weak-SIV subscript in interchange")
            if diff % inner1 != 0:
                return None
            delta = diff // inner1
            if d_inner is FREE:
                d_inner = delta
            elif d_inner != delta:
                return None
        elif outer1 or outer2:
            if outer1 != outer2:
                raise TransformError("weak-SIV subscript in interchange")
            if diff % outer1 != 0:
                return None
            delta = diff // outer1
            if d_outer is FREE:
                d_outer = delta
            elif d_outer != delta:
                return None
        else:
            if diff != 0:
                return None  # distinct constants: no conflict
    return d_outer, d_inner


def _all_refs(body: List[Stmt]) -> List[Tuple[ArrayRef, bool]]:
    refs: List[Tuple[ArrayRef, bool]] = []

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            for node in walk(stmt.expanded_value()):
                if isinstance(node, ArrayRef):
                    refs.append((node, False))
            if isinstance(stmt.target, ArrayRef):
                refs.append((stmt.target, True))
        elif isinstance(stmt, If):
            for node in walk(stmt.cond):
                if isinstance(node, ArrayRef):
                    refs.append((node, False))
            for inner in list(stmt.then) + list(stmt.els):
                visit(inner)

    for stmt in body:
        visit(stmt)
    return refs


def _can_be_positive(delta: object) -> bool:
    return delta is FREE or (isinstance(delta, int) and delta > 0)


def _can_be_negative(delta: object) -> bool:
    return delta is FREE or (isinstance(delta, int) and delta < 0)


def interchange(outer: For) -> For:
    """Interchange a perfect 2-deep nest; raises on illegality."""
    if len(outer.body) != 1 or not isinstance(outer.body[0], For):
        raise TransformError("interchange needs a perfect 2-deep nest")
    inner = outer.body[0]
    info_outer = LoopInfo.from_for(outer)
    info_inner = LoopInfo.from_for(inner)
    if info_outer is None or info_inner is None:
        raise TransformError("both loops must be canonical")
    # The inner bounds must not depend on the outer variable (rectangular).
    header_vars = collect_vars(info_inner.lo) | collect_vars(info_inner.hi)
    if info_outer.var in header_vars:
        raise TransformError("non-rectangular nest")
    if info_inner.var in collect_vars(info_outer.lo) | collect_vars(info_outer.hi):
        raise TransformError("outer bounds depend on inner variable")

    # Scalars written in the body make iteration order observable unless
    # they are privatizable: unconditionally defined before any use in
    # the same iteration (§6's temporary `t`).  Privatizable scalars get
    # the same final value either way because both orders end with the
    # same last iteration of a rectangular nest.
    writes = set()
    for stmt in inner.body:
        writes |= defined_scalars(stmt)
    writes.discard(info_inner.var)
    for var in sorted(writes):
        first_def = None
        for pos, stmt in enumerate(inner.body):
            is_plain_def = (
                isinstance(stmt, Assign)
                and getattr(stmt.target, "name", None) == var
                and not isinstance(stmt.target, ArrayRef)
            )
            if is_plain_def and first_def is None:
                # A compound def (v += e) reads the carried value.
                if stmt.op is not None or var in collect_vars(stmt.value):
                    raise TransformError(
                        f"scalar {var!r} carries a value across iterations"
                    )
                first_def = pos
                continue
            mentioned = var in collect_vars(stmt)
            if mentioned and first_def is None:
                raise TransformError(
                    f"scalar {var!r} read before its definition "
                    "(loop-carried) — not privatizable"
                )
        if first_def is None:
            raise TransformError(
                f"scalar {var!r} conditionally defined in the nest body"
            )

    refs = _all_refs(inner.body)
    for idx, (r1, w1) in enumerate(refs):
        for r2, w2 in refs[idx:]:
            if r1.name != r2.name or not (w1 or w2):
                continue
            subs1 = tuple(
                analyze_subscript(e, info_inner.var) for e in r1.indices
            )
            subs2 = tuple(
                analyze_subscript(e, info_inner.var) for e in r2.indices
            )
            if any(s is None for s in subs1) or any(s is None for s in subs2):
                raise TransformError(f"non-affine access to {r1.name!r}")
            if len(subs1) != len(subs2):
                raise TransformError(f"rank mismatch on {r1.name!r}")
            pair = _per_var_distance(
                subs1, subs2, info_outer.var, info_inner.var
            )
            if pair is None:
                continue
            d_out, d_in = pair
            # Check both orientations of the dependence.
            if _can_be_positive(d_out) and _can_be_negative(d_in):
                raise TransformError(
                    f"direction vector (+,-) on {r1.name!r} forbids interchange"
                )
            if _can_be_negative(d_out) and _can_be_positive(d_in):
                # The mirrored dependence (swap source/sink) is (+,-) too.
                raise TransformError(
                    f"direction vector (+,-) on {r1.name!r} forbids interchange"
                )

    new_outer = inner.clone()
    new_inner = outer.clone()
    new_inner.body = [s.clone() for s in inner.body]
    new_outer.body = [new_inner]
    return new_outer
