"""Strip-mining and loop tiling.

Strip-mining is always legal: it only re-brackets the iteration space
into chunks.  Tiling a 2-deep nest = strip-mine the inner loop, then
interchange the strip loop outward — so tiling inherits interchange's
legality check.
"""

from __future__ import annotations

from typing import List

from repro.analysis.loopinfo import LoopInfo
from repro.core.names import NamePool, all_names
from repro.lang.ast_nodes import Assign, BinOp, Call, For, IntLit, Stmt, Var
from repro.transforms.errors import TransformError
from repro.transforms.interchange import interchange


def strip_mine(loop: For, width: int, pool: NamePool | None = None) -> For:
    """``for i in [lo,hi)`` → ``for is by width { for i in [is, min(is+width, hi)) }``."""
    if width < 2:
        raise TransformError("strip width must be >= 2")
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    if info.step != 1:
        raise TransformError("strip-mining requires unit step")
    pool = pool or NamePool(all_names(loop))
    strip_var = pool.fresh(f"{info.var}s")

    inner = For(
        init=Assign(Var(info.var), Var(strip_var)),
        cond=BinOp(
            "<",
            Var(info.var),
            Call(
                "min",
                [BinOp("+", Var(strip_var), IntLit(width)), info.hi.clone()],
            ),
        ),
        step=Assign(Var(info.var), IntLit(1), "+"),
        body=[s.clone() for s in loop.body],
    )
    outer = For(
        init=Assign(Var(strip_var), info.lo.clone()),
        cond=BinOp("<", Var(strip_var), info.hi.clone()),
        step=Assign(Var(strip_var), IntLit(width), "+"),
        body=[inner],
    )
    return outer


def tile(outer: For, width: int) -> List[Stmt]:
    """Tile the inner loop of a perfect 2-deep nest.

    ``for j { for i { body } }`` becomes
    ``for is { for j { for i in strip { body } } }`` — the strip loop is
    hoisted across ``j``, which is exactly an interchange and therefore
    checked with interchange's legality rules on the original nest.
    """
    if len(outer.body) != 1 or not isinstance(outer.body[0], For):
        raise TransformError("tiling needs a perfect 2-deep nest")
    # Legality: the strip-then-hoist is an interchange of the nest.
    interchange(outer)  # raises TransformError when illegal

    inner = outer.body[0]
    strip = strip_mine(inner, width)
    # strip = for is { for i { body } }; hoist `for is` over `outer`.
    strip_outer_header = strip
    inner_strip_loop = strip.body[0]
    new_mid = outer.clone()
    new_mid.body = [inner_strip_loop]
    result = For(
        init=strip_outer_header.init,
        cond=strip_outer_header.cond,
        step=strip_outer_header.step,
        body=[new_mid],
    )
    return [result]
