"""Shared error type for loop transformations."""


class TransformError(Exception):
    """The transformation is illegal or the loop is not in the required
    shape; the message says which."""
