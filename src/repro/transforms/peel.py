"""Loop peeling.

Peels ``count`` iterations off the front or back of a counted loop into
straight-line statements.  Always legal (execution order is unchanged);
§6 mentions peeling (with reversal) as the classical — and clumsy —
alternative to SLMS-enabled fusion.

Literal bounds are required: the peeled copies need concrete indices,
and a loop shorter than ``count`` must be fully unrolled rather than
given a negative-trip remainder.
"""

from __future__ import annotations

from typing import List

from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import Assign, BinOp, For, IntLit, Stmt, Var
from repro.lang.visitors import substitute_expr
from repro.transforms.errors import TransformError


def peel(loop: For, count: int, where: str = "front") -> List[Stmt]:
    """Peel ``count`` iterations; returns the replacement statements."""
    if where not in ("front", "back"):
        raise TransformError(f"unknown peel position {where!r}")
    if count < 1:
        raise TransformError("peel count must be >= 1")
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    trip = info.trip_count
    if trip is None:
        raise TransformError("peeling requires literal loop bounds")
    count = min(count, trip)
    lo, step, var = info.lo_const, info.step, info.var
    assert lo is not None

    def iteration(k: int) -> List[Stmt]:
        index = IntLit(lo + k * step)
        return [substitute_expr(s.clone(), var, index) for s in loop.body]

    out: List[Stmt] = []
    if where == "front":
        for k in range(count):
            out.extend(iteration(k))
        if trip > count:
            new_loop = loop.clone()
            new_loop.init = Assign(Var(var), IntLit(lo + count * step))
            out.append(new_loop)
        else:
            # Fully peeled: restore the loop variable's exit value.
            out.append(Assign(Var(var), IntLit(lo + trip * step)))
        return out

    # back peel
    if trip > count:
        new_loop = loop.clone()
        last_kept = lo + (trip - count) * step
        cmp_op = "<" if step > 0 else ">"
        new_loop.cond = BinOp(cmp_op, Var(var), IntLit(last_kept))
        out.append(new_loop)
    for k in range(trip - count, trip):
        out.extend(iteration(k))
    # Preserve the loop variable's observable exit value.
    out.append(Assign(Var(var), IntLit(lo + trip * step)))
    return out
