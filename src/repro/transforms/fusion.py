"""Loop fusion (§6).

Two adjacent loops with identical headers fuse into one loop running
both bodies per iteration.  Fusion is legal iff no dependence from the
first loop to the second has a *negative* iteration distance: a
conflict ``L1 at iteration i₁ ↔ L2 at iteration i₂`` with ``i₂ < i₁``
is satisfied by the original order (all of L1 before all of L2) but
violated once the bodies interleave.

Scalar dependences between the loops are handled conservatively: a
scalar written in L1 and read in L2 would be read by iteration ``i`` of
the fused loop *before* L1's later iterations rewrite it, so any scalar
defined in L1 and touched in L2 (or vice versa) blocks fusion unless
the def reaches L2 unchanged (single assignment per iteration is still
order-sensitive — we decline).

The paper's Fig. 9/10 workflows — SLMS→fusion, fusion→SLMS, and
SLMS-enables-fusion — are exercised in the integration tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.affine import analyze_subscript
from repro.analysis.deptests import test_dependence
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import ArrayRef, Assign, For, If, Stmt
from repro.lang.visitors import (
    defined_scalars,
    rename_scalar,
    used_scalars,
    walk,
)
from repro.transforms.errors import TransformError


def _collect_refs(
    body: List[Stmt], index_var: str
) -> List[Tuple[str, Optional[tuple], bool]]:
    """(array, affine subs or None, is_write) for every access in a body."""
    refs: List[Tuple[str, Optional[tuple], bool]] = []

    def affine(ref: ArrayRef):
        subs = []
        for idx in ref.indices:
            a = analyze_subscript(idx, index_var)
            if a is None:
                return None
            subs.append(a)
        return tuple(subs)

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            for node in walk(stmt.expanded_value()):
                if isinstance(node, ArrayRef):
                    refs.append((node.name, affine(node), False))
            if isinstance(stmt.target, ArrayRef):
                refs.append((stmt.target.name, affine(stmt.target), True))
                for idx in stmt.target.indices:
                    for node in walk(idx):
                        if isinstance(node, ArrayRef):
                            refs.append((node.name, affine(node), False))
        elif isinstance(stmt, If):
            for node in walk(stmt.cond):
                if isinstance(node, ArrayRef):
                    refs.append((node.name, affine(node), False))
            for inner in list(stmt.then) + list(stmt.els):
                visit(inner)
        else:
            for node in walk(stmt):
                if isinstance(node, ArrayRef):
                    refs.append((node.name, affine(node), False))

    for stmt in body:
        visit(stmt)
    return refs


def can_fuse(first: For, second: For) -> Tuple[bool, str]:
    """Check header compatibility and dependence legality."""
    info1 = LoopInfo.from_for(first)
    info2 = LoopInfo.from_for(second)
    if info1 is None or info2 is None:
        return False, "both loops must be canonical counted loops"
    if info1.step != info2.step:
        return False, "step mismatch"
    if info1.lo != info2.lo or info1.hi != info2.hi:
        return False, "bound mismatch"

    body2 = second.body
    if info2.var != info1.var:
        body2 = [rename_scalar(s, info2.var, info1.var) for s in body2]

    # Scalar coupling between the loop bodies blocks fusion.
    defs1 = set()
    uses1 = set()
    defs2 = set()
    uses2 = set()
    for s in first.body:
        defs1 |= defined_scalars(s)
        uses1 |= used_scalars(s)
    for s in body2:
        defs2 |= defined_scalars(s)
        uses2 |= used_scalars(s)
    defs1.discard(info1.var)
    defs2.discard(info1.var)
    coupled = (defs1 & (uses2 | defs2)) | (defs2 & uses1)
    if coupled:
        return False, f"scalar {sorted(coupled)[0]!r} couples the loop bodies"

    refs1 = _collect_refs(first.body, info1.var)
    refs2 = _collect_refs(body2, info1.var)
    for name1, subs1, w1 in refs1:
        for name2, subs2, w2 in refs2:
            if name1 != name2 or not (w1 or w2):
                continue
            if subs1 is None or subs2 is None:
                return False, f"non-affine access to {name1!r}"
            if len(subs1) != len(subs2):
                return False, f"rank mismatch on {name1!r}"
            result = test_dependence(
                subs1, subs2, lo=info1.lo_const, hi=info1.hi_const, step=info1.step
            )
            if not result.exists:
                continue
            if result.all_distances or not result.exact:
                return False, f"unanalyzable dependence on {name1!r}"
            if result.distance is not None and result.distance < 0:
                return (
                    False,
                    f"fusion-preventing dependence on {name1!r} "
                    f"(distance {result.distance})",
                )
    return True, ""


def fuse(first: For, second: For) -> For:
    """Fuse two adjacent compatible loops; raises on illegality."""
    ok, reason = can_fuse(first, second)
    if not ok:
        raise TransformError(reason)
    info1 = LoopInfo.from_for(first)
    info2 = LoopInfo.from_for(second)
    assert info1 is not None and info2 is not None
    body2 = [s.clone() for s in second.body]
    if info2.var != info1.var:
        body2 = [rename_scalar(s, info2.var, info1.var) for s in body2]
    fused = first.clone()
    fused.body = [s.clone() for s in first.body] + body2
    return fused
