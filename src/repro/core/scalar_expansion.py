"""Scalar expansion (paper §3.4).

The alternative to MVE: instead of rotating a scalar through U renamed
copies, replace it by a temporary array indexed by the loop variable,
so each iteration owns its element and the anti/output dependences
vanish without unrolling::

    reg1 = a[i+2];             regArr[i+2+σ] = a[i+2];
    … + reg1 …         →       … + regArr[i+2+σ] …

We index ``vArr[i + σ]`` with shift ``σ = step`` so that the
previous-iteration use ``vArr[i + σ − step]`` and the preheader write
``vArr[lo + σ − step]`` stay in bounds even at ``lo = 0``.

Eligibility matches MVE (single plain unconditional def).  The array
needs a static size, so literal loop bounds are required; the trade-off
against MVE is the paper's: no code growth, but extra memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.loopinfo import LoopInfo
from repro.core.mve import eligible_scalars
from repro.core.names import NamePool
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    IntLit,
    Stmt,
    Var,
)
from repro.lang.visitors import NodeTransformer, used_scalars
from repro.obs import get_tracer


@dataclass
class ExpansionPlan:
    """One scalar → temp-array replacement."""

    var: str
    array: str
    def_mi: int
    size: int
    shift: int
    has_prev_use: bool = False


@dataclass
class ExpansionResult:
    """Rewritten MIs plus the supporting declarations and glue code."""

    mis: List[Stmt]
    new_decls: List[Decl] = field(default_factory=list)
    preheader: List[Stmt] = field(default_factory=list)
    liveout: List[Stmt] = field(default_factory=list)
    plans: List[ExpansionPlan] = field(default_factory=list)


class _ScalarToArray(NodeTransformer):
    def __init__(self, var: str, array: str, index_offset: int, index_var: str):
        self.var = var
        self.array = array
        self.index_offset = index_offset
        self.index_var = index_var

    def visit_Var(self, node: Var):
        if node.name != self.var:
            return node.clone()
        if self.index_offset == 0:
            idx: object = Var(self.index_var)
        elif self.index_offset > 0:
            idx = BinOp("+", Var(self.index_var), IntLit(self.index_offset))
        else:
            idx = BinOp("-", Var(self.index_var), IntLit(-self.index_offset))
        return ArrayRef(self.array, [idx])


def apply_scalar_expansion(
    mis: Sequence[Stmt],
    info: LoopInfo,
    pool: NamePool,
    only: Optional[Set[str]] = None,
    elem_types: Optional[Dict[str, str]] = None,
) -> ExpansionResult:
    """Expand every eligible scalar (optionally restricted to ``only``).

    Returns rewritten MIs; the caller re-runs dependence analysis and
    scheduling on them (the new array dependences are strictly weaker:
    the anti/output scalar edges disappear, the true flow remains as a
    distance-0/1 array dependence).
    """
    if info.hi_const is None or info.lo_const is None:
        raise ValueError("scalar expansion requires literal loop bounds")
    if info.step <= 0:
        raise ValueError("scalar expansion requires a positive loop step")
    elem_types = elem_types or {}
    shift = info.step
    size = info.hi_const + shift + 1

    result = ExpansionResult(mis=[s.clone() for s in mis])
    for var, def_mi in sorted(eligible_scalars(mis, info.var).items()):
        if only is not None and var not in only:
            continue
        uses_same = [
            pos
            for pos, stmt in enumerate(mis)
            if pos > def_mi and var in used_scalars(stmt)
        ]
        uses_prev = [
            pos
            for pos, stmt in enumerate(mis)
            if pos < def_mi and var in used_scalars(stmt)
        ]
        if not uses_same and not uses_prev:
            continue
        array = pool.fresh(f"{var}Arr")
        plan = ExpansionPlan(
            var=var,
            array=array,
            def_mi=def_mi,
            size=size,
            shift=shift,
            has_prev_use=bool(uses_prev),
        )
        for pos in range(len(result.mis)):
            if pos == def_mi or pos in uses_same:
                result.mis[pos] = _ScalarToArray(var, array, shift, info.var).visit(
                    result.mis[pos]
                )
            elif pos in uses_prev:
                result.mis[pos] = _ScalarToArray(var, array, 0, info.var).visit(
                    result.mis[pos]
                )
        result.new_decls.append(
            Decl(elem_types.get(var, "float"), array, (size,))
        )
        if plan.has_prev_use:
            # Iteration lo's previous-value read gets the scalar's
            # pre-loop value.
            result.preheader.append(
                Assign(
                    ArrayRef(array, [IntLit(info.lo_const)]),
                    Var(var),
                )
            )
        # Restore the scalar's live-out value (last iteration's def).
        trips = info.trip_count
        assert trips is not None
        if trips > 0:
            last_index = info.lo_const + (trips - 1) * info.step + shift
            result.liveout.append(
                Assign(Var(var), ArrayRef(array, [IntLit(last_index)]))
            )
        result.plans.append(plan)
    tracer = get_tracer()
    if result.plans and tracer.enabled:
        tracer.event(
            "scalar_expansion.apply",
            expanded=[p.var for p in result.plans],
            arrays=[p.array for p in result.plans],
            size=size,
        )
    return result
