"""Reduction lane splitting — the §5 max-loop transformation.

The paper's find-max example applies MVE to the *reduction variable*
itself: ``max`` becomes ``max0``/``max1`` accumulating the even and odd
iterations independently, and a final ``if (max0 > max1) …`` merges the
lanes ("the last line was added manually").  Rotating an accumulator is
not ordinary MVE — the lanes are independent partial reductions — so
this module implements it as its own transformation:

* **min/max reductions** (``if (v < e) v = e;`` and the three other
  comparison orientations): lanes are seeded with the incoming value of
  ``v`` and merged with ``min``/``max`` — *bit-exact*, because min/max
  are truly associative, commutative and idempotent;
* **sum/product reductions** (``v += e``, ``v = v + e``, ``v *= e``):
  lanes are seeded with ``v`` / the identity and merged with ``+``/``*``
  — this **reassociates floating point** and is therefore only applied
  when the caller passes ``allow_reassociation=True`` (the paper's
  interactive user acknowledging a speculative transformation).

:func:`split_reduction` rewrites the loop into a ``lanes``-way unrolled
main loop over the lane variables plus a remainder loop, preheader and
merge code; the driver then pipelines the main loop like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.loopinfo import LoopInfo
from repro.core.names import NamePool
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Stmt,
    Var,
)
from repro.lang.visitors import (
    collect_calls,
    collect_vars,
    defined_scalars,
    rename_scalar,
    substitute_index,
    used_scalars,
)

_MINMAX_FLIP = {"<": "max", "<=": "max", ">": "min", ">=": "min"}


@dataclass
class ReductionInfo:
    """A recognized reduction statement."""

    var: str
    kind: str  # "max" | "min" | "sum" | "product"
    stmt_index: int
    exact: bool  # True when lane splitting is bit-exact


@dataclass
class SplitResult:
    """The lane-split loop plus its supporting code."""

    preheader: List[Stmt]
    main_loop: For
    remainder: For
    merge: List[Stmt]
    lane_names: List[str]
    new_decls: List[Decl] = field(default_factory=list)
    info: Optional[ReductionInfo] = None


def _match_minmax(stmt: Stmt) -> Optional[Tuple[str, str, Expr]]:
    """``if (v REL e) v = e;`` → (var, kind, e)."""
    if not isinstance(stmt, If) or stmt.els or len(stmt.then) != 1:
        return None
    inner = stmt.then[0]
    if not (
        isinstance(inner, Assign)
        and isinstance(inner.target, Var)
        and inner.op is None
    ):
        return None
    cond = stmt.cond
    if not isinstance(cond, BinOp) or cond.op not in _MINMAX_FLIP:
        return None
    var = inner.target.name
    # v REL e with the assignment v = e (same e structurally).
    if (
        isinstance(cond.left, Var)
        and cond.left.name == var
        and cond.right == inner.value
    ):
        return var, _MINMAX_FLIP[cond.op], inner.value
    # e REL v orientation: if (arr[i] > max) max = arr[i];
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[cond.op]
    if (
        isinstance(cond.right, Var)
        and cond.right.name == var
        and cond.left == inner.value
    ):
        return var, _MINMAX_FLIP[flipped], inner.value
    return None


def _match_sum_product(stmt: Stmt) -> Optional[Tuple[str, str, Expr]]:
    """``v += e`` / ``v = v + e`` / ``v *= e`` → (var, kind, e)."""
    if not (isinstance(stmt, Assign) and isinstance(stmt.target, Var)):
        return None
    var = stmt.target.name
    if stmt.op in ("+", "*"):
        if var in collect_vars(stmt.value):
            return None
        return var, ("sum" if stmt.op == "+" else "product"), stmt.value
    if stmt.op is None and isinstance(stmt.value, BinOp):
        value = stmt.value
        if value.op in ("+", "*"):
            if isinstance(value.left, Var) and value.left.name == var:
                if var in collect_vars(value.right):
                    return None
                return var, ("sum" if value.op == "+" else "product"), value.right
    return None


def find_reduction(
    body: List[Stmt], index_var: str, allow_reassociation: bool
) -> Optional[ReductionInfo]:
    """The single splittable reduction in the body, if any.

    The reduction variable must appear in exactly one statement (its
    own), and the body must be call-free (calls could observe the
    partial values).
    """
    for stmt in body:
        if collect_calls(stmt):
            return None
    found: Optional[ReductionInfo] = None
    for pos, stmt in enumerate(body):
        match = _match_minmax(stmt)
        exact = True
        if match is None:
            match = _match_sum_product(stmt)
            exact = False
            if match is not None and not allow_reassociation:
                continue
        if match is None:
            continue
        var, kind, expr = match
        if var == index_var or var in collect_vars(expr):
            continue
        # The variable must not escape into other statements.
        escapes = False
        for other_pos, other in enumerate(body):
            if other_pos == pos:
                continue
            if var in used_scalars(other) or var in defined_scalars(other):
                escapes = True
                break
        if escapes:
            continue
        if found is not None:
            return None  # two reductions: decline (keep it simple)
        found = ReductionInfo(var=var, kind=kind, stmt_index=pos, exact=exact)
    return found


def _identity(kind: str) -> Expr:
    if kind == "sum":
        return FloatLit(0.0)
    if kind == "product":
        return FloatLit(1.0)
    raise ValueError(kind)


def split_reduction(
    loop: For,
    info: ReductionInfo,
    pool: NamePool,
    lanes: int = 2,
    elem_type: str = "float",
) -> Optional[SplitResult]:
    """Rewrite the loop into a lane-parallel main loop + remainder.

    Returns ``None`` for non-canonical loops or degenerate lane counts.
    """
    if lanes < 2:
        return None
    header = LoopInfo.from_for(loop)
    if header is None:
        return None
    var, kind = info.var, info.kind
    step = header.step

    lane_names = [pool.fresh(f"{var}{k}") for k in range(lanes)]

    # ---- preheader: seed the lanes ---------------------------------------
    preheader: List[Stmt] = []
    for k, lane in enumerate(lane_names):
        if kind in ("max", "min"):
            # Seeding every lane with v is exact: min/max is idempotent.
            preheader.append(Assign(Var(lane), Var(var)))
        else:
            preheader.append(
                Assign(Var(lane), Var(var) if k == 0 else _identity(kind))
            )

    # ---- main loop: `lanes`-way unroll, one lane per copy --------------
    body: List[Stmt] = []
    for k, lane in enumerate(lane_names):
        for stmt in loop.body:
            shifted = substitute_index(stmt.clone(), header.var, k * step)
            body.append(rename_scalar(shifted, var, lane))

    margin = (lanes - 1) * step
    from repro.lang.visitors import fold_constants

    if margin >= 0:
        bound = fold_constants(BinOp("-", header.hi.clone(), IntLit(margin)))
    else:
        bound = fold_constants(BinOp("+", header.hi.clone(), IntLit(-margin)))
    cmp_op = "<" if step > 0 else ">"
    main_loop = For(
        init=Assign(Var(header.var), header.lo.clone()),
        cond=BinOp(cmp_op, Var(header.var), bound),
        step=Assign(
            Var(header.var), IntLit(abs(step) * lanes), "+" if step > 0 else "-"
        ),
        body=body,
    )

    # ---- remainder: finish stragglers on lane 0 --------------------------
    remainder = For(
        init=None,
        cond=BinOp(cmp_op, Var(header.var), header.hi.clone()),
        step=Assign(Var(header.var), IntLit(abs(step)), "+" if step > 0 else "-"),
        body=[
            rename_scalar(s.clone(), var, lane_names[0]) for s in loop.body
        ],
    )

    # ---- merge --------------------------------------------------------------
    merge: List[Stmt] = []
    if kind in ("max", "min"):
        acc: Expr = Var(lane_names[0])
        for lane in lane_names[1:]:
            acc = Call(kind, [acc, Var(lane)])
        merge.append(Assign(Var(var), acc))
    else:
        op = "+" if kind == "sum" else "*"
        acc = Var(lane_names[0])
        for lane in lane_names[1:]:
            acc = BinOp(op, acc, Var(lane))
        merge.append(Assign(Var(var), acc))

    return SplitResult(
        preheader=preheader,
        main_loop=main_loop,
        remainder=remainder,
        merge=merge,
        lane_names=lane_names,
        new_decls=[Decl(elem_type, lane) for lane in lane_names],
        info=info,
    )
