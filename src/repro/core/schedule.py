"""Prologue / kernel / epilogue construction (paper §1 Fig. 1, §5 6b).

The modulo-scheduling table places MI ``m`` of iteration ``k`` at row
``t = k·II + m`` (iteration columns shifted by II — exactly Fig. 1).
With ``n`` MIs and ``S = ⌈n/II⌉`` stages, rows split into:

* **prologue**  — rows ``0 … (S−1)·II − 1``: partial early iterations,
  emitted with concrete iteration offsets from ``lo``;
* **kernel**    — rows ``(S−1)·II … N·II − 1``: the repeating II-row
  pattern.  Kernel instance ``kb`` (the loop variable) runs MI ``m`` of
  stage ``s = ⌊m/II⌋`` on iteration ``kb + (S−1−s)``; statements are
  emitted per row in descending ``m`` (oldest iteration first), which
  serializes the same-row anti-dependence overlaps legally;
* **epilogue** — rows ``N·II … (N−1)·II + n − 1``: draining iterations,
  emitted relative to the loop variable's exit value
  (``i_exit = lo + (N−S+1)·step``), so symbolic bounds need no trip
  count.

The construction requires trip count ``N ≥ S``; for symbolic bounds a
runtime guard ``if (trip ≥ S) {pipelined} else {original}`` is emitted
(a correctness detail the paper leaves implicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    For,
    If,
    IntLit,
    ParGroup,
    Stmt,
    Var,
)
from repro.lang.visitors import fold_constants, substitute_expr, substitute_index


@dataclass
class ModuloSchedule:
    """The emitted pipelined loop, plus structure for inspection."""

    ii: int
    stages: int
    prologue: List[Stmt]
    kernel_loop: For
    epilogue: List[Stmt]
    guard: Optional[If] = None
    kernel_rows: List[List[Stmt]] = field(default_factory=list)

    def stmts(self) -> List[Stmt]:
        """The replacement statement sequence for the original loop."""
        if self.guard is not None:
            return [self.guard]
        return [*self.prologue, self.kernel_loop, *self.epilogue]


def _offset_expr(base: Expr, offset: int) -> Expr:
    """``base + offset`` folded (offset in loop-variable units)."""
    if offset == 0:
        return fold_constants(base.clone())  # type: ignore[return-value]
    if offset > 0:
        combined = BinOp("+", base.clone(), IntLit(offset))
    else:
        combined = BinOp("-", base.clone(), IntLit(-offset))
    return fold_constants(combined)  # type: ignore[return-value]


def _row_group(stmts: List[Stmt]) -> Stmt:
    return stmts[0] if len(stmts) == 1 else ParGroup(stmts)


def build_modulo_schedule(
    mis: Sequence[Stmt],
    info: LoopInfo,
    ii: int,
) -> ModuloSchedule:
    """Emit the software-pipelined form of the loop at the given II.

    ``mis`` are the MI statements in body order, written in terms of the
    loop variable ``info.var``; the caller has already verified ``ii``
    with :func:`repro.core.mii.find_valid_ii`.
    """
    n = len(mis)
    if n < 2:
        raise ValueError("need at least two MIs to pipeline")
    if not 1 <= ii < n:
        raise ValueError(f"II={ii} invalid for {n} MIs")
    stages = -(-n // ii)  # ceil
    var = info.var
    step = info.step

    # ---- prologue: rows t = 0 .. (S-1)*II - 1 ---------------------------
    # Row t holds MI m = t - k*II of iteration k, newest iteration last
    # (ascending k == descending m).
    prologue: List[Stmt] = []
    for t in range((stages - 1) * ii):
        row: List[Stmt] = []
        for k in range(t // ii, -1, -1):
            m = t - k * ii
            if 0 <= m < n:
                index = _offset_expr(info.lo, k * step)
                row.append(substitute_expr(mis[m].clone(), var, index))
        row.reverse()  # descending m == ascending k
        if row:
            prologue.append(_row_group(row))

    # ---- kernel -------------------------------------------------------------
    kernel_rows: List[List[Stmt]] = []
    for r in range(ii):
        row = []
        for s in range(stages - 1, -1, -1):
            m = s * ii + r
            if m < n:
                offset = (stages - 1 - s) * step
                row.append(substitute_index(mis[m].clone(), var, offset))
        kernel_rows.append(row)
    kernel_body: List[Stmt] = [_row_group(row) for row in kernel_rows if row]

    # Kernel bound: i strictly before hi - (S-1)*step (in step direction).
    bound = _offset_expr(info.hi, -(stages - 1) * step)
    cmp_op = "<" if step > 0 else ">"
    kernel_loop = For(
        init=Assign(Var(var), info.lo.clone()),
        cond=BinOp(cmp_op, Var(var), bound),
        step=Assign(Var(var), IntLit(abs(step)), "+" if step > 0 else "-"),
        body=kernel_body,
    )

    # ---- epilogue: rows t = N*II .. (N-1)*II + n - 1 -------------------------
    # Written q = t - N*II ∈ [0, n - II); iteration offset from the loop
    # variable's exit value is j = ⌊q/II⌋ − s + (S−1)  (see module doc).
    epilogue: List[Stmt] = []
    for q in range(n - ii):
        fq, r = divmod(q, ii)
        row = []
        for s in range(stages - 1, fq, -1):
            m = s * ii + r
            if m < n:
                j = fq - s + stages - 1
                epilogue_stmt = substitute_index(mis[m].clone(), var, j * step)
                row.append(epilogue_stmt)
        if row:
            epilogue.append(_row_group(row))

    # Restore the loop variable's exit value: the kernel loop stops
    # (S-1) iterations short of the original loop, and the observable
    # post-loop value of ``i`` must match the untransformed program.
    epilogue.append(
        Assign(
            Var(var),
            IntLit((stages - 1) * abs(step)),
            "+" if step > 0 else "-",
        )
    )

    schedule = ModuloSchedule(
        ii=ii,
        stages=stages,
        prologue=prologue,
        kernel_loop=kernel_loop,
        epilogue=epilogue,
        kernel_rows=kernel_rows,
    )

    # ---- trip-count guard -----------------------------------------------------
    # Pipelining needs N >= S.  N >= S  ⇔  hi - lo > (S-1)*step  for
    # step > 0 (mirrored for negative steps).  Statically decided when
    # bounds are literal; otherwise a runtime guard keeps the original
    # loop for short trips.
    trip = info.trip_count
    if trip is not None:
        if trip < stages:
            # Too short to pipeline at all — caller should keep original.
            raise ShortTripCount(trip, stages)
        return schedule

    original = For(
        init=Assign(Var(var), info.lo.clone()),
        cond=BinOp(cmp_op, Var(var), info.hi.clone()),
        step=Assign(Var(var), IntLit(abs(step)), "+" if step > 0 else "-"),
        body=[s.clone() for s in mis],
    )
    threshold = _offset_expr(info.lo, (stages - 1) * step)
    guard_cond = BinOp(">" if step > 0 else "<", info.hi.clone(), threshold)
    schedule.guard = If(
        guard_cond,
        [*schedule.prologue, schedule.kernel_loop, *schedule.epilogue],
        [original],
    )
    return schedule


class ShortTripCount(Exception):
    """The loop runs fewer iterations than the pipeline has stages."""

    def __init__(self, trip: int, stages: int):
        self.trip = trip
        self.stages = stages
        super().__init__(
            f"trip count {trip} is below the stage count {stages}; "
            "pipelining would read past the iteration space"
        )
