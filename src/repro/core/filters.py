"""Bad-case filtering (paper §4).

SLMS can hurt when the loop body is dominated by memory references:
overlapping iterations then packs too many loads/stores into one row and
the machine stalls on memory pressure.  The paper's filter computes the
**memory-ref ratio** ``LS / (LS + AO)`` over the loop body and declines
SLMS when it reaches 0.85.

Counting rule (reverse-engineered from the paper's worked example, which
assigns ``LS = 6, AO = 1`` to the three-statement swap loop): ``LS`` is
array loads + array stores **plus accesses to scalars defined inside the
body** (each def and each use counts — such temporaries may need memory
in the worst case), and ``AO`` is arithmetic outside array subscripts.

The conclusions section adds a second heuristic: loops with more than
six arithmetic operations *per array reference* were never bad cases;
we expose that as ``arith_per_ref``.  Both thresholds are configurable
per machine, as §4 prescribes ("specific for both the final compiler and
target machine").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast_nodes import Stmt
from repro.lang.visitors import count_ops, defined_scalars, used_scalars


@dataclass(frozen=True)
class FilterVerdict:
    """Outcome of the §4 bad-case filter."""

    apply_slms: bool
    memory_ref_ratio: float
    loads: int
    stores: int
    scalar_accesses: int
    arith: int
    reason: str = ""


def memory_ref_ratio(body: Sequence[Stmt], index_var: str) -> FilterVerdict:
    """Compute the §4 ratio for a loop body (verdict fields only)."""
    loads = stores = arith = 0
    for stmt in body:
        counts = count_ops(stmt)
        loads += counts["load"]
        stores += counts["store"]
        arith += counts["arith"]

    # Scalars defined inside the body: each def and use is a potential
    # memory access under register pressure.
    body_defined = set()
    for stmt in body:
        body_defined |= defined_scalars(stmt)
    body_defined.discard(index_var)
    scalar_accesses = 0
    for stmt in body:
        scalar_accesses += len(defined_scalars(stmt) & body_defined)
        scalar_accesses += len(used_scalars(stmt) & body_defined)

    ls = loads + stores + scalar_accesses
    total = ls + arith
    ratio = ls / total if total else 0.0
    return FilterVerdict(
        apply_slms=True,
        memory_ref_ratio=ratio,
        loads=loads,
        stores=stores,
        scalar_accesses=scalar_accesses,
        arith=arith,
    )


def bad_case_filter(
    body: Sequence[Stmt],
    index_var: str,
    ratio_threshold: float = 0.85,
    min_arith_per_ref: float = 0.0,
) -> FilterVerdict:
    """The §4 filter: decline SLMS for memory-bound bodies.

    ``ratio_threshold`` is the paper's 0.85; ``min_arith_per_ref`` is
    the optional §11 heuristic (pass e.g. ``1/6`` to require at least
    one arithmetic op per six array references — 0 disables it).
    """
    verdict = memory_ref_ratio(body, index_var)
    if verdict.memory_ref_ratio >= ratio_threshold:
        return FilterVerdict(
            apply_slms=False,
            memory_ref_ratio=verdict.memory_ref_ratio,
            loads=verdict.loads,
            stores=verdict.stores,
            scalar_accesses=verdict.scalar_accesses,
            arith=verdict.arith,
            reason=(
                f"memory-ref ratio {verdict.memory_ref_ratio:.3f} >= "
                f"{ratio_threshold} (§4 bad case)"
            ),
        )
    refs = verdict.loads + verdict.stores
    if refs and min_arith_per_ref > 0:
        if verdict.arith / refs < min_arith_per_ref:
            return FilterVerdict(
                apply_slms=False,
                memory_ref_ratio=verdict.memory_ref_ratio,
                loads=verdict.loads,
                stores=verdict.stores,
                scalar_accesses=verdict.scalar_accesses,
                arith=verdict.arith,
                reason=(
                    f"arith per array ref {verdict.arith / refs:.3f} < "
                    f"{min_arith_per_ref:.3f} (§11 heuristic)"
                ),
            )
    return verdict
