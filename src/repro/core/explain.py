"""Human-readable SLMS diagnostics — the §2/§8 SLC interaction surface.

The paper's source-level compiler is *interactive*: the user inspects
what SLMS did (or why it declined), sees which dependence cycle limits
the II, and edits the source in response.  This module renders that
report:

* :func:`explain` — full text report for one loop: filter verdict, MI
  listing, dependence edges with ``<distance, delay>`` labels, the II
  search outcome, decomposition and expansion decisions;
* :func:`render_ms_table` — the paper's Fig. 1 modulo-scheduling table
  as ASCII (rows = time, columns = iterations);
* :func:`ddg_to_dot` — the dependence graph in Graphviz DOT format for
  visual inspection.

``slms explain file.c`` on the command line prints all of it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.ddg import DependenceGraph
from repro.analysis.loopinfo import LoopInfo
from repro.core.mii import edge_slacks
from repro.core.slms import SLMSResult
from repro.lang.ast_nodes import For, Stmt
from repro.lang.printer import to_source


def _one_line(stmt: Stmt) -> str:
    return " ".join(to_source(stmt, style="paper").split())


# ---------------------------------------------------------------------------
# The Fig. 1 table
# ---------------------------------------------------------------------------


def render_ms_table(
    mis: List[Stmt],
    ii: int,
    iterations: int = 4,
    cell_width: int = 26,
) -> str:
    """Render the modulo-scheduling table of Fig. 1.

    MI ``m`` of iteration column ``k`` sits at row ``k·II + m``; the
    repeating II-row pattern (the kernel) is marked on the right.
    """
    n = len(mis)
    if not 1 <= ii:
        raise ValueError("II must be >= 1")
    total_rows = (iterations - 1) * ii + n
    stages = -(-n // ii)
    kernel_start = (stages - 1) * ii

    labels = [_one_line(stmt) for stmt in mis]
    labels = [
        lab if len(lab) <= cell_width - 2 else lab[: cell_width - 3] + "…"
        for lab in labels
    ]

    header = "row | " + "".join(
        f"{'iter i+' + str(k):<{cell_width}}" for k in range(iterations)
    )
    lines = [header, "-" * len(header)]
    for t in range(total_rows):
        cells = []
        for k in range(iterations):
            m = t - k * ii
            if 0 <= m < n:
                cells.append(f"{labels[m]:<{cell_width}}")
            else:
                cells.append(" " * cell_width)
        marker = ""
        if kernel_start <= t < kernel_start + ii and iterations >= stages:
            marker = "  <- kernel row" if t == kernel_start else "  <- kernel"
        lines.append(f"{t:>3} | " + "".join(cells) + marker)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------


def ddg_to_dot(graph: DependenceGraph, mis: Optional[List[Stmt]] = None) -> str:
    """Graphviz DOT text for the MI dependence graph."""
    lines = ["digraph ddg {", "    rankdir=TB;"]
    for node in range(graph.n):
        label = f"MI{node}"
        if mis is not None and node < len(mis):
            text = _one_line(mis[node]).replace('"', "'")
            label = f"MI{node}\\n{text}"
        lines.append(f'    mi{node} [shape=box, label="{label}"];')
    styles = {"flow": "solid", "anti": "dashed", "output": "dotted"}
    for edge in graph.edges:
        style = styles.get(edge.kind, "solid")
        lines.append(
            f"    mi{edge.src} -> mi{edge.dst} "
            f'[style={style}, label="{edge.var} <{edge.distance},{edge.delay}>"];'
        )
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The full report
# ---------------------------------------------------------------------------


def explain(loop: For, result: SLMSResult) -> str:
    """Render the SLC's report for one attempted loop."""
    lines: List[str] = []
    info = LoopInfo.from_for(loop)
    header = _one_line(
        For(loop.init, loop.cond, loop.step, [], loop.loc)
    ).rstrip("{} ")
    lines.append(f"loop: {header}")

    if result.filter_verdict is not None:
        verdict = result.filter_verdict
        lines.append(
            f"§4 filter: memory-ref ratio {verdict.memory_ref_ratio:.3f} "
            f"(loads {verdict.loads}, stores {verdict.stores}, "
            f"body-scalar accesses {verdict.scalar_accesses}, "
            f"arith {verdict.arith})"
        )

    if not result.applied:
        lines.append(f"outcome: DECLINED — {result.reason}")
        return "\n".join(lines)

    mis = result.final_mis or (
        result.partition.mis if result.partition else []
    )
    if mis:
        lines.append(f"multi-instructions ({len(mis)}):")
        for idx, stmt in enumerate(mis):
            lines.append(f"    MI{idx}: {_one_line(stmt)}")
    if result.partition is not None:
        for var, names in result.partition.renamed.items():
            lines.append(
                f"    multi-def scalar {var!r} split into webs: "
                f"{', '.join(names)} + {var}"
            )

    graph = result.ddg
    if graph is not None:
        carried = graph.loop_carried()
        lines.append(
            f"dependence graph: {len(graph.edges)} edges, "
            f"{len(carried)} loop-carried"
        )
        for edge in sorted(
            carried, key=lambda e: (e.src, e.dst, e.var)
        )[:12]:
            lines.append(f"    {edge}")
        if len(carried) > 12:
            lines.append(f"    … and {len(carried) - 12} more")
        if result.ii is not None:
            # Which edge is binding at II-1 (why a smaller II fails)?
            if result.ii > 1:
                slacks = edge_slacks(graph, result.ii - 1)
                binding = [
                    (src, dst, kind)
                    for (src, dst, kind), slack in slacks.items()
                    if slack < (1 if kind == "flow" else 0)
                ]
                if binding:
                    src, dst, kind = binding[0]
                    lines.append(
                        f"II = {result.ii - 1} fails: {kind} dependence "
                        f"MI{src} -> MI{dst} violates its slack"
                    )

    lines.append(
        f"outcome: APPLIED — II={result.ii} (recurrence MII {result.pmii}), "
        f"{result.stages} stages, {result.decompositions} decomposition(s), "
        f"expansion={result.expansion}"
        + (f" (unroll {result.unroll})" if result.unroll > 1 else "")
    )
    if result.new_scalars:
        lines.append(f"new temporaries: {', '.join(result.new_scalars)}")

    if mis and result.ii is not None and info is not None:
        lines.append("")
        lines.append("modulo scheduling table (Fig. 1 view):")
        lines.append(render_ms_table(mis, result.ii, iterations=3))
    return "\n".join(lines)
