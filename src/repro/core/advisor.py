"""Static SLMS applicability advisor (``slms advise``).

Predicts, for every innermost canonical-candidate loop, whether
:func:`repro.core.slms.slms_for_loop` would apply or decline — and with
*exactly which reason string* — without running the scheduler, the
expansion passes, or the emitter.  The prediction reuses the pipeline's
own front half (loop-shape recognition, the §4 filter, if-conversion,
MI partitioning, the DDG, and the II search) and then decides the
emission stage arithmetically:

* the MVE path declines iff ``trip_count < ceil(n_mis / II)``;
* the scalar-expansion and plain paths decline with the
  ``ShortTripCount`` message under the same condition (scalar expansion
  rewrites MIs in place, so the stage count is unchanged);
* symbolic trip counts never decline at emission — the schedule gets a
  runtime guard instead.

Alongside the verdict the advisor reports the recurrence-MII floor
(``pmii_difmin``) whenever a precise dependence graph exists — the
hard lower bound no amount of decomposition or expansion can beat —
plus actionable suggestions keyed to the predicted decline.

``tests/analysis/test_advisor.py`` holds the gate: prediction must
equal the actual driver outcome (verdict *and* reason) on the entire
workload corpus.

Known limit: §5 reduction lane splitting (``reduction_lanes >= 2``)
can rescue a loop the plain path declines; the advisor predicts the
un-split path and says so in a suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.ddg import build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.core.decompose import decompose_mi
from repro.core.filters import bad_case_filter
from repro.core.if_conversion import if_convert
from repro.core.mi import NotPartitionable, partition_mis
from repro.core.mii import find_valid_ii, pmii_difmin
from repro.core.mve import plan_rotations
from repro.core.names import NamePool, all_names
from repro.core.schedulers import get_scheduler
from repro.core.pipeline import _collect_types
from repro.core.schedule import ShortTripCount
from repro.core.slms import SLMSOptions, _has_inner_control
from repro.lang.ast_nodes import For, Program, Stmt, While
from repro.obs import get_metrics, get_tracer


@dataclass
class Advice:
    """Predicted outcome for one loop."""

    line: int
    verdict: str  # "apply" | "decline"
    reason: str = ""  # the exact reason string slms_for_loop would report
    rec_mii: Optional[int] = None  # recurrence-MII floor (pmii_difmin)
    ii: Optional[int] = None
    stages: Optional[int] = None
    n_mis: Optional[int] = None
    # Scheduler-backend prediction (docs/SCHEDULERS.md): mirrors the
    # driver's placement refinement so prediction == actual holds for
    # every backend, not just the paper's.
    scheduler: str = "heuristic"
    res_mii: Optional[int] = None  # source-level resMII (machine FU mix)
    heuristic_ii: Optional[int] = None
    sched_proven: Optional[bool] = None
    decompositions: int = 0
    expansion: Optional[str] = None  # predicted strategy when applying
    unroll: int = 1
    trip_count: Optional[int] = None
    memory_ref_ratio: Optional[float] = None
    suggestions: List[str] = field(default_factory=list)

    @property
    def applies(self) -> bool:
        return self.verdict == "apply"

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "verdict": self.verdict,
            "reason": self.reason,
            "rec_mii": self.rec_mii,
            "ii": self.ii,
            "stages": self.stages,
            "n_mis": self.n_mis,
            "scheduler": self.scheduler,
            "res_mii": self.res_mii,
            "heuristic_ii": self.heuristic_ii,
            "sched_proven": self.sched_proven,
            "decompositions": self.decompositions,
            "expansion": self.expansion,
            "unroll": self.unroll,
            "trip_count": self.trip_count,
            "memory_ref_ratio": self.memory_ref_ratio,
            "suggestions": list(self.suggestions),
        }


# Decline reason (prefix) -> what the user can do about it.
_SUGGESTIONS = [
    (
        "loop is not in canonical counted form",
        "rewrite as `for (i = lo; i < hi; i = i + c)` with a "
        "loop-invariant bound and a constant step",
    ),
    (
        "nested loop in body",
        "pipeline the innermost loop instead, or fully unroll the "
        "inner loop first",
    ),
    (
        "break/continue in body",
        "hoist the early exit out of the loop; SLMS needs a fixed "
        "iteration space",
    ),
    (
        "empty loop body",
        "nothing to pipeline; fold the loop away or fill in the body",
    ),
    (
        "imprecise dependences",
        "remove opaque calls and non-affine subscripts so every "
        "dependence distance is computable",
    ),
    (
        "no valid II after maximum decompositions",
        "raise --max-decompositions, or break the recurrence by "
        "restructuring the dependent statements",
    ),
    (
        "no MI can be decomposed",
        "the recurrence admits no load/compute split (§5 failure "
        "case); restructure the loop body by hand",
    ),
    (
        "trip count",  # both ShortTripCount and the MVE variant
        "increase the trip count to at least the stage count, or "
        "lower the stage count by raising II",
    ),
    (
        "MVE requires literal bounds",
        "make the loop bounds integer literals, or use "
        "--expansion none for a guarded schedule",
    ),
    (
        "scalar expansion requires literal bounds",
        "make the loop bounds integer literals, or use "
        "--expansion none for a guarded schedule",
    ),
]


def _suggest_for(reason: str) -> List[str]:
    return [
        hint for prefix, hint in _SUGGESTIONS if reason.startswith(prefix)
    ]


def advise_loop(
    loop: For,
    pool: NamePool,
    options: Optional[SLMSOptions] = None,
    types: Optional[Dict[str, str]] = None,
) -> Advice:
    """Predict :func:`slms_for_loop`'s outcome for one loop."""
    options = options or SLMSOptions()
    types = dict(types or {})
    line = loop.loc.line if loop.loc else 0

    def declined(reason: str, **kw) -> Advice:
        advice = Advice(
            line=line, verdict="decline", reason=reason,
            suggestions=_suggest_for(reason), **kw,
        )
        if options.reduction_lanes >= 2:
            advice.suggestions.append(
                "reduction lane splitting is enabled; a reduction loop "
                "may still pipeline via the lane-split path"
            )
        return advice

    # ---- step 0: canonical shape (mirrors slms_for_loop) ----------------
    info = LoopInfo.from_for(loop)
    if info is None:
        return declined("loop is not in canonical counted form")
    control = _has_inner_control(loop.body)
    if control is not None:
        return declined(control)
    trip = info.trip_count

    # ---- step 1: §4 bad-case filter --------------------------------------
    verdict = bad_case_filter(
        loop.body,
        info.var,
        ratio_threshold=options.ratio_threshold,
        min_arith_per_ref=options.min_arith_per_ref,
    )
    ratio = round(verdict.memory_ref_ratio, 6)
    if options.enable_filter and not options.force and not verdict.apply_slms:
        advice = declined(
            verdict.reason, trip_count=trip, memory_ref_ratio=ratio
        )
        advice.suggestions.append(
            "pass --force (or disable the filter) to pipeline anyway"
        )
        return advice

    # ---- steps 2+3: if-conversion, MI partition --------------------------
    converted = if_convert([s.clone() for s in loop.body], pool)
    types.update((p, "int") for p in converted.predicates)
    try:
        partition = partition_mis(
            converted.stmts, info.var, pool, elem_types=types
        )
    except NotPartitionable as exc:
        return declined(
            str(exc), trip_count=trip, memory_ref_ratio=ratio
        )
    types.update((d.name, d.type) for d in partition.hoisted_decls)
    mis = partition.mis
    if not mis:
        return declined(
            "empty loop body", trip_count=trip, memory_ref_ratio=ratio
        )

    # ---- §3.2 second form: resource-driven decomposition ------------------
    if options.resource_limits is not None:
        from repro.core.decompose import decompose_by_resources
        from repro.core.slms import _infer_type

        max_loads, max_arith = options.resource_limits
        changed = True
        rounds = 0
        while changed and rounds < options.max_decompositions:
            changed = False
            for pos, stmt in enumerate(mis):
                parts = decompose_by_resources(
                    stmt, max_loads, max_arith, pool
                )
                if parts is not None:
                    temp = parts[0].target.name
                    types[temp] = _infer_type(parts[0].value, types)
                    mis = mis[:pos] + parts + mis[pos + 1:]
                    changed = True
                    rounds += 1
                    break

    # ---- steps 4+5: DDG, II search, decomposition loop --------------------
    from repro.core.slms import _element_type

    decompositions = 0
    while True:
        graph = build_ddg(mis, info)
        if not graph.precise:
            return declined(
                "imprecise dependences: " + "; ".join(graph.reasons),
                trip_count=trip, memory_ref_ratio=ratio,
            )
        ii = find_valid_ii(graph, len(mis)) if len(mis) >= 2 else None
        if ii is not None:
            break
        if decompositions >= options.max_decompositions:
            return declined(
                "no valid II after maximum decompositions",
                rec_mii=pmii_difmin(graph),
                n_mis=len(mis),
                decompositions=decompositions,
                trip_count=trip, memory_ref_ratio=ratio,
            )
        for pos, stmt in enumerate(mis):
            decomposition = decompose_mi(stmt, mis, info, pool)
            if decomposition is not None:
                mis = (
                    mis[:pos]
                    + [decomposition.load_mi, decomposition.rest_mi]
                    + mis[pos + 1:]
                )
                types[decomposition.temp] = _element_type(
                    decomposition.array, types
                )
                decompositions += 1
                break
        else:
            return declined(
                "no MI can be decomposed (§5 failure case)",
                n_mis=len(mis),
                decompositions=decompositions,
                trip_count=trip, memory_ref_ratio=ratio,
            )

    # ---- placement refinement, mirroring slms_for_loop exactly ------------
    heuristic_ii = ii
    backend = get_scheduler(
        options.scheduler, budget_nodes=options.sched_budget
    )
    floor = 1
    if trip is not None and trip > 0:
        floor = max(1, -(-len(mis) // trip))
    sched = backend.refine(graph, heuristic_ii, min_ii=floor)
    if not sched.is_identity:
        mis = [mis[m] for m in sched.order]
        graph = build_ddg(mis, info)
    ii = sched.ii

    res_mii = None
    if options.machine is not None:
        from repro.core.schedulers import resource_mii
        from repro.machines.presets import machine_by_name

        res_mii = resource_mii(mis, machine_by_name(options.machine), types)

    pmii = pmii_difmin(graph)
    stages = -(-len(mis) // ii)
    facts = dict(
        rec_mii=pmii, ii=ii, stages=stages, n_mis=len(mis),
        decompositions=decompositions, trip_count=trip,
        memory_ref_ratio=ratio, scheduler=options.scheduler,
        res_mii=res_mii, heuristic_ii=heuristic_ii,
        sched_proven=(
            sched.proven_optimal if options.scheduler != "heuristic" else None
        ),
    )

    # ---- step 6, decided arithmetically -----------------------------------
    expansion = options.expansion
    literal_bounds = trip is not None and info.step > 0

    if expansion in ("auto", "mve") and literal_bounds:
        plans = plan_rotations(mis, info, ii, pool)
        if plans and len(plans[0].names) <= options.max_unroll:
            if trip < stages:
                # apply_mve's ValueError, verbatim
                return declined("trip count below stage count", **facts)
            return _apply(
                line, expansion="mve",
                unroll=len(plans[0].names), **facts,
            )
        expansion = "none" if expansion == "auto" else expansion

    if expansion == "scalar" and literal_bounds:
        # Scalar expansion preserves the MI count, so the stage count
        # build_modulo_schedule recomputes equals ours.
        if trip < stages:
            return declined(str(ShortTripCount(trip, stages)), **facts)
        return _apply(line, expansion="scalar", **facts)

    if expansion == "mve" and not literal_bounds:
        return declined(
            "MVE requires literal bounds and a positive step", **facts
        )
    if expansion == "scalar" and not literal_bounds:
        return declined(
            "scalar expansion requires literal bounds and a positive step",
            **facts,
        )

    if trip is not None and trip < stages:
        return declined(str(ShortTripCount(trip, stages)), **facts)
    return _apply(line, expansion="none", **facts)


def _apply(line: int, expansion: str, unroll: int = 1, **facts) -> Advice:
    advice = Advice(
        line=line, verdict="apply", expansion=expansion,
        unroll=unroll, **facts,
    )
    if facts.get("trip_count") is None:
        advice.suggestions.append(
            "bounds are symbolic: the schedule will carry a runtime "
            "trip-count guard and expansion is unavailable"
        )
    return advice


def advise_program(
    program: Program,
    options: Optional[SLMSOptions] = None,
) -> List[Advice]:
    """One :class:`Advice` per loop the pipeline would attempt, in the
    pipeline's own traversal order."""
    options = options or SLMSOptions()
    pool = NamePool(all_names(program))
    types = _collect_types(program)
    advices: List[Advice] = []

    def visit(stmts: List[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, For) and _is_innermost(stmt):
                advices.append(advise_loop(stmt, pool, options, types))
            elif isinstance(stmt, (For, While)):
                visit(stmt.body)

    from repro.core.pipeline import _is_innermost

    visit(program.body)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "advise.program",
            loops=len(advices),
            apply=sum(1 for a in advices if a.applies),
        )
    get_metrics().counter("advise.loops").inc(len(advices))
    return advices


def render_advice(advice: Advice) -> str:
    """Human-readable multi-line report for one loop."""
    lines: List[str] = []
    where = f"line {advice.line}" if advice.line else "loop"
    if advice.applies:
        bits = [f"II={advice.ii}", f"stages={advice.stages}",
                f"{advice.n_mis} MIs", f"expansion={advice.expansion}"]
        if advice.unroll > 1:
            bits.append(f"unroll={advice.unroll}")
        if advice.decompositions:
            bits.append(f"decompositions={advice.decompositions}")
        lines.append(
            f"{where}: SLMS predicted to APPLY ({', '.join(bits)})"
        )
    else:
        lines.append(
            f"{where}: SLMS predicted to DECLINE — {advice.reason}"
        )
    if advice.rec_mii is not None:
        lines.append(
            f"  recMII floor: {advice.rec_mii} "
            "(no decomposition or expansion can beat this)"
        )
    if advice.res_mii is not None:
        lines.append(
            f"  resMII floor: {advice.res_mii} "
            "(machine FU mix; informational — SLMS is resource-blind)"
        )
    if advice.scheduler != "heuristic" and advice.applies:
        status = (
            "proven optimal" if advice.sched_proven else "budget-limited"
        )
        lines.append(
            f"  scheduler: {advice.scheduler} "
            f"(paper placement II {advice.heuristic_ii} -> {advice.ii}, "
            f"{status})"
        )
    if advice.trip_count is not None:
        lines.append(f"  trip count: {advice.trip_count}")
    if advice.memory_ref_ratio is not None:
        lines.append(f"  memory-ref ratio (§4): {advice.memory_ref_ratio}")
    for hint in advice.suggestions:
        lines.append(f"  suggestion: {hint}")
    return "\n".join(lines)
