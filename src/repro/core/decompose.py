"""MI decomposition (paper §3.2).

When a loop has too few MIs (a single statement cannot be pipelined) or
a loop-carried *self* dependence pins the only MI, SLMS splits an MI in
two by hoisting one array load into a fresh temporary::

    A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
        ⇓
    reg1 = A[i+2];
    A[i] = A[i-1] + A[i-2] + A[i+1] + reg1;

The hoisted load must have **no flow dependence with the store** (§3.2):
hoisting ``A[i-1]`` instead would create a backward flow edge
(store → next-iteration load) that forces ``II ≥ 2`` and defeats the
split.  Reads of arrays never written in the loop, and read-ahead
references (anti/no dependence with every store), are the legal
candidates; among them we prefer the largest read-ahead distance, which
maximizes schedule slack.

A second decomposition mode splits wide expressions to reduce per-MI
resource usage (``x = A[i]+B[i]+C[i]+D[i]`` → two halves), used when a
machine resource model is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.affine import AffineExpr, analyze_subscript
from repro.analysis.deptests import test_dependence
from repro.analysis.loopinfo import LoopInfo
from repro.core.names import NamePool
from repro.lang.ast_nodes import ArrayRef, Assign, BinOp, Expr, If, Stmt, Var
from repro.lang.visitors import NodeTransformer, collect_array_refs, count_ops
from repro.obs import get_tracer


@dataclass
class Decomposition:
    """Result of splitting one MI."""

    load_mi: Stmt  # reg = A[expr];
    rest_mi: Stmt  # original statement with the load replaced by reg
    temp: str
    array: str


def _store_subscripts(
    mis: Sequence[Stmt], index_var: str
) -> Dict[str, List[Tuple[AffineExpr, ...]]]:
    """Affine subscripts of every array *store* in the loop body."""
    stores: Dict[str, List[Tuple[AffineExpr, ...]]] = {}

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            subs = []
            for idx in stmt.target.indices:
                a = analyze_subscript(idx, index_var)
                if a is None:
                    # Unknown store: poison the array (no candidate reads).
                    stores.setdefault(stmt.target.name, []).append(None)  # type: ignore[arg-type]
                    return
                subs.append(a)
            stores.setdefault(stmt.target.name, []).append(tuple(subs))
        elif isinstance(stmt, If):
            for s in list(stmt.then) + list(stmt.els):
                visit(s)

    for stmt in mis:
        visit(stmt)
    return stores


def _read_ahead_score(
    read_subs: Tuple[AffineExpr, ...],
    stores: Dict[str, List[Tuple[AffineExpr, ...]]],
    array: str,
    info: LoopInfo,
) -> Optional[int]:
    """Score a candidate load: ``None`` if it has a flow dependence with
    any store; otherwise the minimum read-ahead distance (≥ 0)."""
    if array not in stores:
        return 10**6  # array never written: perfect candidate
    best = 10**6
    for store_subs in stores[array]:
        if store_subs is None or any(s is None for s in store_subs):
            return None
        if len(store_subs) != len(read_subs):
            return None
        result = test_dependence(
            store_subs,
            read_subs,
            lo=info.lo_const,
            hi=info.hi_const,
            step=info.step,
        )
        if not result.exists:
            continue
        if not result.exact or result.distance is None:
            return None  # unknown dependence: unsafe to hoist
        if result.distance >= 0:
            # store at iter i, load touches same element at iter i+d,
            # d ≥ 0: the load would read a value the pipelined store has
            # not yet (or just) produced — a flow dependence.  Reject.
            return None
        best = min(best, -result.distance)
    return best


class _ReplaceFirstRef(NodeTransformer):
    """Replace the first occurrence (structural match) of a ref by a var."""

    def __init__(self, ref: ArrayRef, temp: str):
        self.ref = ref
        self.temp = temp
        self.done = False

    def visit_ArrayRef(self, node: ArrayRef) -> Expr:
        if not self.done and node == self.ref:
            self.done = True
            return Var(self.temp)
        return ArrayRef(
            node.name, [self.visit(i) for i in node.indices], node.loc
        )


def decompose_mi(
    stmt: Stmt,
    mis: Sequence[Stmt],
    info: LoopInfo,
    pool: NamePool,
    temp_type: str = "float",
) -> Optional[Decomposition]:
    """Split ``stmt`` by hoisting its best read-ahead load, if any.

    ``mis`` is the full MI list (store subscripts of *every* MI matter:
    a load hoisted above its own statement can still collide with a
    store in a different MI).
    """
    del temp_type  # the driver declares the temp; kept for API clarity
    if isinstance(stmt, If):
        return None  # predicated MIs are not decomposed (paper keeps them whole)
    if not isinstance(stmt, Assign):
        return None

    stores = _store_subscripts(mis, info.var)
    reads: List[ArrayRef] = collect_array_refs(stmt.expanded_value())
    # Subscript loads inside the store target are address computation,
    # not hoistable values; expanded_value covers compound reads.
    best_ref: Optional[ArrayRef] = None
    best_score = -1
    for ref in reads:
        subs = []
        ok = True
        for idx in ref.indices:
            a = analyze_subscript(idx, info.var)
            if a is None:
                ok = False
                break
            subs.append(a)
        if not ok:
            continue
        score = _read_ahead_score(tuple(subs), stores, ref.name, info)
        if score is not None and score > best_score:
            best_score = score
            best_ref = ref
    if best_ref is None:
        return None

    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "decompose.hoist",
            array=best_ref.name,
            read_ahead=best_score,
        )
    temp = pool.numbered("reg", start=1)
    load_mi = Assign(Var(temp), best_ref.clone())
    if stmt.op is not None:
        # Compound assignment: expand so the replaced read can live
        # anywhere in the full RHS.
        expanded = stmt.expanded_value()
        replacer = _ReplaceFirstRef(best_ref, temp)
        new_value = replacer.visit(expanded)
        rest = Assign(stmt.target.clone(), new_value, None, stmt.loc)
    else:
        replacer = _ReplaceFirstRef(best_ref, temp)
        new_value = replacer.visit(stmt.value)
        rest = Assign(stmt.target.clone(), new_value, stmt.op, stmt.loc)
    if not replacer.done:
        return None  # the ref was only in the target subscripts
    return Decomposition(load_mi=load_mi, rest_mi=rest, temp=temp, array=best_ref.name)


# ---------------------------------------------------------------------------
# Resource-driven decomposition (§3.2 second form)
# ---------------------------------------------------------------------------


def decompose_by_resources(
    stmt: Stmt,
    max_loads: int,
    max_arith: int,
    pool: NamePool,
) -> Optional[List[Stmt]]:
    """Split a wide arithmetic MI so each piece fits the resource caps.

    Splits a left-leaning chain of ``+``/``*`` at the midpoint, e.g.
    ``x = A[i]+B[i]+C[i]+D[i]`` with a 2-load cap becomes
    ``t = A[i]+B[i]; x = t+C[i]+D[i];``.  Returns ``None`` when the MI
    already fits or has no splittable chain.
    """
    if not isinstance(stmt, Assign) or stmt.op is not None:
        return None
    counts = count_ops(stmt)
    if counts["load"] <= max_loads and counts["arith"] <= max_arith:
        return None

    # Collect the top-level chain of a single associative operator.
    def chain(expr: Expr, op: str) -> List[Expr]:
        if isinstance(expr, BinOp) and expr.op == op:
            return chain(expr.left, op) + [expr.right]
        return [expr]

    value = stmt.value
    if not isinstance(value, BinOp) or value.op not in ("+", "*"):
        return None
    op = value.op
    terms = chain(value, op)
    if len(terms) < 3:
        return None
    half = len(terms) // 2
    temp = pool.numbered("reg", start=1)

    def rebuild(parts: List[Expr]) -> Expr:
        acc = parts[0].clone()
        for part in parts[1:]:
            acc = BinOp(op, acc, part.clone())
        return acc

    first = Assign(Var(temp), rebuild(terms[:half]))
    second = Assign(
        stmt.target.clone(),
        rebuild([Var(temp)] + terms[half:]),
        None,
        stmt.loc,
    )
    return [first, second]
