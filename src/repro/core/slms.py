"""The SLMS driver — paper §5, steps 1–6.

:func:`slms_for_loop` applies the full algorithm to one canonical for
loop:

1. bad-case filter (§4);
2. source-level if-conversion (§3.1);
3. MI partition + multi-def scalar renaming (§3);
4. dependence graph with ``<distance, delay>`` labels (§3.5, §3.6);
5. MII / valid-II search; on failure, decompose an MI (§3.2) and retry;
6. prologue/kernel/epilogue emission (§1), then MVE (§3.3) or scalar
   expansion (§3.4) to remove the false dependences decomposition and
   loop scalars introduced.

The driver *declines* rather than transforms whenever it cannot prove
the result equivalent — imprecise dependences, non-canonical loops,
nested control flow, short trip counts.  Declines carry a reason string
so the harness (and the interactive user of §8) can see why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.ddg import DependenceGraph, build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.core.decompose import decompose_mi
from repro.core.filters import FilterVerdict, bad_case_filter
from repro.core.if_conversion import if_convert
from repro.core.mi import MIPartition, NotPartitionable, partition_mis
from repro.core.mii import find_valid_ii, pmii_difmin
from repro.core.mve import apply_mve, plan_rotations
from repro.core.schedulers import get_scheduler
from repro.core.names import NamePool
from repro.core.scalar_expansion import apply_scalar_expansion
from repro.core.schedule import ShortTripCount, build_modulo_schedule
from repro.lang.ast_nodes import Break, Continue, Decl, For, Stmt, While
from repro.lang.visitors import walk
from repro.obs import get_tracer


@dataclass
class SLMSOptions:
    """Tuning knobs for the SLMS driver.

    ``expansion``
        ``"auto"`` (MVE when bounds are literal, else plain schedule),
        ``"mve"``, ``"scalar"`` (scalar expansion), or ``"none"``.
    ``ratio_threshold`` / ``min_arith_per_ref``
        §4 / §11 filter thresholds; ``enable_filter=False`` or
        ``force=True`` bypasses filtering entirely (the §8 interactive
        user saying "do it anyway").
    ``max_decompositions``
        Bound on §3.2 retries before giving up.
    ``max_unroll``
        Cap on the MVE unroll factor (register pressure guard; the
        paper's kernel-10 regression came from unbounded MVE).
    """

    enable_filter: bool = True
    ratio_threshold: float = 0.85
    min_arith_per_ref: float = 0.0
    expansion: str = "auto"
    max_decompositions: int = 8
    max_unroll: int = 8
    force: bool = False
    # §5's max-loop lane splitting: rotate a reduction variable through
    # N independent lanes and merge after the loop (0 disables).
    # min/max merges are bit-exact; sum/product lanes reassociate
    # floating point and additionally require allow_reassociation.
    reduction_lanes: int = 0
    allow_reassociation: bool = False
    # §3.2's second decomposition form: split MIs whose resource usage
    # exceeds the target VLIW's per-row capacity, e.g. ``(2, 2)`` for a
    # machine allowing two load/stores and two additions per VLS.
    # ``None`` disables resource-driven decomposition (the default —
    # SLMS "ignores hardware resources", §7).
    resource_limits: Optional[tuple] = None
    # Run the independent schedule validator (repro.verify.schedule) on
    # every applied result and attach its diagnostics to the report.
    verify: bool = False
    # Pluggable scheduling backend (docs/SCHEDULERS.md): "heuristic" is
    # the paper's fixed placement; "exact" proves placement optimality
    # by branch-and-bound within sched_budget placement attempts.
    scheduler: str = "heuristic"
    sched_budget: int = 50_000
    # Machine preset name for the source-level resMII report (None
    # skips it — the paper's scheduler is resource-blind, §7, so the
    # floor is informational and never gates feasibility).
    machine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.expansion not in ("auto", "mve", "scalar", "none"):
            raise ValueError(f"unknown expansion mode {self.expansion!r}")
        if self.resource_limits is not None:
            loads, arith = self.resource_limits
            if loads < 1 or arith < 1:
                raise ValueError("resource limits must be >= 1")
        from repro.core.schedulers import SCHEDULER_NAMES

        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                + ", ".join(SCHEDULER_NAMES)
            )
        if self.sched_budget < 1:
            raise ValueError("sched_budget must be >= 1")
        if self.machine is not None:
            from repro.machines.presets import machine_by_name

            machine_by_name(self.machine)  # raises on unknown names


@dataclass
class SLMSResult:
    """Outcome of SLMS on one loop (or a whole program — see pipeline)."""

    applied: bool
    stmts: List[Stmt] = field(default_factory=list)
    new_decls: List[Decl] = field(default_factory=list)
    reason: str = ""
    ii: Optional[int] = None
    pmii: Optional[int] = None
    stages: Optional[int] = None
    n_mis: Optional[int] = None
    decompositions: int = 0
    expansion: str = "none"
    unroll: int = 1
    new_scalars: List[str] = field(default_factory=list)
    filter_verdict: Optional[FilterVerdict] = None
    ddg: Optional[DependenceGraph] = None
    partition: Optional[MIPartition] = None
    # The MI list the schedule was built from (after decomposition,
    # before expansion) — what the Fig. 1 table view renders.
    final_mis: List[Stmt] = field(default_factory=list)
    # Reduction lanes used (≥ 2 when §5 lane splitting rewrote the loop
    # header; the schedule validator skips such results).
    lanes: int = 0
    # Validator findings, populated when SLMSOptions.verify is set.
    diagnostics: List = field(default_factory=list)
    # Expansion rename provenance: fresh name -> the MI scalar it
    # stands for (MVE rotation names, scalar-expansion arrays).  Lets
    # the schedule validator refuse to unify a rename of one scalar
    # against an occurrence of another.
    renames: Dict[str, str] = field(default_factory=dict)
    # Scheduling-backend report (docs/SCHEDULERS.md): which backend
    # placed the MIs, the resMII floor (when a machine was given), the
    # identity II the paper's search found, and — for non-default
    # backends — whether the II was proven optimal, the search size,
    # and the placement permutation applied to final_mis.
    scheduler: str = "heuristic"
    res_mii: Optional[int] = None
    heuristic_ii: Optional[int] = None
    sched_proven: Optional[bool] = None
    sched_nodes: int = 0
    sched_order: List[int] = field(default_factory=list)

    @staticmethod
    def declined(reason: str, **kwargs) -> "SLMSResult":
        return SLMSResult(applied=False, reason=reason, **kwargs)


def _has_inner_control(body: List[Stmt]) -> Optional[str]:
    for stmt in body:
        for node in walk(stmt):
            if isinstance(node, (For, While)):
                return "nested loop in body"
            if isinstance(node, (Break, Continue)):
                return "break/continue in body"
    return None


def _element_type(name: str, types: Dict[str, str]) -> str:
    return types.get(name, "float")


def _infer_type(expr, types: Dict[str, str]) -> str:
    """Static type of a scalar expression under the dialect's rules:
    ``int`` iff every leaf is an int; any float leaf, call, or unknown
    name promotes to ``float`` (matching the backend's expr_type)."""
    from repro.lang.ast_nodes import (
        ArrayRef, BinOp, Call, FloatLit, IntLit, Ternary, UnaryOp, Var,
    )

    if isinstance(expr, IntLit):
        return "int"
    if isinstance(expr, FloatLit):
        return "float"
    if isinstance(expr, Var):
        return types.get(expr.name, "float")
    if isinstance(expr, ArrayRef):
        return types.get(expr.name, "float")
    if isinstance(expr, UnaryOp):
        if expr.op == "!":
            return "int"
        return _infer_type(expr.operand, types)
    if isinstance(expr, BinOp):
        if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return "int"
        left = _infer_type(expr.left, types)
        right = _infer_type(expr.right, types)
        return "int" if left == right == "int" else "float"
    if isinstance(expr, Ternary):
        then = _infer_type(expr.then, types)
        els = _infer_type(expr.els, types)
        return "int" if then == els == "int" else "float"
    if isinstance(expr, Call):
        return "float"
    return "float"


def _trace_applied(
    tracer,
    ii: int,
    pmii: Optional[int],
    stages: int,
    n_mis: int,
    decompositions: int,
    expansion: str,
) -> None:
    tracer.event(
        "slms.applied",
        ii=ii,
        pmii=pmii,
        stages=stages,
        n_mis=n_mis,
        decompositions=decompositions,
        expansion=expansion,
    )


def slms_for_loop(
    loop: For,
    pool: NamePool,
    options: Optional[SLMSOptions] = None,
    types: Optional[Dict[str, str]] = None,
) -> SLMSResult:
    """Apply SLMS to one for loop; never mutates the input."""
    options = options or SLMSOptions()
    # Local copy: fresh temporaries (predicates, renamed webs,
    # decomposition registers) are registered as they are declared so
    # later passes (MVE, scalar expansion) type their own temps off them.
    types = dict(types or {})
    tracer = get_tracer()

    def declined(reason: str, **kwargs) -> SLMSResult:
        if tracer.enabled:
            tracer.event("slms.decline", reason=reason)
        return SLMSResult.declined(reason, **kwargs)

    # ---- step 0: canonical shape ----------------------------------------
    info = LoopInfo.from_for(loop)
    if info is None:
        return declined("loop is not in canonical counted form")
    control = _has_inner_control(loop.body)
    if control is not None:
        return declined(control)

    # ---- step 1: §4 bad-case filter ---------------------------------------
    verdict = bad_case_filter(
        loop.body,
        info.var,
        ratio_threshold=options.ratio_threshold,
        min_arith_per_ref=options.min_arith_per_ref,
    )
    if tracer.enabled:
        tracer.event(
            "filter.verdict",
            apply_slms=verdict.apply_slms,
            ratio=round(verdict.memory_ref_ratio, 6),
            loads=verdict.loads,
            stores=verdict.stores,
            scalar_accesses=verdict.scalar_accesses,
            arith=verdict.arith,
            enforced=options.enable_filter and not options.force,
        )
    if options.enable_filter and not options.force and not verdict.apply_slms:
        return declined(verdict.reason, filter_verdict=verdict)

    # ---- step 2: if-conversion ----------------------------------------------
    converted = if_convert([s.clone() for s in loop.body], pool)
    new_decls: List[Decl] = [Decl("int", p) for p in converted.predicates]
    new_scalars: List[str] = list(converted.predicates)
    types.update((p, "int") for p in converted.predicates)

    # ---- step 3: MI partition + multi-def renaming ----------------------------
    try:
        partition = partition_mis(
            converted.stmts, info.var, pool, elem_types=types
        )
    except NotPartitionable as exc:
        return declined(str(exc), filter_verdict=verdict)
    new_decls.extend(partition.hoisted_decls)
    types.update((d.name, d.type) for d in partition.hoisted_decls)
    for renames in partition.renamed.values():
        new_scalars.extend(renames)
    mis = partition.mis
    if not mis:
        return declined("empty loop body", filter_verdict=verdict)
    if tracer.enabled:
        tracer.event(
            "mi.partition",
            n_mis=len(mis),
            renamed=sorted(partition.renamed),
            predicates=len(converted.predicates),
        )

    # ---- §3.2 second form: resource-driven decomposition ------------------
    if options.resource_limits is not None:
        from repro.core.decompose import decompose_by_resources

        max_loads, max_arith = options.resource_limits
        changed = True
        rounds = 0
        while changed and rounds < options.max_decompositions:
            changed = False
            for pos, stmt in enumerate(mis):
                parts = decompose_by_resources(stmt, max_loads, max_arith, pool)
                if parts is not None:
                    temp = parts[0].target.name  # type: ignore[union-attr]
                    temp_type = _infer_type(parts[0].value, types)  # type: ignore[union-attr]
                    mis = mis[:pos] + parts + mis[pos + 1 :]
                    new_decls.append(Decl(temp_type, temp))
                    types[temp] = temp_type
                    new_scalars.append(temp)
                    changed = True
                    rounds += 1
                    break

    # ---- steps 4+5: DDG, II search, decomposition loop -------------------------
    decompositions = 0
    while True:
        graph = build_ddg(mis, info)
        if not graph.precise:
            return declined(
                "imprecise dependences: " + "; ".join(graph.reasons),
                filter_verdict=verdict,
                ddg=graph,
            )
        ii = find_valid_ii(graph, len(mis)) if len(mis) >= 2 else None
        if ii is not None:
            break
        if decompositions >= options.max_decompositions:
            return declined(
                "no valid II after maximum decompositions",
                decompositions=decompositions,
                filter_verdict=verdict,
                ddg=graph,
            )
        # §3.2: pick an MI (sequential order, §5 footnote) and split it.
        for pos, stmt in enumerate(mis):
            decomposition = decompose_mi(stmt, mis, info, pool)
            if decomposition is not None:
                mis = mis[:pos] + [decomposition.load_mi, decomposition.rest_mi] + mis[pos + 1 :]
                new_decls.append(
                    Decl(_element_type(decomposition.array, types), decomposition.temp)
                )
                types[decomposition.temp] = _element_type(decomposition.array, types)
                new_scalars.append(decomposition.temp)
                decompositions += 1
                if tracer.enabled:
                    tracer.event(
                        "decompose.round",
                        round=decompositions,
                        mi_index=pos,
                        array=decomposition.array,
                        temp=decomposition.temp,
                        n_mis=len(mis),
                    )
                break
        else:
            return declined(
                "no MI can be decomposed (§5 failure case)",
                decompositions=decompositions,
                filter_verdict=verdict,
            )

    # ---- pluggable placement refinement (docs/SCHEDULERS.md) -------------
    # The II search above IS the paper's scheduler (identity placement);
    # a non-default backend may now find a better placement for the same
    # MI partition.  Reordering the MI list realises the permutation —
    # every downstream pass and the validator key off list position —
    # and is sequentially sound because the backend enforced every
    # distance-0 dependence direction.
    heuristic_ii = ii
    backend = get_scheduler(
        options.scheduler, budget_nodes=options.sched_budget
    )
    floor = 1
    if info.trip_count is not None and info.trip_count > 0:
        # A lower II would push the stage count past the trip count and
        # trip the emission guard, so never search below this.
        floor = max(1, -(-len(mis) // info.trip_count))
    sched = backend.refine(graph, heuristic_ii, min_ii=floor)
    if not sched.is_identity:
        mis = [mis[m] for m in sched.order]
        graph = build_ddg(mis, info)
    ii = sched.ii

    res_mii = None
    if options.machine is not None:
        from repro.core.schedulers import resource_mii
        from repro.machines.presets import machine_by_name

        res_mii = resource_mii(mis, machine_by_name(options.machine), types)

    # Recurrence MII for the report: the difMin iterative-shortest-path
    # form (§3.6) — polynomial, unlike cycle enumeration, so dense
    # scalar-dependence graphs cannot blow up the driver.
    pmii = pmii_difmin(graph)
    stages = -(-len(mis) // ii)
    if tracer.enabled:
        tracer.event(
            "ii.found",
            ii=ii,
            pmii=pmii,
            stages=stages,
            n_mis=len(mis),
            decompositions=decompositions,
        )
        if options.scheduler != "heuristic":
            tracer.event(
                "sched.decision",
                backend=sched.backend,
                ii=sched.ii,
                heuristic_ii=heuristic_ii,
                proven=sched.proven_optimal,
                exhausted=sched.exhausted,
                nodes=sched.nodes,
                reordered=not sched.is_identity,
            )

    sched_report = dict(
        scheduler=options.scheduler,
        res_mii=res_mii,
        heuristic_ii=heuristic_ii,
        sched_proven=(
            sched.proven_optimal if options.scheduler != "heuristic" else None
        ),
        sched_nodes=sched.nodes,
        sched_order=list(sched.order),
    )

    # ---- step 6: expansion choice + emission --------------------------------
    expansion = options.expansion
    literal_bounds = info.trip_count is not None and info.step > 0

    if expansion in ("auto", "mve") and literal_bounds:
        plans = plan_rotations(mis, info, ii, pool)
        if plans and len(plans[0].names) <= options.max_unroll:
            try:
                mve = apply_mve(mis, info, ii, plans, elem_types=types)
            except ValueError as exc:
                return declined(str(exc), filter_verdict=verdict)
            new_decls.extend(mve.new_decls)
            new_scalars.extend(n for p in mve.plans for n in p.names)
            if tracer.enabled:
                tracer.event(
                    "expansion.choice",
                    strategy="mve",
                    unroll=mve.unroll,
                    rotated=sorted(p.var for p in mve.plans),
                )
                _trace_applied(tracer, ii, pmii, stages, len(mis),
                               decompositions, "mve")
            return SLMSResult(
                applied=True,
                stmts=mve.stmts,
                new_decls=new_decls,
                ii=ii,
                pmii=pmii,
                stages=stages,
                n_mis=len(mis),
                decompositions=decompositions,
                expansion="mve",
                unroll=mve.unroll,
                new_scalars=new_scalars,
                filter_verdict=verdict,
                ddg=graph,
                partition=partition,
                final_mis=[m.clone() for m in mis],
                renames={
                    name: p.var for p in mve.plans for name in p.names
                },
                **sched_report,
            )
        # fall through to plain schedule when nothing needs rotation
        expansion = "none" if expansion == "auto" else expansion

    if expansion == "scalar" and literal_bounds:
        expanded = apply_scalar_expansion(mis, info, pool, elem_types=types)
        mis_x = expanded.mis
        try:
            schedule = build_modulo_schedule(mis_x, info, ii)
        except ShortTripCount as exc:
            return declined(str(exc), filter_verdict=verdict)
        new_decls.extend(expanded.new_decls)
        if tracer.enabled:
            tracer.event(
                "expansion.choice",
                strategy="scalar",
                expanded=sorted(p.var for p in expanded.plans),
            )
            _trace_applied(tracer, ii, pmii, stages, len(mis),
                           decompositions, "scalar")
        return SLMSResult(
            applied=True,
            stmts=[*expanded.preheader, *schedule.stmts(), *expanded.liveout],
            new_decls=new_decls,
            ii=ii,
            pmii=pmii,
            stages=stages,
            n_mis=len(mis),
            decompositions=decompositions,
            expansion="scalar",
            new_scalars=new_scalars,
            filter_verdict=verdict,
            ddg=graph,
            partition=partition,
            final_mis=[m.clone() for m in mis],
            renames={p.array: p.var for p in expanded.plans},
            **sched_report,
        )

    if expansion == "mve" and not literal_bounds:
        return declined(
            "MVE requires literal bounds and a positive step",
            filter_verdict=verdict,
        )
    if expansion == "scalar" and not literal_bounds:
        return declined(
            "scalar expansion requires literal bounds and a positive step",
            filter_verdict=verdict,
        )

    # Plain schedule: sequentially correct; cross-row scalar anti-deps
    # remain (the backend rebuilds exact dependences anyway).
    try:
        schedule = build_modulo_schedule(mis, info, ii)
    except ShortTripCount as exc:
        return declined(str(exc), filter_verdict=verdict)
    if tracer.enabled:
        tracer.event("expansion.choice", strategy="none")
        _trace_applied(tracer, ii, pmii, stages, len(mis), decompositions,
                       "none")
    return SLMSResult(
        applied=True,
        stmts=schedule.stmts(),
        new_decls=new_decls,
        ii=ii,
        pmii=pmii,
        stages=stages,
        n_mis=len(mis),
        decompositions=decompositions,
        expansion="none",
        new_scalars=new_scalars,
        filter_verdict=verdict,
        ddg=graph,
        partition=partition,
        final_mis=[m.clone() for m in mis],
        **sched_report,
    )
