"""MII computation (paper §3.5–§3.6) and the valid-II search.

Three views of the same question, cross-checked in the test suite:

* :func:`pmii_cycle_ratio` — the recurrence-constrained MII as the
  maximum over dependence cycles of ``⌈Σ delay / Σ distance⌉``
  (enumerates cycles; exact for the small MI graphs SLMS sees).
* :func:`difmin_feasible` / :func:`pmii_difmin` — the Iterative Shortest
  Path formulation the paper adopts from [3, 23]: for a candidate II,
  the ``difMin`` matrix is the all-pairs *longest* path under edge
  weight ``delay − II·distance``; the II is feasible iff no positive
  cycle exists (``difMin[v][v] ≤ 0``).  PMII is the smallest feasible II
  found by iterating II upward, exactly as §5 describes.
* :func:`find_valid_ii` — the II that SLMS's *fixed placement* actually
  needs.  SLMS never reorders MIs inside an iteration (MI ``m`` of
  iteration ``k`` sits at row ``k·II + m``; the final compiler's list
  scheduler does intra-row scheduling).  A dependence
  ``src → dst, distance d`` therefore requires
  ``d·II + (dst − src) ≥ 1`` for flow edges (the consumed value must be
  produced in a strictly earlier row) and ``≥ 0`` for anti/output edges
  (a same-row overlap is legal because rows are emitted oldest-iteration
  first — the paper's footnote-1 assumption made explicit).

Per the paper, a valid II must also beat the sequential schedule:
``II < number of MIs``.
"""

from __future__ import annotations

from math import ceil, inf
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.ddg import DependenceGraph
from repro.obs import get_tracer

# SLMS only needs the smallest distance per (src, dst) pair — see
# DependenceGraph.dominant_edges — so all functions below work on that
# reduction.


def pmii_cycle_ratio(graph: DependenceGraph) -> Optional[int]:
    """Max-cycle-ratio PMII: ``max over cycles ⌈Σ delay / Σ distance⌉``.

    Returns ``None`` when the graph has no dependence cycle (any II —
    including 1 — satisfies the recurrence constraint), and ``inf``-like
    behaviour is impossible because every cycle in a legal DDG carries
    distance ≥ 1 (a zero-distance cycle would mean a dependence cycle
    inside one iteration, i.e. the original program is contradictory).
    """
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n))
    for (src, dst), (delay, distance) in graph.dominant_edges().items():
        g.add_edge(src, dst, delay=delay, distance=distance)
    best: Optional[int] = None
    for cycle in nx.simple_cycles(g):
        delay_sum = 0
        dist_sum = 0
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % len(cycle)]
            data = g.edges[u, v]
            delay_sum += data["delay"]
            dist_sum += data["distance"]
        if dist_sum == 0:
            raise ValueError(
                "zero-distance dependence cycle: inconsistent DDG "
                f"(cycle {cycle})"
            )
        ratio = ceil(delay_sum / dist_sum)
        if best is None or ratio > best:
            best = ratio
    return best


def difmin_matrix(graph: DependenceGraph, ii: int) -> List[List[float]]:
    """All-pairs longest path under weight ``delay − II·distance``.

    This is the difMin matrix of [3]; entries are ``-inf`` where no path
    exists.  Positive diagonal ⇒ II infeasible.
    """
    n = graph.n
    dist: List[List[float]] = [[-inf] * n for _ in range(n)]
    for (src, dst), (delay, distance) in graph.dominant_edges().items():
        weight = delay - ii * distance
        if weight > dist[src][dst]:
            dist[src][dst] = weight
    # Floyd–Warshall longest path.  A positive diagonal can amplify
    # itself; one extra pass detecting it is enough because we only need
    # feasibility, not the exact unbounded values.
    for mid in range(n):
        for a in range(n):
            if dist[a][mid] == -inf:
                continue
            via = dist[a][mid]
            row_mid = dist[mid]
            row_a = dist[a]
            for b in range(n):
                if row_mid[b] == -inf:
                    continue
                candidate = via + row_mid[b]
                if candidate > row_a[b]:
                    row_a[b] = candidate
    return dist


def difmin_feasible(graph: DependenceGraph, ii: int) -> bool:
    """Is ``ii`` feasible under the recurrence constraint (difMin test)?"""
    matrix = difmin_matrix(graph, ii)
    return all(matrix[v][v] <= 0 for v in range(graph.n))


def pmii_difmin(graph: DependenceGraph, max_ii: Optional[int] = None) -> Optional[int]:
    """Smallest feasible II by iterating the difMin test (paper §5).

    ``max_ii`` defaults to the number of MIs; ``None`` is returned when
    no II up to the bound is feasible (cannot happen for legal DDGs, but
    the guard keeps the search total).
    """
    limit = max_ii if max_ii is not None else max(graph.n, 1)
    tracer = get_tracer()
    for ii in range(1, limit + 1):
        feasible = difmin_feasible(graph, ii)
        if tracer.enabled:
            tracer.event("mii.difmin", ii=ii, feasible=feasible)
        if feasible:
            return ii
    return None


def find_valid_ii(
    graph: DependenceGraph,
    n_mis: int,
    max_ii: Optional[int] = None,
) -> Optional[int]:
    """The smallest II valid for SLMS's fixed MI placement.

    Checks every dependence edge against the row arithmetic
    ``row(dst, k+d) − row(src, k) = d·II + (dst − src)`` with the
    required minimum slack (1 for flow, 0 for anti/output).  Slack is
    monotonically non-decreasing in II for every edge (distance ≥ 0), so
    the first II that passes is the minimum.  Returns ``None`` when no
    ``II < n_mis`` works — by the paper's definition such a schedule
    would not beat the sequential loop, so SLMS must decompose or give
    up.
    """
    tracer = get_tracer()
    upper = min(max_ii, n_mis - 1) if max_ii is not None else n_mis - 1
    if upper < 1:
        if tracer.enabled:
            tracer.event("ii.search", upper=upper, outcome="no room")
        return None
    binding: List[Tuple[int, int, int]] = []  # (distance, span, min_slack)
    for edge in graph.edges:
        span = edge.dst - edge.src
        need = 1 if edge.kind == "flow" else 0
        if edge.distance == 0:
            # Distance-0 edges always have src < dst (span ≥ 1 ≥ need).
            if span < need:
                return None  # inconsistent graph; be safe
            continue
        binding.append((edge.distance, span, need))
    for ii in range(1, upper + 1):
        valid = all(d * ii + span >= need for d, span, need in binding)
        if tracer.enabled:
            tracer.event("ii.candidate", ii=ii, valid=valid)
        if valid:
            return ii
    if tracer.enabled:
        tracer.event("ii.search", upper=upper, outcome="exhausted")
    return None


def edge_slacks(graph: DependenceGraph, ii: int) -> Dict[Tuple[int, int, str], int]:
    """Diagnostic: per-edge slack ``d·II + (dst−src)`` at a given II."""
    return {
        (e.src, e.dst, e.kind): e.distance * ii + (e.dst - e.src)
        for e in graph.edges
    }
