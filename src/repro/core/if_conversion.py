"""Source-level if-conversion (paper §3.1).

``if (x < y) { x = x + 1; A[i] += x; } else { y = y + 1; }`` becomes::

    c = x < y;
    if (c) x = x + 1;
    if (c) A[i] += x;
    if (!c) y = y + 1;

Each predicated statement is then a single MI that modulo scheduling can
place independently.  The predicate is evaluated once into a fresh
boolean temp so the condition cannot be perturbed by the converted
statements (the paper's example does exactly this).

Nested ifs convert recursively with conjoined predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.names import NamePool
from repro.obs import get_tracer
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    If,
    Stmt,
    UnaryOp,
    Var,
)


@dataclass
class IfConversionResult:
    """Converted statement list plus the predicate temps introduced."""

    stmts: List[Stmt]
    predicates: List[str] = field(default_factory=list)
    converted: bool = False


def _predicated(pred: Optional[Expr], stmt: Stmt) -> Stmt:
    if pred is None:
        return stmt
    return If(pred.clone(), [stmt], [])


def _conjoin(a: Optional[Expr], b: Expr) -> Expr:
    if a is None:
        return b
    return BinOp("&&", a.clone(), b)


def if_convert(stmts: List[Stmt], pool: NamePool) -> IfConversionResult:
    """Flatten every ``if`` in ``stmts`` into predicated single statements.

    Statements that are not ifs pass through untouched (under the
    enclosing predicate, if any).  Loops nested inside an ``if`` are not
    supported — the caller has already declined such loops.
    """
    result = IfConversionResult(stmts=[])

    def convert(block: List[Stmt], pred: Optional[Expr]) -> None:
        for stmt in block:
            if isinstance(stmt, If):
                # Already-predicated single statements (if (p) s;) where p
                # is a bare (possibly negated) variable pass through under
                # the conjoined predicate without a fresh temp.
                if (
                    len(stmt.then) == 1
                    and not stmt.els
                    and _is_simple_pred(stmt.cond)
                    and not isinstance(stmt.then[0], If)
                ):
                    result.stmts.append(
                        _predicated(_conjoin(pred, stmt.cond.clone()), stmt.then[0].clone())
                    )
                    result.converted = result.converted or pred is not None
                    continue
                name = pool.numbered("pred", start=0)
                result.predicates.append(name)
                result.converted = True
                result.stmts.append(
                    _predicated(pred, Assign(Var(name), stmt.cond.clone()))
                )
                convert(stmt.then, _conjoin(pred, Var(name)))
                convert(stmt.els, _conjoin(pred, UnaryOp("!", Var(name))))
            else:
                result.stmts.append(_predicated(pred, stmt.clone()))

    def _is_simple_pred(expr: Expr) -> bool:
        if isinstance(expr, Var):
            return True
        return isinstance(expr, UnaryOp) and expr.op == "!" and isinstance(
            expr.operand, Var
        )

    convert(stmts, None)
    if result.converted:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "if_conversion.apply",
                predicates=list(result.predicates),
                stmts=len(result.stmts),
            )
    return result
