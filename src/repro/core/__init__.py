"""The paper's contribution: Source Level Modulo Scheduling.

Submodules follow the structure of the SLMS algorithm (paper §5):

* :mod:`repro.core.filters` — §4 bad-case filtering (memory-ref ratio);
* :mod:`repro.core.if_conversion` — §3.1 source-level predication;
* :mod:`repro.core.mi` — §3 multi-instruction partitioning and
  multi-def scalar renaming;
* :mod:`repro.core.mii` — §3.5/§3.6 delays, difMin iterative shortest
  path, cycle-ratio PMII, and the fixed-placement valid-II search;
* :mod:`repro.core.decompose` — §3.2 MI decomposition;
* :mod:`repro.core.schedule` — §1/§5 prologue/kernel/epilogue emission;
* :mod:`repro.core.mve` — §3.3 modulo variable expansion;
* :mod:`repro.core.scalar_expansion` — §3.4 scalar expansion;
* :mod:`repro.core.slms` — the §5 driver tying it all together;
* :mod:`repro.core.pipeline` — the user-facing ``slms()`` entry point;
* :mod:`repro.core.extensions` — §10 while-loop and frequent-path SLMS.
"""

from repro.core.pipeline import slms, slms_loop
from repro.core.slms import SLMSOptions, SLMSResult, slms_for_loop

__all__ = ["SLMSOptions", "SLMSResult", "slms", "slms_for_loop", "slms_loop"]
