"""Frequent-path SLMS for loops with conditionals (§10, second
extension; Fig. 23).

For ``for (i) { if (A) B; else C; D; }`` where profile information says
``A;B;D`` is the hot path, §3.1-style if-conversion is wasteful (it
predicates every statement).  Instead the kernel is built from the hot
path only — ``[D(i) ‖ B(i+1)]`` — and runs as long as ``A`` keeps
evaluating true; a fix-up path drains the pipe, handles the cold
``C`` iteration, and re-enters the kernel at the next opportunity.

The emitted structure (a verified refinement of the paper's sketch):

.. code-block:: text

    i = lo;
    while (i < hi) {
        if (A(i)) {
            B(i);                            // fill the pipe
            while (i+1 < hi && A(i+1)) {     // steady state
                D(i) ‖ B(i+1); i++;          //   the KPf kernel row
            }
            D(i); i++;                       // drain
        } else {
            C(i); D(i); i++;                 // cold path
        }
    }

Legality: evaluating ``A(i+1)`` before ``D(i)`` reorders them relative
to the original program, so no store of ``D`` (or ``B``) may reach
``A``'s reads one iteration later; conditions are checked with the
dependence tests and the transformation declines otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.affine import analyze_subscript
from repro.analysis.deptests import test_dependence
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    For,
    If,
    IntLit,
    ParGroup,
    Stmt,
    Var,
    While,
)
from repro.lang.visitors import (
    collect_array_refs,
    collect_calls,
    collect_vars,
    defined_scalars,
    substitute_index,
    walk,
)
from repro.transforms.errors import TransformError


def _stores_reach_cond(
    stmts: List[Stmt], cond_refs, iv: str, step: int
) -> Optional[str]:
    """Does a store in ``stmts`` alias a condition read one iteration
    later?  Returns the array name or ``None``."""
    for stmt in stmts:
        for node in walk(stmt):
            if isinstance(node, Assign) and isinstance(node.target, ArrayRef):
                store = node.target
                store_subs = []
                for idx in store.indices:
                    a = analyze_subscript(idx, iv)
                    if a is None:
                        return store.name
                    store_subs.append(a)
                for ref in cond_refs:
                    if ref.name != store.name:
                        continue
                    ref_subs = []
                    ok = True
                    for idx in ref.indices:
                        a = analyze_subscript(idx, iv)
                        if a is None:
                            ok = False
                            break
                        ref_subs.append(a)
                    if not ok or len(ref_subs) != len(store_subs):
                        return store.name
                    dep = test_dependence(
                        tuple(store_subs), tuple(ref_subs), step=step
                    )
                    if dep.exists and (dep.distance is None or dep.distance == 1):
                        return store.name
    return None


def frequent_path_slms(loop: For) -> List[Stmt]:
    """Transform ``for { if (A) B…; else C…; D…; }`` into a
    frequent-path pipelined loop (see module docstring).

    ``B``/``C``/``D`` may be multi-statement.  Raises
    :class:`TransformError` when the loop does not match the shape or
    the reordering cannot be proven safe.
    """
    info = LoopInfo.from_for(loop)
    if info is None:
        raise TransformError("loop is not in canonical counted form")
    if len(loop.body) < 1 or not isinstance(loop.body[0], If):
        raise TransformError("body must start with the branched statement")
    branch = loop.body[0]
    if not branch.els:
        raise TransformError("frequent-path SLMS expects an else branch")
    b_stmts = [s.clone() for s in branch.then]
    c_stmts = [s.clone() for s in branch.els]
    d_stmts = [s.clone() for s in loop.body[1:]]
    if not d_stmts:
        raise TransformError("need trailing statements (the D part)")
    iv, step = info.var, info.step
    if step <= 0:
        raise TransformError("frequent-path SLMS supports positive steps")

    for group in (b_stmts, c_stmts, d_stmts, [branch]):
        for stmt in group:
            if collect_calls(stmt):
                raise TransformError("opaque calls are not supported")
            for node in walk(stmt):
                if isinstance(node, (For, While)):
                    raise TransformError("nested loops are not supported")

    # Reordering checks: A(i+1) is evaluated before D(i) and B(i+1)
    # before... (B(i+1) runs after D(i) in the kernel row — original
    # order, fine).  So only D's and B's stores vs A's reads matter.
    cond_refs = collect_array_refs(branch.cond)
    offender = _stores_reach_cond(d_stmts + b_stmts, cond_refs, iv, step)
    if offender is not None:
        raise TransformError(
            f"a store to {offender!r} reaches the condition one iteration "
            "later; cannot hoist the condition"
        )
    # Scalars written by B/D and read by A carry the same hazard.
    cond_scalars = collect_vars(branch.cond)
    for stmt in d_stmts + b_stmts:
        written = defined_scalars(stmt)
        if written & cond_scalars:
            raise TransformError(
                f"scalar {sorted(written & cond_scalars)[0]!r} written by "
                "the hot path feeds the condition"
            )

    def shifted(stmts: List[Stmt], k: int) -> List[Stmt]:
        return [substitute_index(s.clone(), iv, k * step) for s in stmts]

    bound = info.hi.clone()
    next_in_range = BinOp(
        "<", BinOp("+", Var(iv), IntLit(step)), bound
    )
    kernel_row: List[Stmt] = []
    kernel_row.extend(d_stmts)
    kernel_row.extend(shifted(b_stmts, 1))
    kernel = While(
        BinOp("&&", next_in_range, substitute_index(branch.cond.clone(), iv, step)),
        [ParGroup(kernel_row) if len(kernel_row) > 1 else kernel_row[0],
         Assign(Var(iv), IntLit(step), "+")],
    )

    hot = If(
        branch.cond.clone(),
        [
            *[s.clone() for s in b_stmts],
            kernel,
            *[s.clone() for s in d_stmts],
            Assign(Var(iv), IntLit(step), "+"),
        ],
        [
            *[s.clone() for s in c_stmts],
            *[s.clone() for s in d_stmts],
            Assign(Var(iv), IntLit(step), "+"),
        ],
    )
    dispatch = While(BinOp("<", Var(iv), info.hi.clone()), [hot])
    return [Assign(Var(iv), info.lo.clone()), dispatch]
