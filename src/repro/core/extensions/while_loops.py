"""While-loop SLMS (§10, first extension).

§10 observes that while-loops whose body advances an index can be
unrolled despite the unknown trip count [Huang & Leng], and once
unrollable they can be software pipelined.  The worked example is the
shifted string copy::

    i = 0;
    while (a[i+2]) { a[i] = a[i+2]; i++; }

:func:`unroll_while` produces the unrolled form with the conjunction
condition and a residual loop; :func:`pipeline_while` additionally
overlaps the unrolled copies through rotating load registers (the
paper's ``reg1``/``reg2`` version).  Both transformations verify their
legality with the dependence machinery and raise
:class:`~repro.transforms.errors.TransformError` when the loop does not
fit the supported shape:

* the body is straight-line assignments ending with ``iv += step``;
* the condition is side-effect free;
* no body store can affect the condition or another copy's loads within
  the unroll window (checked with the §3-style dependence tests).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.affine import analyze_subscript
from repro.analysis.deptests import test_dependence
from repro.core.names import NamePool, all_names
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    IntLit,
    ParGroup,
    Stmt,
    Var,
    While,
)
from repro.lang.visitors import (
    collect_array_refs,
    collect_calls,
    defined_scalars,
    substitute_index,
)
from repro.transforms.errors import TransformError


def _split_body(loop: While) -> Tuple[List[Stmt], str, int]:
    """Return (body without increment, induction var, step)."""
    if not loop.body:
        raise TransformError("empty while body")
    last = loop.body[-1]
    if not (
        isinstance(last, Assign)
        and isinstance(last.target, Var)
        and last.op in ("+", "-")
        and isinstance(last.value, IntLit)
    ):
        raise TransformError(
            "while body must end with an induction-variable increment"
        )
    iv = last.target.name
    step = last.value.value if last.op == "+" else -last.value.value
    if step == 0:
        raise TransformError("zero-step while loop")
    body = [s.clone() for s in loop.body[:-1]]
    for stmt in body:
        if not isinstance(stmt, Assign):
            raise TransformError(
                "while-loop SLMS supports straight-line assignment bodies"
            )
        if iv in defined_scalars(stmt):
            raise TransformError("induction variable redefined mid-body")
    if collect_calls(loop.cond):
        raise TransformError("condition must be side-effect free")
    return body, iv, step


def _writes_conflict_with(
    body: List[Stmt],
    target_refs: List[ArrayRef],
    iv: str,
    step: int,
    max_shift: int,
) -> Optional[str]:
    """Does any body store hit a target ref within 1..max_shift
    iterations?  Returns the offending array name, else ``None``."""
    for stmt in body:
        if not (isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef)):
            continue
        store = stmt.target
        store_subs = []
        for idx in store.indices:
            a = analyze_subscript(idx, iv)
            if a is None:
                return store.name
            store_subs.append(a)
        for ref in target_refs:
            if ref.name != store.name:
                continue
            ref_subs = []
            ok = True
            for idx in ref.indices:
                a = analyze_subscript(idx, iv)
                if a is None:
                    ok = False
                    break
                ref_subs.append(a)
            if not ok or len(ref_subs) != len(store_subs):
                return store.name
            result = test_dependence(
                tuple(store_subs), tuple(ref_subs), step=step
            )
            if not result.exists:
                continue
            if result.distance is None:
                return store.name
            if 1 <= result.distance <= max_shift:
                return store.name
    return None


def unroll_while(loop: While, factor: int = 2) -> List[Stmt]:
    """Unroll an index-advancing while loop.

    Emits ``while (cond(0) && cond(step) && …) { copies…; iv += f·step }``
    followed by the original loop as the residual.  Legal when no body
    store can change the shifted condition evaluations within the
    window.
    """
    if factor < 2:
        raise TransformError("unroll factor must be >= 2")
    body, iv, step = _split_body(loop)

    cond_refs = collect_array_refs(loop.cond)
    offender = _writes_conflict_with(body, cond_refs, iv, step, factor - 1)
    if offender is not None:
        raise TransformError(
            f"a store to {offender!r} can change the unrolled condition"
        )
    # Copy k's loads must not see copy j<k's stores differently than in
    # the original — sequential copy order preserves that automatically.

    combined: Expr = loop.cond.clone()
    for k in range(1, factor):
        shifted = substitute_index(loop.cond.clone(), iv, k * step)
        combined = BinOp("&&", combined, shifted)

    new_body: List[Stmt] = []
    for k in range(factor):
        for stmt in body:
            new_body.append(substitute_index(stmt.clone(), iv, k * step))
    new_body.append(
        Assign(Var(iv), IntLit(abs(step) * factor), "+" if step > 0 else "-")
    )
    unrolled = While(combined, new_body)
    residual = loop.clone()
    return [unrolled, residual]


def pipeline_while(loop: While, pool: Optional[NamePool] = None) -> List[Stmt]:
    """The paper's pipelined while loop: unroll by 2, then hoist each
    copy's (single) safe load into rotating registers so the two copies
    overlap — the §10 string-copy transformation.

    Supported shape: one body statement ``A[f(i)] = A[g(i)]`` (plus the
    increment) whose load reads ahead of the store, with the condition
    guarding the read (``while (a[i+2]) { a[i] = a[i+2]; i++; }``).
    """
    body, iv, step = _split_body(loop)
    if len(body) != 1:
        raise TransformError("pipeline_while supports single-statement bodies")
    stmt = body[0]
    if not isinstance(stmt.target, ArrayRef) or stmt.op is not None:
        raise TransformError("body must be a plain array-to-array copy")
    loads = collect_array_refs(stmt.value)
    if len(loads) != 1 or not isinstance(stmt.value, ArrayRef):
        raise TransformError("body RHS must be a single array load")
    load = loads[0]

    # The load must be read-ahead of the store (anti dependence), and
    # the condition must dominate it (same or further offset), so the
    # rotated load never touches unchecked memory.
    store_sub = analyze_subscript(stmt.target.indices[0], iv)
    load_sub = analyze_subscript(load.indices[0], iv)
    cond_refs = collect_array_refs(loop.cond)
    if store_sub is None or load_sub is None or len(stmt.target.indices) != 1:
        raise TransformError("subscripts must be affine in the index")
    dep = test_dependence((store_sub,), (load_sub,), step=step)
    if dep.exists and (dep.distance is None or dep.distance >= 0):
        raise TransformError("load has a flow dependence with the store")
    guard_ok = any(
        ref.name == load.name
        and analyze_subscript(ref.indices[0], iv) == load_sub
        for ref in cond_refs
        if len(ref.indices) == 1
    )
    if not guard_ok:
        raise TransformError(
            "the loop condition must test the load's element (bounds guard)"
        )
    offender = _writes_conflict_with(body, cond_refs, iv, step, 1)
    if offender is not None:
        raise TransformError(
            f"a store to {offender!r} can change the unrolled condition"
        )

    pool = pool or NamePool(all_names(loop))
    reg1 = pool.numbered("reg", start=1)
    reg2 = pool.numbered("reg", start=1)

    def shift(node, k: int):
        return substitute_index(node.clone(), iv, k * step)

    # Structure (maintains the invariant "cond(0) true, reg1 == load(0),
    # iteration 0's store pending" at the kernel top; every load the
    # kernel issues is an element the combined condition has tested):
    #
    #   if (cond) {                       // enter the pipe
    #       reg1 = load(0);
    #       while (cond(+1) && cond(+2)) {
    #           [store(0) = reg1 || reg2 = load(+1)];
    #           [store(+1) = reg2 || reg1 = load(+2)];
    #           iv += 2*step;
    #       }
    #       store(0) = reg1;              // drain the pending iteration
    #       iv += step;
    #   }
    #   while (cond) { body }             // residual iterations
    from repro.lang.ast_nodes import If

    kernel_body: List[Stmt] = [
        ParGroup(
            [
                Assign(stmt.target.clone(), Var(reg1)),
                Assign(Var(reg2), shift(load, 1)),
            ]
        ),
        ParGroup(
            [
                Assign(shift(stmt.target, 1), Var(reg2)),
                Assign(Var(reg1), shift(load, 2)),
            ]
        ),
        Assign(Var(iv), IntLit(abs(step) * 2), "+" if step > 0 else "-"),
    ]
    combined = BinOp("&&", shift(loop.cond, 1), shift(loop.cond, 2))
    pipelined = While(combined, kernel_body)
    drain = [
        Assign(stmt.target.clone(), Var(reg1)),
        Assign(Var(iv), IntLit(abs(step)), "+" if step > 0 else "-"),
    ]
    entry = If(
        loop.cond.clone(),
        [Assign(Var(reg1), load.clone()), pipelined, *drain],
        [],
    )
    residual = loop.clone()
    return [entry, residual]
