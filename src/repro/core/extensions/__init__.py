"""§10 extensions: SLMS beyond simple counted loops.

The paper demonstrates (via examples, leaving "full implementation …
beyond the scope of this work") that SLMS generalizes to while-loops and
to loops with conditionals scheduled along their most frequent path.
These modules implement working, oracle-verified versions of both for
the loop shapes the paper uses:

* :mod:`repro.core.extensions.while_loops` — unrolling and software
  pipelining of index-advancing while loops (the shifted string copy);
* :mod:`repro.core.extensions.freq_path` — frequent-path kernels for
  ``for { if (A) B; else C; D; }`` loops with fix-up code off the fast
  path (Fig. 23).
"""

from repro.core.extensions.freq_path import frequent_path_slms
from repro.core.extensions.while_loops import pipeline_while, unroll_while

__all__ = ["frequent_path_slms", "pipeline_while", "unroll_while"]
