"""Exact modulo scheduling by branch-and-bound (docs/SCHEDULERS.md).

Moovac-style encoding, specialised to SLMS's unit-latency rows: the
integer variables are the MI row offsets ``σ(v) ∈ [0, n-1]``, the
overlap/ordering decisions are implicit in the permutation the search
builds slot by slot, and every dependence edge contributes

    σ(dst) − σ(src) ≥ need − distance·II      (need: 1 flow, 0 anti/out)

which is exactly the difference-constraint system behind the paper's
difMin matrix — so the pruning relaxation reuses that machinery: the
all-pairs *longest path* ``L`` over edge weight ``need − d·II`` gives
``σ(v) − σ(u) ≥ L[u][v]`` for every pair, a positive diagonal proves
the II infeasible for *any* placement, and ``L`` tightens each node's
earliest/latest slot (``est``/``ub``) as slots are committed.

The search assigns slot 0, then 1, … (a permutation has no gaps, so a
slot nobody can take kills the branch immediately); each committed slot
propagates ``est/ub`` through ``L`` and prunes on an empty window.  II
feasibility is monotone — raising II only loosens every constraint —
so the first feasible II in the upward sweep is optimal.

Budgets: the node budget counts placement attempts and is the
*deterministic* bound (verdicts are a pure function of the graph and
the budget — fuzz reports stay byte-identical across hosts); the
optional wall-clock budget is off by default and meant for interactive
use only.  A result obtained after any budget exhaustion at a lower II
is flagged ``exhausted`` and never ``proven_optimal``.
"""

from __future__ import annotations

import time
from math import inf
from typing import List, Optional, Tuple

from repro.analysis.ddg import DependenceGraph
from repro.core.schedulers.base import (
    ModuloScheduler,
    SourceSchedule,
    edge_min_slack,
    identity_feasible,
)


class _BudgetExhausted(Exception):
    pass


class _Budget:
    """Placement-attempt countdown shared across one II sweep."""

    __slots__ = ("remaining", "used", "deadline")

    def __init__(self, nodes: int, time_budget_s: Optional[float] = None):
        self.remaining = nodes
        self.used = 0
        self.deadline = (
            time.monotonic() + time_budget_s
            if time_budget_s is not None
            else None
        )

    def spend(self) -> None:
        if self.remaining <= 0:
            raise _BudgetExhausted
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise _BudgetExhausted
        self.remaining -= 1
        self.used += 1


class ExactScheduler(ModuloScheduler):
    """Branch-and-bound over MI placements; proves II optimality."""

    name = "exact"
    DEFAULT_BUDGET = 50_000

    def __init__(
        self,
        budget_nodes: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ):
        super().__init__(
            budget_nodes=budget_nodes
            if budget_nodes and budget_nodes > 0
            else self.DEFAULT_BUDGET
        )
        self.time_budget_s = time_budget_s

    # ---- constraint relaxation ------------------------------------------

    def _longest_paths(
        self, graph: DependenceGraph, ii: int
    ) -> Optional[List[List[float]]]:
        """All-pairs longest path over ``need − d·II``; ``None`` when a
        positive cycle proves the II infeasible for every placement."""
        n = graph.n
        w: List[List[float]] = [[-inf] * n for _ in range(n)]
        for edge in graph.edges:
            weight = edge_min_slack(edge.kind) - edge.distance * ii
            if weight > w[edge.src][edge.dst]:
                w[edge.src][edge.dst] = weight
        for mid in range(n):
            row_mid = w[mid]
            for a in range(n):
                via = w[a][mid]
                if via == -inf:
                    continue
                row_a = w[a]
                for b in range(n):
                    if row_mid[b] == -inf:
                        continue
                    candidate = via + row_mid[b]
                    if candidate > row_a[b]:
                        row_a[b] = candidate
        if any(w[v][v] > 0 for v in range(n)):
            return None
        return w

    # ---- the search ------------------------------------------------------

    def _solve(
        self, graph: DependenceGraph, ii: int, budget: _Budget
    ) -> Tuple[Optional[List[int]], bool]:
        """``(order, exhausted)`` — ``order`` is ``None`` when the II is
        infeasible or the budget ran out (``exhausted`` tells which)."""
        n = graph.n
        paths = self._longest_paths(graph, ii)
        if paths is None:
            return None, False
        last = n - 1
        est = [0] * n
        ub = [last] * n
        for v in range(n):
            for u in range(n):
                to_v = paths[u][v]
                if to_v != -inf and to_v > est[v]:
                    est[v] = int(to_v)  # σ(u) ≥ 0 ⇒ σ(v) ≥ L[u][v]
                from_v = paths[v][u]
                if from_v != -inf and last - from_v < ub[v]:
                    ub[v] = int(last - from_v)  # σ(u) ≤ n−1
            if est[v] > ub[v]:
                return None, False

        order = [0] * n
        used = [False] * n

        def place(r: int, est: List[int], ub: List[int]) -> bool:
            if r == n:
                return True
            musts: List[int] = []
            cands: List[int] = []
            for v in range(n):
                if used[v]:
                    continue
                if ub[v] < r:
                    return False  # v can never be placed any more
                if est[v] <= r:
                    cands.append(v)
                    if ub[v] == r:
                        musts.append(v)
            if not cands or len(musts) > 1:
                return False  # slot r unfillable / two MIs forced into it
            if musts:
                cands = musts
            else:
                cands.sort(key=lambda v: (ub[v], est[v], v))
            for m in cands:
                budget.spend()
                used[m] = True
                new_est = list(est)
                new_ub = list(ub)
                viable = True
                for v in range(n):
                    if used[v]:
                        continue
                    fwd = paths[m][v]
                    if fwd != -inf and r + fwd > new_est[v]:
                        new_est[v] = int(r + fwd)
                    back = paths[v][m]
                    if back != -inf and r - back < new_ub[v]:
                        new_ub[v] = int(r - back)
                    if new_est[v] > new_ub[v]:
                        viable = False
                        break
                if viable and place(r + 1, new_est, new_ub):
                    order[r] = m
                    return True
                used[m] = False
            return False

        try:
            found = place(0, est, ub)
        except _BudgetExhausted:
            return None, True
        return (order if found else None), False

    # ---- public API ------------------------------------------------------

    def schedule(
        self, graph: DependenceGraph, ii: int
    ) -> Optional[SourceSchedule]:
        if not 1 <= ii < graph.n:  # the paper's II < n_mis validity bound
            return None
        if identity_feasible(graph, ii):
            return SourceSchedule(
                ii=ii, order=tuple(range(graph.n)), backend=self.name
            )
        budget = _Budget(self.budget_nodes, self.time_budget_s)
        order, _exhausted = self._solve(graph, ii, budget)
        if order is None:
            return None
        return SourceSchedule(
            ii=ii,
            order=tuple(order),
            backend=self.name,
            nodes=budget.used,
        )

    def find_schedule(
        self,
        graph: DependenceGraph,
        n_mis: int,
        max_ii: Optional[int] = None,
    ) -> Optional[SourceSchedule]:
        upper = min(max_ii, n_mis - 1) if max_ii is not None else n_mis - 1
        if upper < 1:
            return None
        budget = _Budget(self.budget_nodes, self.time_budget_s)
        exhausted = False
        for ii in range(1, upper + 1):
            # The identity check is free and keeps the heuristic's
            # schedule as a floor even after budget exhaustion.
            if identity_feasible(graph, ii):
                return SourceSchedule(
                    ii=ii,
                    order=tuple(range(graph.n)),
                    backend=self.name,
                    proven_optimal=not exhausted,
                    exhausted=exhausted,
                    nodes=budget.used,
                )
            order, ran_out = self._solve(graph, ii, budget)
            if order is not None:
                return SourceSchedule(
                    ii=ii,
                    order=tuple(order),
                    backend=self.name,
                    proven_optimal=not exhausted,
                    exhausted=exhausted,
                    nodes=budget.used,
                )
            exhausted = exhausted or ran_out
        return None

    def refine(
        self,
        graph: DependenceGraph,
        heuristic_ii: int,
        min_ii: int = 1,
    ) -> SourceSchedule:
        """Search for a placement below the heuristic's II.

        The identity placement at ``heuristic_ii`` is the fallback, so
        the returned II never exceeds the heuristic's — even when every
        smaller II exhausts the budget (the result is then flagged, not
        claimed optimal).
        """
        budget = _Budget(self.budget_nodes, self.time_budget_s)
        exhausted = False
        for ii in range(max(1, min_ii), heuristic_ii):
            order, ran_out = self._solve(graph, ii, budget)
            if order is not None:
                return SourceSchedule(
                    ii=ii,
                    order=tuple(order),
                    backend=self.name,
                    proven_optimal=not exhausted,
                    exhausted=exhausted,
                    nodes=budget.used,
                )
            exhausted = exhausted or ran_out
        return SourceSchedule(
            ii=heuristic_ii,
            order=tuple(range(graph.n)),
            backend=self.name,
            proven_optimal=not exhausted,
            exhausted=exhausted,
            nodes=budget.used,
        )
