"""Scheduler backend registry (docs/SCHEDULERS.md).

``get_scheduler`` is the one constructor the driver, the advisor, the
compare harness, and the fuzz oracle all share — backends register here
and become reachable as ``SLMSOptions(scheduler="<name>")``.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.schedulers.base import (
    EDGE_MIN_SLACK,
    MinII,
    ModuloScheduler,
    SourceSchedule,
    edge_min_slack,
    identity_feasible,
    op_class_counts,
    recurrence_mii,
    resource_mii,
)
from repro.core.schedulers.exact import ExactScheduler
from repro.core.schedulers.heuristic import HeuristicScheduler

SCHEDULERS: Dict[str, Type[ModuloScheduler]] = {
    "heuristic": HeuristicScheduler,
    "exact": ExactScheduler,
}

SCHEDULER_NAMES = tuple(sorted(SCHEDULERS))


def get_scheduler(
    name: str, budget_nodes: Optional[int] = None
) -> ModuloScheduler:
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from "
            + ", ".join(SCHEDULER_NAMES)
        ) from None
    return cls(budget_nodes=budget_nodes)


__all__ = [
    "EDGE_MIN_SLACK",
    "MinII",
    "ModuloScheduler",
    "SourceSchedule",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "ExactScheduler",
    "HeuristicScheduler",
    "edge_min_slack",
    "get_scheduler",
    "identity_feasible",
    "op_class_counts",
    "recurrence_mii",
    "resource_mii",
]
