"""The paper's scheduler as a backend: fixed placement, smallest-II sweep.

This is the default and MUST stay byte-identical to the pre-refactor
driver: ``find_schedule`` delegates to
:func:`repro.core.mii.find_valid_ii` (same candidate sweep, same trace
events), and ``refine`` returns the identity placement unchanged — so
the frozen corpus sweep digest and the obs event streams cannot move.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ddg import DependenceGraph
from repro.core.mii import find_valid_ii
from repro.core.schedulers.base import (
    ModuloScheduler,
    SourceSchedule,
    identity_feasible,
)


class HeuristicScheduler(ModuloScheduler):
    """Iterative-Shortest-Path heuristic: identity order, first valid II."""

    name = "heuristic"

    def schedule(
        self, graph: DependenceGraph, ii: int
    ) -> Optional[SourceSchedule]:
        if not 1 <= ii < graph.n:  # the paper's II < n_mis validity bound
            return None
        if not identity_feasible(graph, ii):
            return None
        return SourceSchedule(
            ii=ii, order=tuple(range(graph.n)), backend=self.name
        )

    def find_schedule(
        self,
        graph: DependenceGraph,
        n_mis: int,
        max_ii: Optional[int] = None,
    ) -> Optional[SourceSchedule]:
        ii = find_valid_ii(graph, n_mis, max_ii)
        if ii is None:
            return None
        return SourceSchedule(
            ii=ii, order=tuple(range(graph.n)), backend=self.name
        )
