"""Pluggable source-level modulo schedulers (docs/SCHEDULERS.md).

The paper's scheduler is *implicit*: SLMS never reorders MIs, so the
placement is fixed (MI at list position ``m`` of iteration ``k`` sits at
row ``k·II + m``) and "scheduling" reduces to the smallest-II search of
:func:`repro.core.mii.find_valid_ii`.  This package makes the placement
an explicit, pluggable decision — HatScheT-style — so an exact backend
can answer the question the heuristic cannot: *is the paper's fixed
placement optimal for this MI partition?*

A :class:`SourceSchedule` is an II plus a permutation ``order`` of the
MI list: ``order[r]`` is the input index of the MI placed at intra-
iteration row offset ``r``.  Because every downstream pass (MVE, scalar
expansion, emission, the V2xx validator) works off list position, a
backend that returns a non-identity permutation is applied by simply
reordering the MI list and rebuilding the DDG — the permuted body is
sequentially equivalent (distance-0 dependences force relative order to
be preserved; distance ≥ 1 dependences are between iterations and hold
under any intra-iteration order).

Shared minII helpers live here too: ``recurrence_mii`` (the paper's
difMin recMII) and ``resource_mii``, a *source-level* resMII lifted from
the machine-level formula in ``backend/ims.py`` — per-iteration op-class
census divided by the parametric FU mix of ``machines/model.py``.  The
paper's scheduler deliberately ignores resources (§7), so resMII is
reported, never enforced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.ddg import DependenceGraph
from repro.core.mii import pmii_difmin
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Stmt,
    Ternary,
    UnaryOp,
)
from repro.lang.visitors import walk
from repro.machines.model import MachineModel, res_mii_for_counts

#: Minimum row slack SLMS's fixed placement requires per dependence
#: kind: a flow edge must cross a row boundary; anti/output edges may
#: share a row because rows emit oldest-iteration first (the paper's
#: footnote-1 assumption, same constants as ``find_valid_ii``).
EDGE_MIN_SLACK: Dict[str, int] = {"flow": 1, "anti": 0, "output": 0}


def edge_min_slack(kind: str) -> int:
    return EDGE_MIN_SLACK.get(kind, 1)


@dataclass(frozen=True)
class SourceSchedule:
    """One scheduler answer: an II and an MI placement.

    ``order`` is a permutation of ``range(n)``; ``order[r]`` is the
    index, in the scheduler's input MI list, of the MI placed at row
    offset ``r``.  The identity permutation is the paper's placement.

    ``proven_optimal`` means the backend *proved* no smaller II admits
    any placement (for the given MI partition).  ``exhausted`` records
    that the node budget ran out somewhere below the returned II, so a
    smaller II may exist — such results are never reported as optimal.
    """

    ii: int
    order: Tuple[int, ...]
    backend: str
    proven_optimal: bool = False
    exhausted: bool = False
    nodes: int = 0

    @property
    def is_identity(self) -> bool:
        return self.order == tuple(range(len(self.order)))


@dataclass(frozen=True)
class MinII:
    """The two MII floors; ``min_ii`` is their max (HatScheT's minII)."""

    rec_mii: Optional[int] = None
    res_mii: Optional[int] = None

    @property
    def min_ii(self) -> int:
        floors = [f for f in (self.rec_mii, self.res_mii) if f is not None]
        return max(floors) if floors else 1


def identity_feasible(graph: DependenceGraph, ii: int) -> bool:
    """Is the paper's fixed (identity) placement valid at ``ii``?

    Exactly :func:`repro.core.mii.find_valid_ii`'s per-edge test,
    without the trace events or the II sweep.
    """
    return all(
        edge.distance * ii + (edge.dst - edge.src)
        >= edge_min_slack(edge.kind)
        for edge in graph.edges
    )


def recurrence_mii(graph: DependenceGraph) -> Optional[int]:
    """Recurrence MII floor (the paper's difMin iteration, §3.6)."""
    return pmii_difmin(graph)


def op_class_counts(
    mis: List[Stmt], types: Optional[Dict[str, str]] = None
) -> Dict[str, int]:
    """Per-iteration op-class census of an MI list (source level).

    Mirrors the backend's classification without lowering: every array
    reference is one ``mem`` access (a compound store like ``A[i] += e``
    is a load *and* a store), float add/sub is ``fadd``, float multiply
    ``fmul``, divide/mod ``div``, and integer/compare/select arithmetic
    ``alu``.  Scalar reads/writes are register traffic and free; the
    loop branch is excluded, as in ``backend/ims.py``'s ``res_mii``.
    """
    from repro.core.slms import _infer_type

    types = dict(types or {})
    counts = {"alu": 0, "fadd": 0, "fmul": 0, "div": 0, "mem": 0}

    def classify(node) -> None:
        if isinstance(node, ArrayRef):
            counts["mem"] += 1
        elif isinstance(node, BinOp):
            if node.op in ("/", "%"):
                counts["div"] += 1
            elif node.op in ("+", "-"):
                if _infer_type(node, types) == "float":
                    counts["fadd"] += 1
                else:
                    counts["alu"] += 1
            elif node.op == "*":
                if _infer_type(node, types) == "float":
                    counts["fmul"] += 1
                else:
                    counts["alu"] += 1
            else:  # comparisons, &&, ||
                counts["alu"] += 1
        elif isinstance(node, UnaryOp):
            if node.op != "+":
                counts["alu"] += 1
        elif isinstance(node, (Ternary, Call)):
            counts["alu"] += 1

    for stmt in mis:
        for node in walk(stmt):
            classify(node)
        if isinstance(stmt, Assign) and stmt.op is not None:
            # Compound form: the operator is not a BinOp node in the
            # AST, and an ArrayRef target is read *and* written.
            if isinstance(stmt.target, ArrayRef):
                counts["mem"] += 1
            is_float = "float" in (
                _infer_type(stmt.target, types),
                _infer_type(stmt.value, types),
            )
            if stmt.op in ("/", "%"):
                counts["div"] += 1
            elif stmt.op in ("+", "-"):
                counts["fadd" if is_float else "alu"] += 1
            elif stmt.op == "*":
                counts["fmul" if is_float else "alu"] += 1
            else:
                counts["alu"] += 1
    return counts


def resource_mii(
    mis: List[Stmt],
    machine: MachineModel,
    types: Optional[Dict[str, str]] = None,
) -> int:
    """Source-level resMII: ``max over classes ⌈uses/units⌉`` plus the
    issue-width bound, via the formula shared with ``backend/ims.py``."""
    return res_mii_for_counts(machine, op_class_counts(mis, types))


class ModuloScheduler:
    """Interface every source-level scheduling backend implements.

    ``schedule(graph, ii)`` answers the fixed-II question; ``refine``
    is the driver's entry point: given the smallest *identity* II the
    paper's search found, return the best placement the backend can —
    never worse than the identity placement at ``heuristic_ii``, so
    ``refine(...).ii <= heuristic_ii`` always holds.
    """

    name = "base"

    def __init__(self, budget_nodes: Optional[int] = None):
        self.budget_nodes = budget_nodes

    def min_ii(
        self,
        graph: DependenceGraph,
        machine: Optional[MachineModel] = None,
        mis: Optional[List[Stmt]] = None,
        types: Optional[Dict[str, str]] = None,
    ) -> MinII:
        res = (
            resource_mii(mis, machine, types)
            if machine is not None and mis is not None
            else None
        )
        return MinII(rec_mii=recurrence_mii(graph), res_mii=res)

    def schedule(
        self, graph: DependenceGraph, ii: int
    ) -> Optional[SourceSchedule]:
        raise NotImplementedError

    def find_schedule(
        self,
        graph: DependenceGraph,
        n_mis: int,
        max_ii: Optional[int] = None,
    ) -> Optional[SourceSchedule]:
        """Smallest-II schedule with the paper's ``II < n_mis`` bound."""
        upper = min(max_ii, n_mis - 1) if max_ii is not None else n_mis - 1
        for ii in range(1, upper + 1):
            sched = self.schedule(graph, ii)
            if sched is not None:
                return sched
        return None

    def refine(
        self,
        graph: DependenceGraph,
        heuristic_ii: int,
        min_ii: int = 1,
    ) -> SourceSchedule:
        """Improve on the identity placement at ``heuristic_ii``.

        ``min_ii`` is the smallest II worth returning (the driver passes
        ``⌈n_mis/trip⌉`` so a lower II never trips the stage-count
        emission guard).  The base implementation is the paper's answer:
        the identity placement, unrefined.
        """
        return SourceSchedule(
            ii=heuristic_ii,
            order=tuple(range(graph.n)),
            backend=self.name,
        )
