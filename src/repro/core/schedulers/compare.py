"""Differential scheduler comparison (docs/SCHEDULERS.md, ``slms sched
compare``).

Runs every requested workload through the SLMS driver twice — once with
the paper's heuristic backend, once with the exact branch-and-bound —
and tabulates, per loop: both verdicts, both IIs, the recMII/resMII
floors, whether the exact result is proven optimal, and the **gap**
(heuristic II − exact II, only defined when both apply).

The refine architecture guarantees ``gap ≥ 0`` and identical
apply/decline verdicts; a negative gap or a verdict mismatch in this
report is therefore a scheduler bug, and the CLI exits non-zero on it.
Wall-clock solve times are reported here (and only here — they never
enter trace events, which must stay byte-deterministic).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import slms
from repro.core.slms import SLMSOptions, SLMSResult
from repro.workloads.base import Workload
from repro.workloads.corpus import all_workloads, get_workload

SCHEMA = "slms-sched/1"


@dataclass(frozen=True)
class LoopComparison:
    """Heuristic vs exact outcome for one innermost loop.

    ``rec_mii`` is the paper's §5 PMII (difMin over the §3.5
    *positional* delays of the final MI order) and ``res_mii`` the
    parametric-machine resource floor; both are informational — the
    positional delay model and the machine FU mix bound quantities the
    row placement does not have to respect, so either floor may exceed
    the achieved row II (docs/SCHEDULERS.md discusses both gaps).
    """

    workload: str
    suite: str
    loop: int
    heuristic_applied: bool
    heuristic_ii: Optional[int]
    heuristic_reason: str
    exact_applied: bool
    exact_ii: Optional[int]
    proven: Optional[bool]
    exhausted: bool
    nodes: int
    reordered: bool
    rec_mii: Optional[int]
    res_mii: Optional[int]

    @property
    def gap(self) -> Optional[int]:
        """heuristic II − exact II; ``None`` unless both applied."""
        if self.heuristic_ii is None or self.exact_ii is None:
            return None
        return self.heuristic_ii - self.exact_ii

    @property
    def mismatched(self) -> bool:
        return self.heuristic_applied != self.exact_applied

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "suite": self.suite,
            "loop": self.loop,
            "heuristic": {
                "applied": self.heuristic_applied,
                "ii": self.heuristic_ii,
                "reason": self.heuristic_reason,
            },
            "exact": {
                "applied": self.exact_applied,
                "ii": self.exact_ii,
                "proven": self.proven,
                "exhausted": self.exhausted,
                "nodes": self.nodes,
                "reordered": self.reordered,
            },
            "rec_mii": self.rec_mii,
            "res_mii": self.res_mii,
            "gap": self.gap,
        }


@dataclass
class CompareReport:
    """Whole-corpus scheduler comparison, serialised as ``slms-sched/1``."""

    machine: str
    budget: int
    rows: List[LoopComparison] = field(default_factory=list)
    # Per-workload exact-backend wall seconds (report-only; never in
    # trace events).
    solve_s: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict:
        applied = [r for r in self.rows if r.gap is not None]
        return {
            "workloads": len(self.solve_s),
            "loops": len(self.rows),
            "scheduled": len(applied),
            "improvements": sum(1 for r in applied if r.gap > 0),
            "negative_gaps": sum(1 for r in applied if r.gap < 0),
            "verdict_mismatches": sum(1 for r in self.rows if r.mismatched),
            "proven": sum(1 for r in applied if r.proven),
            "budget_exhausted": sum(1 for r in applied if r.exhausted),
            "wins": [
                {
                    "workload": r.workload,
                    "loop": r.loop,
                    "heuristic_ii": r.heuristic_ii,
                    "exact_ii": r.exact_ii,
                }
                for r in applied
                if r.gap > 0
            ],
        }

    @property
    def clean(self) -> bool:
        """True when exact never lost to the heuristic and every loop
        got the same apply/decline verdict from both backends."""
        s = self.summary()
        return s["negative_gaps"] == 0 and s["verdict_mismatches"] == 0

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA,
            "machine": self.machine,
            "budget": self.budget,
            "summary": self.summary(),
            "loops": [r.to_dict() for r in self.rows],
            "solve_s": {
                name: round(wall, 6)
                for name, wall in sorted(self.solve_s.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"


def _options(scheduler: str, machine: str, budget: int) -> SLMSOptions:
    return SLMSOptions(scheduler=scheduler, machine=machine,
                       sched_budget=budget)


def compare_workload(
    workload: Workload, machine: str = "itanium2", budget: int = 50_000
) -> Tuple[List[LoopComparison], float]:
    """Compare both backends on one workload.

    Returns the per-loop rows and the exact backend's wall seconds.
    """
    source = workload.full_source()
    heur = slms(source, _options("heuristic", machine, budget))
    t0 = time.perf_counter()
    extr = slms(source, _options("exact", machine, budget))
    wall = time.perf_counter() - t0
    if len(heur.loops) != len(extr.loops):  # pragma: no cover - invariant
        raise RuntimeError(
            f"{workload.name}: backends attempted different loop counts "
            f"({len(heur.loops)} vs {len(extr.loops)})"
        )
    rows: List[LoopComparison] = []
    for idx, (h, e) in enumerate(zip(heur.loops, extr.loops)):
        rows.append(_row(workload, idx, h, e))
    return rows, wall


def _row(
    workload: Workload, idx: int, h: SLMSResult, e: SLMSResult
) -> LoopComparison:
    return LoopComparison(
        workload=workload.name,
        suite=workload.suite,
        loop=idx,
        heuristic_applied=h.applied,
        heuristic_ii=h.ii if h.applied else None,
        heuristic_reason="" if h.applied else h.reason,
        exact_applied=e.applied,
        exact_ii=e.ii if e.applied else None,
        proven=e.sched_proven if e.applied else None,
        exhausted=bool(e.applied and e.sched_proven is False),
        nodes=e.sched_nodes,
        reordered=bool(
            e.applied
            and e.sched_order
            and list(e.sched_order) != sorted(e.sched_order)
        ),
        rec_mii=e.pmii if e.applied else None,
        res_mii=e.res_mii if e.applied else None,
    )


def compare_schedulers(
    workloads: Optional[Sequence[str]] = None,
    machine: str = "itanium2",
    budget: int = 50_000,
) -> CompareReport:
    """Run the heuristic-vs-exact comparison over the corpus.

    ``workloads`` — names to compare (default: all 47).
    """
    if workloads:
        targets = [get_workload(name) for name in workloads]
    else:
        targets = all_workloads()
    report = CompareReport(machine=machine, budget=budget)
    for workload in targets:
        rows, wall = compare_workload(workload, machine, budget)
        report.rows.extend(rows)
        report.solve_s[workload.name] = wall
    return report


def render_compare(report: CompareReport) -> str:
    """Terminal table for ``slms sched compare``."""
    lines: List[str] = []
    header = (
        f"{'workload':<12} {'loop':>4} {'heur':>5} {'exact':>5} "
        f"{'gap':>4} {'recMII':>6} {'resMII':>6}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in report.rows:
        if r.gap is None and not r.heuristic_applied and not r.exact_applied:
            continue  # both declined: summarised below
        status = []
        if r.mismatched:
            status.append("VERDICT-MISMATCH")
        if r.gap is not None and r.gap < 0:
            status.append("NEGATIVE-GAP")
        if r.gap is not None and r.gap > 0:
            status.append("improved")
        if r.exact_applied:
            status.append(
                "proven" if r.proven
                else "budget-exhausted" if r.exhausted
                else "unproven"
            )
        lines.append(
            f"{r.workload:<12} {r.loop:>4} "
            f"{r.heuristic_ii if r.heuristic_ii is not None else '-':>5} "
            f"{r.exact_ii if r.exact_ii is not None else '-':>5} "
            f"{r.gap if r.gap is not None else '-':>4} "
            f"{r.rec_mii if r.rec_mii is not None else '-':>6} "
            f"{r.res_mii if r.res_mii is not None else '-':>6}  "
            + " ".join(status)
        )
    s = report.summary()
    lines.append("")
    lines.append(
        f"{s['loops']} loop(s) in {s['workloads']} workload(s); "
        f"{s['scheduled']} scheduled by both, "
        f"{s['improvements']} improved, {s['proven']} proven optimal, "
        f"{s['budget_exhausted']} budget-exhausted, "
        f"{s['negative_gaps']} negative gap(s), "
        f"{s['verdict_mismatches']} verdict mismatch(es)"
    )
    total = sum(report.solve_s.values())
    lines.append(f"exact solve wall: {total:.3f} s "
                 f"(machine {report.machine}, budget {report.budget})")
    return "\n".join(lines)
