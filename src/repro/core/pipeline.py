"""User-facing SLMS entry points.

:func:`slms` transforms a whole program: every *innermost* canonical
for loop is attempted (outer loops of a nest keep their structure — a
loop whose body still contains a loop is skipped, matching the paper's
inner-loop focus), declarations for introduced temporaries are inserted
ahead of the loop, and a per-loop report is returned.

:func:`slms_loop` is the one-loop convenience used throughout the tests
and examples: give it source text (or a parsed program), get back the
transformed program plus the :class:`~repro.core.slms.SLMSResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.names import NamePool, all_names
from repro.core.slms import SLMSOptions, SLMSResult, slms_for_loop
from repro.lang.ast_nodes import Decl, For, Program, Stmt, While
from repro.lang.parser import parse_program
from repro.lang.visitors import walk
from repro.obs import get_tracer


@dataclass
class ProgramSLMSResult:
    """Whole-program transformation outcome."""

    program: Program
    loops: List[SLMSResult] = field(default_factory=list)

    @property
    def applied_count(self) -> int:
        return sum(1 for r in self.loops if r.applied)

    @property
    def any_applied(self) -> bool:
        return self.applied_count > 0


def _collect_types(program: Program) -> Dict[str, str]:
    types: Dict[str, str] = {}
    for node in walk(program):
        if isinstance(node, Decl):
            types[node.name] = node.type
    return types


def _is_innermost(loop: For) -> bool:
    for stmt in loop.body:
        for node in walk(stmt):
            if isinstance(node, (For, While)):
                return False
    return True


def slms(
    program: Union[Program, str],
    options: Optional[SLMSOptions] = None,
    types: Optional[Dict[str, str]] = None,
) -> ProgramSLMSResult:
    """Apply SLMS to every innermost canonical loop of a program.

    Accepts a parsed :class:`Program` or source text.  The input is
    never mutated; the result holds the transformed copy and one
    :class:`SLMSResult` per attempted loop (applied or declined, with
    the reason).  ``types`` supplies declarations for names declared
    outside the given fragment (array element types drive the type of
    decomposition temporaries).
    """
    if isinstance(program, str):
        program = parse_program(program)
    options = options or SLMSOptions()
    pool = NamePool(all_names(program))
    merged_types = _collect_types(program)
    if types:
        # Caller-supplied types win: used when transforming a kernel
        # excerpt whose declarations live elsewhere.  Their names are
        # also reserved so fresh temporaries cannot collide with them.
        merged_types.update(types)
        pool.reserve(types.keys())
    types = merged_types
    reports: List[SLMSResult] = []

    def try_reduction_lanes(loop: For) -> Optional[SLMSResult]:
        """§5 lane splitting: split the reduction, pipeline the lane
        loop, and stitch preheader/remainder/merge around it."""
        if options.reduction_lanes < 2:
            return None
        from repro.core.reductions import find_reduction, split_reduction

        from repro.analysis.loopinfo import LoopInfo

        header = LoopInfo.from_for(loop)
        if header is None:
            return None
        info = find_reduction(
            loop.body, header.var, options.allow_reassociation
        )
        if info is None:
            return None
        split = split_reduction(
            loop, info, pool,
            lanes=options.reduction_lanes,
            elem_type=types.get(info.var, "float"),
        )
        if split is None:
            return None
        result = slms_for_loop(split.main_loop, pool, options, types)
        if not result.applied:
            return None  # fall back to the un-split path
        result.new_decls = split.new_decls + result.new_decls
        result.new_scalars = split.lane_names + result.new_scalars
        result.stmts = (
            split.preheader + result.stmts + [split.remainder] + split.merge
        )
        result.unroll = max(result.unroll, options.reduction_lanes)
        result.lanes = options.reduction_lanes
        return result

    tracer = get_tracer()

    def transform_block(stmts: List[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, For) and _is_innermost(stmt):
                with tracer.span("slms.loop", index=len(reports)) as span:
                    result = try_reduction_lanes(stmt)
                    if result is None:
                        result = slms_for_loop(stmt, pool, options, types)
                    span.set(
                        applied=result.applied,
                        reason=result.reason,
                        ii=result.ii,
                    )
                if options.verify and result.applied:
                    # Imported lazily: verify depends on core for the
                    # result types, so the top level must not cycle.
                    from repro.verify.ir_check import check_result
                    from repro.verify.schedule import validate_result

                    result.diagnostics.extend(
                        validate_result(result, stmt).diagnostics
                    )
                    result.diagnostics.extend(check_result(result, stmt))
                reports.append(result)
                if result.applied:
                    out.extend(result.new_decls)
                    out.extend(result.stmts)
                else:
                    out.append(stmt.clone())
            elif isinstance(stmt, For):
                new_loop = stmt.clone()
                new_loop.body = transform_block(new_loop.body)
                out.append(new_loop)
            elif isinstance(stmt, While):
                new_loop = stmt.clone()
                new_loop.body = transform_block(new_loop.body)
                out.append(new_loop)
            else:
                out.append(stmt.clone())
        return out

    transformed = Program(transform_block(list(program.body)), program.loc)
    return ProgramSLMSResult(program=transformed, loops=reports)


def slms_loop(
    source: Union[Program, str],
    options: Optional[SLMSOptions] = None,
) -> Tuple[Program, SLMSResult]:
    """Transform a program containing (at least) one loop; return the
    transformed program and the report for the *first* attempted loop."""
    outcome = slms(source, options)
    if not outcome.loops:
        raise ValueError("no canonical innermost for loop found")
    return outcome.program, outcome.loops[0]
