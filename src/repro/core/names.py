"""Fresh-name generation for SLMS temporaries.

The paper introduces ``reg1``/``reg2`` (decomposition temps), ``pred0``
(if-conversion predicates), ``scal1`` (MVE copies) and ``regArr``
(scalar expansion).  We follow the same naming so transformed loops look
like the paper's figures, but guarantee freshness against every name in
the program.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.lang.ast_nodes import ArrayRef, Call, Decl, Node, Var
from repro.lang.visitors import walk


def all_names(node: Node) -> Set[str]:
    """Every name mentioned in a subtree: scalars, arrays, declared
    names (even when never referenced) and call targets."""
    names: Set[str] = set()
    for n in walk(node):
        if isinstance(n, (Var, ArrayRef, Call)):
            names.add(n.name)
        elif isinstance(n, Decl):
            names.add(n.name)
    return names


class NamePool:
    """Dispenses names that collide with nothing seen so far."""

    def __init__(self, taken: Iterable[str] = ()):
        self.taken: Set[str] = set(taken)

    def reserve(self, names: Iterable[str]) -> None:
        self.taken.update(names)

    def fresh(self, base: str) -> str:
        """``base`` itself if free, else ``base_2``, ``base_3``, …"""
        if base not in self.taken:
            self.taken.add(base)
            return base
        counter = 2
        while f"{base}_{counter}" in self.taken:
            counter += 1
        name = f"{base}_{counter}"
        self.taken.add(name)
        return name

    def numbered(self, prefix: str, start: int = 1) -> str:
        """First free ``prefix<k>`` for k = start, start+1, …"""
        counter = start
        while f"{prefix}{counter}" in self.taken:
            counter += 1
        name = f"{prefix}{counter}"
        self.taken.add(name)
        return name
