"""Multi-instruction (MI) partitioning — paper §3, §5 step 3.

After if-conversion a loop body is a flat list of assignments,
predicated assignments, and calls; each is one MI.  This module

* hoists in-body declarations (``float t = e;`` → declaration outside,
  ``t = e;`` as the MI) so the body is pure statements,
* renames *multi-defined* scalars: when a scalar has several
  unconditional definitions in the body, each definition web gets its
  own name (§5 step 3 "Re-name multi defined-used scalars"), which
  removes artificial output/anti dependences between unrelated uses of
  the same temporary name.  The final web keeps the original name so the
  scalar's live-out value is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.names import NamePool
from repro.lang.ast_nodes import (
    Assign,
    Decl,
    ExprStmt,
    If,
    Stmt,
    Var,
)
from repro.lang.visitors import rename_scalar, used_scalars


@dataclass
class MIPartition:
    """The MI view of a loop body."""

    mis: List[Stmt]
    hoisted_decls: List[Decl] = field(default_factory=list)
    renamed: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.mis)


class NotPartitionable(Exception):
    """Body contains control flow MI partitioning cannot flatten."""


def partition_mis(
    body: List[Stmt],
    index_var: str,
    pool: NamePool,
    rename_multi_defs: bool = True,
    elem_types: Optional[Dict[str, str]] = None,
) -> MIPartition:
    """Partition a (post-if-conversion) loop body into MIs.

    ``elem_types`` maps declared names to their element type so that
    renamed definition webs keep the scalar's declared type.
    """
    mis: List[Stmt] = []
    hoisted: List[Decl] = []
    for stmt in body:
        if isinstance(stmt, Decl):
            if stmt.dims:
                raise NotPartitionable("array declaration inside loop body")
            hoisted.append(Decl(stmt.type, stmt.name, (), None, stmt.loc))
            if stmt.init is not None:
                mis.append(Assign(Var(stmt.name), stmt.init.clone(), None, stmt.loc))
        elif isinstance(stmt, (Assign, ExprStmt)):
            mis.append(stmt.clone())
        elif isinstance(stmt, If):
            # If-conversion has run; only simple predicated MIs remain.
            if stmt.els or len(stmt.then) != 1 or isinstance(stmt.then[0], If):
                raise NotPartitionable("unconverted if statement in body")
            mis.append(stmt.clone())
        else:
            raise NotPartitionable(
                f"{type(stmt).__name__} cannot be a multi-instruction"
            )

    partition = MIPartition(mis=mis, hoisted_decls=hoisted)
    if rename_multi_defs:
        types = dict(elem_types or {})
        for decl in hoisted:
            types.setdefault(decl.name, decl.type)
        _rename_multi_defined(partition, index_var, pool, types)
    return partition


def _unconditional_def(stmt: Stmt) -> Optional[str]:
    if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
        return stmt.target.name
    return None


def _conditionally_defines(stmt: Stmt, var: str) -> bool:
    if isinstance(stmt, If):
        return any(
            isinstance(s, Assign)
            and isinstance(s.target, Var)
            and s.target.name == var
            for s in stmt.then
        )
    return False


def _rename_multi_defined(
    partition: MIPartition,
    index_var: str,
    pool: NamePool,
    elem_types: Dict[str, str],
) -> None:
    """Split multi-def scalars into one name per definition web.

    Only *plain* (non-compound, unconditional) defs are split, and only
    when no def participates in a loop-carried read (a use before the
    first def would read the previous iteration's last web — splitting
    that is MVE's job, not renaming).  The last web keeps the original
    name so live-out values survive.
    """
    mis = partition.mis
    n = len(mis)
    candidates: Dict[str, List[int]] = {}
    for pos, stmt in enumerate(mis):
        name = _unconditional_def(stmt)
        if name is None or name == index_var:
            continue
        candidates.setdefault(name, []).append(pos)

    for var, def_positions in sorted(candidates.items()):
        if len(def_positions) < 2:
            continue
        # Compound defs (x += …) read the previous web: not splittable.
        if any(
            isinstance(mis[p], Assign) and mis[p].op is not None
            for p in def_positions
        ):
            continue
        if any(_conditionally_defines(stmt, var) for stmt in mis):
            continue
        # A use before the first def reads across the back edge.
        first_def = def_positions[0]
        if any(
            var in used_scalars(mis[p]) for p in range(0, first_def)
        ):
            continue
        # Linear reaching-rename: walk the body once; uses read the name
        # of the web currently live, each plain def opens the next web.
        # The last web keeps the original name (live-out preservation).
        web_names: List[str] = [
            pool.fresh(f"{var}_w{j + 1}") for j in range(len(def_positions) - 1)
        ] + [var]
        current = var  # never read: uses before first_def were ruled out
        web_idx = -1
        for pos in range(n):
            stmt = mis[pos]
            if pos in def_positions:
                stmt = _rename_uses(stmt, var, current)
                web_idx += 1
                current = web_names[web_idx]
                assert isinstance(stmt, Assign)
                mis[pos] = Assign(Var(current), stmt.value, stmt.op, stmt.loc)
            else:
                mis[pos] = _rename_uses(stmt, var, current)
        new_names = web_names[:-1]
        if new_names:
            partition.renamed[var] = new_names
            for name in new_names:
                partition.hoisted_decls.append(
                    Decl(elem_types.get(var, "float"), name)
                )


def _rename_uses(stmt: Stmt, old: str, new: str) -> Stmt:
    """Rename *reads* of scalar ``old`` (RHS, conditions, subscripts) but
    not definition targets."""
    if old == new:
        return stmt
    if isinstance(stmt, Assign):
        value = rename_scalar(stmt.value, old, new)
        target = stmt.target
        if not isinstance(target, Var):
            target = rename_scalar(target, old, new)
        else:
            target = target.clone()
        return Assign(target, value, stmt.op, stmt.loc)
    if isinstance(stmt, If):
        return If(
            rename_scalar(stmt.cond, old, new),
            [_rename_uses(s, old, new) for s in stmt.then],
            [_rename_uses(s, old, new) for s in stmt.els],
            stmt.loc,
        )
    return rename_scalar(stmt, old, new)
