"""Modulo Variable Expansion (paper §3.3).

A pipelined kernel overlaps iterations, so a scalar defined in one
kernel iteration and consumed in a later one (a decomposition temp, or
an original loop scalar like ``scal`` in Fig. 7) creates an
anti-dependence between kernel rows that defeats the ``||`` parallelism.
MVE removes it by unrolling the kernel ``U`` times and rotating the
scalar through ``U`` names: the value produced for iteration ``g``
always lives in ``name[g mod U]``.

Eligibility: the scalar must have exactly one *plain unconditional*
definition in the body whose RHS does not read the scalar itself.
Conditional (``if (p) max0 = …``) and accumulating (``s += …``)
definitions are reduction-style; rotating them splits the reduction into
independent lanes and needs a user-written merge (the paper's max-loop
does exactly that "manually"), so they are out of scope for the
automatic transformation.

MVE needs the full static trip count (kernel alignment and the live-out
copy depend on ``N mod U``), so it applies only to loops with literal
bounds and positive step; the driver falls back to scalar expansion or
to the plain (sequentially-correct, less parallel) schedule otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.loopinfo import LoopInfo
from repro.core.names import NamePool
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Decl,
    For,
    IntLit,
    ParGroup,
    Stmt,
    Var,
)
from repro.lang.visitors import (
    collect_vars,
    defined_scalars,
    rename_scalar,
    substitute_expr,
    used_scalars,
)
from repro.obs import get_tracer


@dataclass
class RotationPlan:
    """How one scalar rotates through U names."""

    var: str
    def_mi: int
    lifetime: int  # Δ, in kernel iterations
    use_mis_same: List[int] = field(default_factory=list)  # m > def_mi
    use_mis_prev: List[int] = field(default_factory=list)  # m < def_mi
    names: List[str] = field(default_factory=list)


@dataclass
class MVEResult:
    """The fully expanded pipelined loop."""

    stmts: List[Stmt]
    new_decls: List[Decl]
    unroll: int
    plans: List[RotationPlan]


def eligible_scalars(mis: Sequence[Stmt], index_var: str) -> Dict[str, int]:
    """Scalars with exactly one plain unconditional def; → def MI index."""
    defs: Dict[str, List[int]] = {}
    plain: Dict[str, bool] = {}
    for pos, stmt in enumerate(mis):
        for var in defined_scalars(stmt):
            if var == index_var:
                continue
            defs.setdefault(var, []).append(pos)
            is_plain = (
                isinstance(stmt, Assign)
                and isinstance(stmt.target, Var)
                and stmt.op is None
                and var not in collect_vars(stmt.value)
            )
            plain[var] = plain.get(var, True) and is_plain
    return {
        var: positions[0]
        for var, positions in defs.items()
        if len(positions) == 1 and plain.get(var, False)
    }


def plan_rotations(
    mis: Sequence[Stmt],
    info: LoopInfo,
    ii: int,
    pool: NamePool,
    only: Optional[Set[str]] = None,
) -> List[RotationPlan]:
    """Rotation plans for every eligible scalar with lifetime ≥ 1.

    Lifetime of a value (def MI stage ``s_d``, use MI stage ``s_u``):
    ``s_u − s_d`` kernel iterations for same-iteration uses, plus one
    for uses positioned before the def (they read the previous
    iteration's value).
    """
    n = len(mis)
    stages = -(-n // ii)
    del stages  # stage arithmetic is inline below; kept for readability

    def stage(m: int) -> int:
        return m // ii

    plans: List[RotationPlan] = []
    for var, def_mi in sorted(eligible_scalars(mis, info.var).items()):
        if only is not None and var not in only:
            continue
        plan = RotationPlan(var=var, def_mi=def_mi, lifetime=0)
        for pos, stmt in enumerate(mis):
            if var not in used_scalars(stmt):
                continue
            if pos > def_mi:
                plan.use_mis_same.append(pos)
                plan.lifetime = max(plan.lifetime, stage(pos) - stage(def_mi))
            elif pos < def_mi:
                plan.use_mis_prev.append(pos)
                plan.lifetime = max(plan.lifetime, stage(pos) - stage(def_mi) + 1)
            # pos == def_mi: RHS self-reads were excluded by eligibility.
        if plan.lifetime >= 1 and (plan.use_mis_same or plan.use_mis_prev):
            plans.append(plan)

    if not plans:
        return []
    unroll = max(p.lifetime for p in plans) + 1
    for plan in plans:
        # The paper keeps the original base: reg -> reg1, reg2, …;
        # scal -> scal1, scal2, …
        base = plan.var.rstrip("0123456789") or plan.var
        plan.names = [pool.numbered(base, start=1) for _ in range(unroll)]
    return plans


def apply_mve(
    mis: Sequence[Stmt],
    info: LoopInfo,
    ii: int,
    plans: List[RotationPlan],
    elem_types: Optional[Dict[str, str]] = None,
) -> MVEResult:
    """Emit the prologue / U-times-unrolled kernel / residual / epilogue
    with rotation renaming applied per instance.

    Requires literal bounds (``info.trip_count`` not ``None``), positive
    step, and trip count ≥ stage count — the driver checks all three.
    """
    n = len(mis)
    if not plans:
        raise ValueError("apply_mve called with no rotation plans")
    if info.trip_count is None:
        raise ValueError("MVE requires literal loop bounds")
    if info.step <= 0:
        raise ValueError("MVE requires a positive loop step")
    unroll = len(plans[0].names)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "mve.apply",
            unroll=unroll,
            rotated=[p.var for p in plans],
            lifetimes=[p.lifetime for p in plans],
        )
    stages = -(-n // ii)
    trips = info.trip_count
    if trips < stages:
        raise ValueError("trip count below stage count")
    lo = info.lo_const
    step = info.step
    assert lo is not None

    by_var = {p.var: p for p in plans}

    def instantiate(m: int, g: int, index_offset_from_i: Optional[int]) -> Stmt:
        """MI ``m`` for global iteration ``g`` (0-based).

        ``index_offset_from_i`` is the loop-variable offset when inside
        the kernel loop; ``None`` means emit with the literal index
        ``lo + g*step``.
        """
        stmt = mis[m].clone()
        if index_offset_from_i is None:
            stmt = substitute_expr(stmt, info.var, IntLit(lo + g * step))
        elif index_offset_from_i == 0:
            pass
        else:
            stmt = substitute_expr(
                stmt,
                info.var,
                BinOp("+", Var(info.var), IntLit(index_offset_from_i)),
            )
        for var, plan in by_var.items():
            if m == plan.def_mi:
                stmt = rename_scalar(stmt, var, plan.names[g % unroll])
            elif m in plan.use_mis_same:
                stmt = rename_scalar(stmt, var, plan.names[g % unroll])
            elif m in plan.use_mis_prev:
                stmt = rename_scalar(stmt, var, plan.names[(g - 1) % unroll])
        return stmt

    def row_group(row: List[Stmt]) -> Stmt:
        return row[0] if len(row) == 1 else ParGroup(row)

    out: List[Stmt] = []

    # ---- preheader for previous-iteration uses at g = 0 ----------------
    for plan in plans:
        if plan.use_mis_prev:
            out.append(Assign(Var(plan.names[(-1) % unroll]), Var(plan.var)))

    # ---- prologue ---------------------------------------------------------
    for t in range((stages - 1) * ii):
        row: List[Stmt] = []
        for k in range(0, t // ii + 1):
            m = t - k * ii
            if 0 <= m < n:
                row.append(instantiate(m, k, None))
        if row:
            out.append(row_group(row))

    # ---- kernel -----------------------------------------------------------
    kernel_iters = trips - stages + 1
    aligned = (kernel_iters // unroll) * unroll
    if aligned > 0:
        body: List[Stmt] = []
        for c in range(unroll):
            for r in range(ii):
                row = []
                for s in range(stages - 1, -1, -1):
                    m = s * ii + r
                    if m < n:
                        # g = b + c + (S-1-s); b ≡ 0 (mod U), so the
                        # rotation index is (c + S-1-s) mod U; rebuild a
                        # concrete g with b = 0 for the renaming call.
                        g = c + (stages - 1 - s)
                        offset = (c + stages - 1 - s) * step
                        row.append(instantiate(m, g, offset))
                if row:
                    body.append(row_group(row))
        out.append(
            For(
                init=Assign(Var(info.var), IntLit(lo)),
                cond=BinOp("<", Var(info.var), IntLit(lo + aligned * step)),
                step=Assign(Var(info.var), IntLit(unroll * step), "+"),
                body=body,
            )
        )

    # ---- residual kernel iterations (trip not divisible by U) ----------
    for kb in range(aligned, kernel_iters):
        for r in range(ii):
            row = []
            for s in range(stages - 1, -1, -1):
                m = s * ii + r
                if m < n:
                    g = kb + (stages - 1 - s)
                    row.append(instantiate(m, g, None))
            if row:
                out.append(row_group(row))

    # ---- epilogue ---------------------------------------------------------
    for q in range(n - ii):
        fq, r = divmod(q, ii)
        row = []
        for s in range(stages - 1, fq, -1):
            m = s * ii + r
            if m < n:
                g = trips + fq - s
                row.append(instantiate(m, g, None))
        if row:
            out.append(row_group(row))

    # ---- live-out restoration ------------------------------------------------
    # The scalar's final value is iteration N-1's value, and the loop
    # variable must end at its original exit value.
    for plan in plans:
        out.append(
            Assign(Var(plan.var), Var(plan.names[(trips - 1) % unroll]))
        )
    out.append(Assign(Var(info.var), IntLit(lo + trips * step)))

    elem_types = elem_types or {}
    decls = [
        Decl(elem_types.get(plan.var, "float"), name)
        for plan in plans
        for name in plan.names
    ]
    return MVEResult(stmts=out, new_decls=decls, unroll=unroll, plans=plans)
