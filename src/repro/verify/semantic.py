"""Semantic checker over the C-subset AST.

A linear, scope-aware walk of a :class:`~repro.lang.ast_nodes.Program`
that reports :class:`~repro.verify.diagnostics.Diagnostic` records for:

* use-before-def of scalars (``E101``; the loop-carried first-iteration
  variant is ``W115``),
* duplicate (``E102``) and shadowing (``W103``) declarations,
* type errors: float subscripts (``E104``), rank mismatches (``E105``),
  subscripted scalars (``E109``), arrays used as scalars (``E110``),
  and int ← float narrowing assignments (``W108``),
* out-of-bounds subscripts: constant indices against the declared
  ``Decl`` sizes (``E106``) and affine in-loop indices whose range over
  literal loop bounds can escape (``W107``),
* unsupported / analysis-defeating constructs: ``break``/``continue``
  outside a loop (``E111``), constant division by zero (``E112``),
  opaque calls (``W113``), and non-canonical loops (``N120``).

The checker is intentionally conservative the *other* way from the SLMS
filters: it never blocks a transformation, it only reports.  Undeclared
scalars (loop counters like ``i``) are legal in this dialect and assumed
``int``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.affine import analyze_subscript
from repro.analysis.loopinfo import LoopInfo
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.visitors import defined_scalars, fold_constants, walk
from repro.verify.diagnostics import Diagnostic, DiagnosticBag, sort_diagnostics


@dataclass
class _Sym:
    """One declared name: its type and array dimensions (empty = scalar)."""

    type: str
    dims: Tuple[int, ...]
    decl: Decl


class _Scope:
    """A stack of declaration maps; lookup walks outward."""

    def __init__(self) -> None:
        self.frames: List[Dict[str, _Sym]] = [{}]

    def push(self) -> None:
        self.frames.append({})

    def pop(self) -> None:
        self.frames.pop()

    def declare(self, decl: Decl) -> Tuple[bool, Optional[_Sym]]:
        """Register ``decl``; returns (duplicate_in_scope, shadowed_sym)."""
        frame = self.frames[-1]
        duplicate = decl.name in frame
        shadowed = None
        for outer in self.frames[:-1]:
            if decl.name in outer:
                shadowed = outer[decl.name]
        frame[decl.name] = _Sym(decl.type, decl.dims, decl)
        return duplicate, shadowed

    def lookup(self, name: str) -> Optional[_Sym]:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return None


class SemanticChecker:
    """Single-use checker; call :meth:`check` once per program."""

    def __init__(self) -> None:
        self.bag = DiagnosticBag()
        self.scope = _Scope()
        # Scalars with a value available at the current program point
        # (decl-with-init or a textually earlier assignment).
        self.initialized: Set[str] = set()
        # Scalars assigned somewhere inside the loop bodies currently on
        # the traversal stack — a read of one of these before its def is
        # a loop-carried (previous-iteration) read, not a plain E101.
        self.loop_defined: List[Set[str]] = []
        self.loop_depth = 0
        # Loop headers enclosing the current point, innermost last, for
        # the affine range check on subscripts.
        self.loop_infos: List[LoopInfo] = []

    # -- entry point --------------------------------------------------------
    def check(self, program: Program) -> List[Diagnostic]:
        for stmt in program.body:
            self._stmt(stmt)
        return sort_diagnostics(self.bag.diagnostics)

    # -- type inference ------------------------------------------------------
    def _expr_type(self, expr: Expr) -> Optional[str]:
        """``"int"``, ``"float"``, or ``None`` when unknown (calls)."""
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, FloatLit):
            return "float"
        if isinstance(expr, Var):
            sym = self.scope.lookup(expr.name)
            # Undeclared scalars (loop counters) default to int.
            return sym.type if sym is not None else "int"
        if isinstance(expr, ArrayRef):
            sym = self.scope.lookup(expr.name)
            return sym.type if sym is not None else None
        if isinstance(expr, BinOp):
            if expr.op not in ("+", "-", "*", "/", "%"):
                return "int"  # relational / logical
            left = self._expr_type(expr.left)
            right = self._expr_type(expr.right)
            if left is None or right is None:
                return None
            return "float" if "float" in (left, right) else "int"
        if isinstance(expr, UnaryOp):
            if expr.op == "!":
                return "int"
            return self._expr_type(expr.operand)
        if isinstance(expr, Ternary):
            then = self._expr_type(expr.then)
            els = self._expr_type(expr.els)
            if then is None or els is None:
                return None
            return "float" if "float" in (then, els) else "int"
        return None  # Call: unknown signature

    # -- expression checks ---------------------------------------------------
    def _check_expr(self, expr: Expr, reading: bool = True) -> None:
        """Validate one expression tree (reads, subscripts, div-by-zero)."""
        if isinstance(expr, Var):
            sym = self.scope.lookup(expr.name)
            if sym is not None and sym.dims:
                self.bag.error(
                    "E110",
                    expr.loc,
                    f"array {expr.name!r} used as a scalar "
                    f"(declared {sym.type} "
                    f"{expr.name}{''.join(f'[{d}]' for d in sym.dims)})",
                )
                return
            if reading:
                self._check_scalar_read(expr)
            return
        if isinstance(expr, ArrayRef):
            self._check_array_ref(expr)
            for idx in expr.indices:
                self._check_expr(idx)
            return
        if isinstance(expr, BinOp):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            if expr.op in ("/", "%"):
                if isinstance(expr.right, IntLit) and expr.right.value == 0:
                    self.bag.error(
                        "E112", expr.loc, f"constant {expr.op} by zero"
                    )
            return
        if isinstance(expr, Call):
            self.bag.warning(
                "W113",
                expr.loc,
                f"call to {expr.name!r} is opaque; SLMS treats it as a "
                "barrier against every memory reference",
            )
            for arg in expr.args:
                self._check_expr(arg)
            return
        for child in expr.children():
            if isinstance(child, Expr):
                self._check_expr(child)

    def _check_scalar_read(self, var: Var) -> None:
        if var.name in self.initialized:
            return
        sym = self.scope.lookup(var.name)
        if sym is not None and sym.dims:
            return  # reported as E110 by the caller
        carried = any(var.name in defs for defs in self.loop_defined)
        if carried:
            self.bag.warning(
                "W115",
                var.loc,
                f"{var.name!r} is read before its definition in this loop "
                "body; the first iteration sees an uninitialized value",
            )
            # One report per name is enough.
            self.initialized.add(var.name)
        elif self._assigned_later(var.name):
            # Defined later at the same nesting level without a loop in
            # between carrying it back: plain use-before-def.
            self.bag.error(
                "E101",
                var.loc,
                f"{var.name!r} is read before any definition reaches it",
            )
            self.initialized.add(var.name)
        else:
            self.bag.error(
                "E101",
                var.loc,
                f"{var.name!r} is never assigned before this read",
            )
            self.initialized.add(var.name)

    def _assigned_later(self, name: str) -> bool:
        return name in self._all_defs

    def _check_array_ref(self, ref: ArrayRef) -> None:
        sym = self.scope.lookup(ref.name)
        if sym is None:
            return  # undeclared array: dims unknown, nothing to check
        if not sym.dims:
            self.bag.error(
                "E109",
                ref.loc,
                f"{ref.name!r} is declared as a scalar but is subscripted",
            )
            return
        if len(ref.indices) != len(sym.dims):
            self.bag.error(
                "E105",
                ref.loc,
                f"{ref.name!r} has rank {len(sym.dims)} but is indexed "
                f"with {len(ref.indices)} subscript(s)",
            )
            return
        for dim, idx in zip(sym.dims, ref.indices):
            idx_type = self._expr_type(idx)
            if idx_type == "float":
                self.bag.error(
                    "E104",
                    idx.loc,
                    f"subscript of {ref.name!r} has floating-point type",
                )
                continue
            self._check_bounds(ref.name, dim, idx)

    def _check_bounds(self, array: str, dim: int, idx: Expr) -> None:
        folded = fold_constants(idx.clone())
        if isinstance(folded, IntLit):
            idx = folded
        if isinstance(idx, IntLit):
            if not 0 <= idx.value < dim:
                self.bag.error(
                    "E106",
                    idx.loc,
                    f"index {idx.value} is outside {array!r} "
                    f"(size {dim})",
                )
            return
        # Affine in an enclosing loop variable with literal bounds: the
        # index range over the whole iteration space is computable.
        for info in reversed(self.loop_infos):
            if info.lo_const is None or info.trip_count is None:
                continue
            if info.trip_count == 0:
                continue
            affine = analyze_subscript(idx, info.var)
            if affine is None or affine.syms or affine.coeff == 0:
                continue
            first = affine.coeff * info.lo_const + affine.offset
            last_i = info.lo_const + (info.trip_count - 1) * info.step
            last = affine.coeff * last_i + affine.offset
            lo_val, hi_val = min(first, last), max(first, last)
            if hi_val < 0 or lo_val >= dim:
                self.bag.error(
                    "E106",
                    idx.loc,
                    f"index range [{lo_val}, {hi_val}] of {array!r} never "
                    f"intersects [0, {dim})",
                )
            elif lo_val < 0 or hi_val >= dim:
                self.bag.warning(
                    "W107",
                    idx.loc,
                    f"index of {array!r} spans [{lo_val}, {hi_val}] over "
                    f"loop {info.var!r}; array size is {dim}",
                )
            return

    # -- statements ---------------------------------------------------------
    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Decl):
            self._decl(stmt)
        elif isinstance(stmt, Assign):
            self._assign(stmt)
        elif isinstance(stmt, If):
            self._check_expr(stmt.cond)
            self.scope.push()
            for s in stmt.then:
                self._stmt(s)
            self.scope.pop()
            self.scope.push()
            for s in stmt.els:
                self._stmt(s)
            self.scope.pop()
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, While):
            self._loop_body(stmt.body, info=None, cond=stmt.cond)
        elif isinstance(stmt, (Break, Continue)):
            if self.loop_depth == 0:
                kw = "break" if isinstance(stmt, Break) else "continue"
                self.bag.error(
                    "E111", stmt.loc, f"{kw!r} outside any loop"
                )
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ParGroup):
            for s in stmt.stmts:
                self._stmt(s)

    def _decl(self, decl: Decl) -> None:
        duplicate, shadowed = self.scope.declare(decl)
        if duplicate:
            self.bag.error(
                "E102",
                decl.loc,
                f"{decl.name!r} is already declared in this scope",
            )
        elif shadowed is not None:
            self.bag.warning(
                "W103",
                decl.loc,
                f"declaration of {decl.name!r} shadows an outer declaration",
            )
        if decl.init is not None:
            self._check_expr(decl.init)
            init_type = self._expr_type(decl.init)
            if decl.type == "int" and init_type == "float":
                self.bag.warning(
                    "W108",
                    decl.loc,
                    f"initializing int {decl.name!r} with a float value "
                    "truncates",
                )
            self.initialized.add(decl.name)

    def _assign(self, stmt: Assign) -> None:
        self._check_expr(stmt.expanded_value())
        target = stmt.target
        if isinstance(target, Var):
            sym = self.scope.lookup(target.name)
            if sym is not None and sym.dims:
                self.bag.error(
                    "E110",
                    target.loc,
                    f"array {target.name!r} assigned as a scalar",
                )
            else:
                value_type = self._expr_type(stmt.expanded_value())
                target_type = sym.type if sym is not None else "int"
                if (
                    sym is not None
                    and target_type == "int"
                    and value_type == "float"
                ):
                    self.bag.warning(
                        "W108",
                        stmt.loc,
                        f"assigning a float value to int {target.name!r} "
                        "truncates",
                    )
            self.initialized.add(target.name)
        else:
            self._check_array_ref(target)
            for idx in target.indices:
                self._check_expr(idx)

    def _for(self, loop: For) -> None:
        info = LoopInfo.from_for(loop)
        if info is None:
            self.bag.note(
                "N120",
                loop.loc,
                "loop is not in canonical counted form "
                "(for (i = lo; i < hi; i += c)); SLMS will decline it",
            )
        if loop.init is not None:
            self._stmt(loop.init)
        if loop.cond is not None:
            self._check_expr(loop.cond)
        if info is not None:
            self.loop_infos.append(info)
        self._loop_body(loop.body, info=info, step=loop.step)
        if info is not None:
            self.loop_infos.pop()

    def _loop_body(
        self,
        body: List[Stmt],
        info: Optional[LoopInfo],
        cond: Optional[Expr] = None,
        step: Optional[Stmt] = None,
    ) -> None:
        if cond is not None:
            self._check_expr(cond)
        defs: Set[str] = set()
        for s in body:
            defs |= defined_scalars(s)
        if step is not None:
            defs |= defined_scalars(step)
        self.loop_defined.append(defs)
        self.loop_depth += 1
        self.scope.push()
        for s in body:
            self._stmt(s)
        if step is not None:
            self._stmt(step)
        self.scope.pop()
        self.loop_depth -= 1
        self.loop_defined.pop()
        # Anything the body assigns is available after the loop (zero-trip
        # loops excepted; being flow-insensitive here avoids false E101s).
        self.initialized |= defs

    # -- prepass -------------------------------------------------------------
    @property
    def _all_defs(self) -> Set[str]:
        return self.__dict__.setdefault("_all_defs_cache", set())

    def _collect_defs(self, program: Program) -> None:
        cache: Set[str] = set()
        for node in walk(program):
            if isinstance(node, Assign) and isinstance(node.target, Var):
                cache.add(node.target.name)
            elif isinstance(node, Decl) and node.init is not None:
                cache.add(node.name)
        self.__dict__["_all_defs_cache"] = cache


def check_program(program: Program) -> List[Diagnostic]:
    """Run the semantic checker; returns sorted diagnostics."""
    checker = SemanticChecker()
    checker._collect_defs(program)
    return checker.check(program)
