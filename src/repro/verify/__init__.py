"""Static verification layer: semantic checking and schedule validation.

Two independent analyses over the SLMS pipeline's inputs and outputs:

* :func:`check_program` — a semantic checker for the C subset
  (use-before-def, declaration conflicts, type and bounds errors,
  unsupported constructs), producing :class:`Diagnostic` records;
* :func:`validate_result` — an independent re-derivation of the
  dependence constraints and a structural replay of the emitted
  prologue/kernel/epilogue for every applied :class:`SLMSResult`;
* :func:`check_result` / :func:`check_module` — cross-phase IR
  invariant checks (``V21x``): AST→MI partition coverage, def-before-use
  of introduced scalars in the emitted kernel, and LIR operand/opcode/
  register-file/address soundness;
* :func:`lint_program` — dataflow-derived lint diagnostics (``A3xx``)
  over user sources: subscript bounds proofs, dead stores, possible
  uninitialized reads, and register-pressure estimates.

``slms check`` and ``slms lint`` drive these from the command line;
``SLMSOptions(verify=True)`` attaches validator *and* IR-invariant
diagnostics to each transformation result.
"""

from repro.verify.diagnostics import (
    DIAG_SCHEMA,
    DIAGNOSTIC_CODES,
    Diagnostic,
    ERROR,
    NOTE,
    WARNING,
    has_errors,
    json_payload,
    sort_diagnostics,
)
from repro.verify.ir_check import check_module, check_result
from repro.verify.lint import lint_program
from repro.verify.schedule import ValidationReport, validate_result
from repro.verify.semantic import check_program

__all__ = [
    "DIAG_SCHEMA",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "ERROR",
    "NOTE",
    "WARNING",
    "ValidationReport",
    "check_module",
    "check_program",
    "check_result",
    "has_errors",
    "json_payload",
    "lint_program",
    "sort_diagnostics",
    "validate_result",
]
