"""Static verification layer: semantic checking and schedule validation.

Two independent analyses over the SLMS pipeline's inputs and outputs:

* :func:`check_program` — a semantic checker for the C subset
  (use-before-def, declaration conflicts, type and bounds errors,
  unsupported constructs), producing :class:`Diagnostic` records;
* :func:`validate_result` — an independent re-derivation of the
  dependence constraints and a structural replay of the emitted
  prologue/kernel/epilogue for every applied :class:`SLMSResult`.

``slms check`` drives both from the command line;
``SLMSOptions(verify=True)`` attaches validator diagnostics to each
transformation result.
"""

from repro.verify.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    ERROR,
    NOTE,
    WARNING,
    has_errors,
    sort_diagnostics,
)
from repro.verify.schedule import ValidationReport, validate_result
from repro.verify.semantic import check_program

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "ERROR",
    "NOTE",
    "WARNING",
    "ValidationReport",
    "check_program",
    "has_errors",
    "sort_diagnostics",
    "validate_result",
]
