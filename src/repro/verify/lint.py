"""``slms lint`` — dataflow-derived diagnostics over user sources.

Four families of findings, all computed from the framework in
:mod:`repro.analysis.dataflow` (never from the transformation pipeline,
so lint works on programs SLMS would decline):

* **A301/A302/A303 — subscript bounds.**  Interval analysis proves each
  array subscript in or out of its declared extent.  A subscript whose
  range lies entirely outside is an error (it traps on every execution
  of that statement); one that merely *may* escape is a warning; a loop
  whose every subscript is proven in bounds earns a note.  Until now
  only the fuzz generator was in-bounds-by-construction — user input
  was unchecked before the simulator threw.
* **A304 — dead stores.**  A scalar write provably overwritten before
  any read on every path (final scalar values are observable program
  state, so a value held to program exit is never "dead").
* **A305 — use before initialization.**  A read whose reaching
  definitions include the declared-but-never-assigned pseudo-def.
* **A306/A307 — register pressure.**  The liveness-derived maximum of
  simultaneously live scalars per loop, checked against the active
  machine model's register file (A306 when it cannot fit, A307 as a
  per-loop informational note).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    build_cfg,
    eval_interval,
    interval_envs,
    live_sets,
    reaching_defs,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, node_uses
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    Decl,
    For,
    Program,
    Var,
    While,
)
from repro.lang.visitors import collect_vars, walk
from repro.machines.model import MachineModel
from repro.obs import get_metrics, get_tracer
from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticBag,
    sort_diagnostics,
)

# Scratch registers the backend's allocator reserves for spill reloads
# (kept in sync with repro.backend.regalloc.SCRATCH_COUNT).
_SCRATCH = 3


def _array_dims(program: Program) -> Dict[str, Tuple[int, ...]]:
    dims: Dict[str, Tuple[int, ...]] = {}
    for node in walk(program):
        if isinstance(node, Decl) and node.dims:
            dims[node.name] = node.dims
    return dims


def _node_refs(node: CFGNode) -> List[ArrayRef]:
    """Array references evaluated *by this node* (branch nodes contribute
    only their condition; loop/If bodies are separate nodes)."""
    if node.kind == "branch":
        root = node.cond
    elif node.kind == "stmt":
        root = node.stmt
    else:
        return []
    if root is None:
        return []
    return [n for n in walk(root) if isinstance(n, ArrayRef)]


def _innermost_loops(program: Program) -> List[For]:
    loops: List[For] = []
    for node in walk(program):
        if isinstance(node, For) and not any(
            isinstance(g, (For, While)) for s in node.body for g in walk(s)
        ):
            loops.append(node)
    return loops


def lint_program(
    program: Program,
    machine: Optional[MachineModel] = None,
) -> List[Diagnostic]:
    """Run every lint analysis over ``program``; diagnostics are sorted
    in source order.  ``machine`` drives the register-pressure check
    (omit it to skip A306/A307)."""
    tracer = get_tracer()
    bag = DiagnosticBag()
    cfg = build_cfg(list(program.body))
    intervals = interval_envs(cfg)
    reaching = reaching_defs(cfg)
    liveness = live_sets(cfg)
    dims = _array_dims(program)

    proven, flagged = _check_bounds(cfg, intervals, dims, bag)
    _check_uninit(cfg, reaching, bag)
    _check_dead_stores(cfg, liveness, bag)
    _bounds_notes(program, proven, bag)
    if machine is not None:
        _check_pressure(program, machine, bag)

    diags = sort_diagnostics(bag.diagnostics)
    if tracer.enabled:
        tracer.event(
            "lint.program",
            findings=len(diags),
            errors=sum(1 for d in diags if d.severity == "error"),
            subscripts_proven=len(proven),
            subscripts_flagged=len(flagged),
        )
    get_metrics().counter("lint.diagnostics").inc(len(diags))
    return diags


# ---------------------------------------------------------------------------
# A301/A302/A303 — subscript bounds
# ---------------------------------------------------------------------------


def _check_bounds(
    cfg: CFG,
    intervals,
    dims: Dict[str, Tuple[int, ...]],
    bag: DiagnosticBag,
) -> Tuple[List[ArrayRef], List[ArrayRef]]:
    """Prove or flag every subscript; returns (proven, flagged) refs."""
    proven: List[ArrayRef] = []
    flagged: List[ArrayRef] = []
    for node in cfg.stmt_nodes():
        env = intervals.inputs.get(node.id)
        if env is None:
            continue  # unreachable
        for ref in _node_refs(node):
            shape = dims.get(ref.name)
            if shape is None or len(ref.indices) != len(shape):
                continue  # semantic checker territory (E105/E109)
            ok = True
            for axis, (idx, extent) in enumerate(
                zip(ref.indices, shape)
            ):
                rng = eval_interval(idx, env)
                if rng.disjoint(0, extent - 1):
                    bag.error(
                        "A301", ref.loc,
                        f"subscript {rng} of {ref.name!r} axis {axis} is "
                        f"entirely outside [0, {extent - 1}]",
                    )
                    ok = False
                elif not rng.inside(0, extent - 1):
                    bag.warning(
                        "A302", ref.loc,
                        f"subscript {rng} of {ref.name!r} axis {axis} may "
                        f"escape [0, {extent - 1}]",
                    )
                    ok = False
            (proven if ok else flagged).append(ref)
    return proven, flagged


def _bounds_notes(
    program: Program,
    proven: List[ArrayRef],
    bag: DiagnosticBag,
) -> None:
    """A303: per innermost loop, note when every subscript is proven."""
    proven_ids = {id(r) for r in proven}
    for loop in _innermost_loops(program):
        refs = [n for s in loop.body for n in walk(s)
                if isinstance(n, ArrayRef)]
        if not refs:
            continue
        # Loops with flagged or unanalyzed refs already carry their own
        # A301/A302 findings; only the all-proven case earns a note.
        if all(id(r) in proven_ids for r in refs):
            bag.note(
                "A303", loop.loc,
                f"all {len(refs)} array subscript(s) in this loop are "
                "proven in bounds",
            )


# ---------------------------------------------------------------------------
# A305 — use before initialization
# ---------------------------------------------------------------------------


def _check_uninit(cfg: CFG, reaching, bag: DiagnosticBag) -> None:
    reported: Set[Tuple[int, str]] = set()
    for node in cfg.stmt_nodes():
        defs = reaching.inputs.get(node.id) or frozenset()
        uninit = {d.var for d in defs if d.uninit}
        if not uninit:
            continue
        for name in sorted(node_uses(node) & uninit):
            if (node.id, name) in reported:
                continue
            reported.add((node.id, name))
            bag.warning(
                "A305", node.loc,
                f"{name!r} may be read before it is ever assigned",
            )


# ---------------------------------------------------------------------------
# A304 — dead stores
# ---------------------------------------------------------------------------


def _check_dead_stores(cfg: CFG, liveness, bag: DiagnosticBag) -> None:
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if not (
            node.kind == "stmt"
            and isinstance(stmt, Assign)
            and isinstance(stmt.target, Var)
        ):
            continue
        # Backward analysis: inputs[n] is the node's live-*out* set.
        live_out = liveness.inputs.get(node.id) or frozenset()
        if stmt.target.name not in live_out:
            bag.warning(
                "A304", stmt.loc,
                f"value stored to {stmt.target.name!r} is overwritten "
                "before any read",
            )


# ---------------------------------------------------------------------------
# A306/A307 — register pressure vs. the machine model
# ---------------------------------------------------------------------------


def loop_pressure(loop: For) -> int:
    """Maximum number of simultaneously live scalars across the loop.

    The loop is analyzed as its own region with every scalar it touches
    assumed live-out — conservative (a scalar dead after the loop counts
    anyway) but machine-independent and cheap."""
    cfg = build_cfg([loop])
    touched = collect_vars(loop)
    result = live_sets(cfg, live_at_exit=touched)
    best = 0
    for node in cfg.stmt_nodes():
        live_in = result.outputs.get(node.id) or frozenset()
        live_out = result.inputs.get(node.id) or frozenset()
        best = max(best, len(live_in), len(live_out))
    return best


def _check_pressure(
    program: Program, machine: MachineModel, bag: DiagnosticBag
) -> None:
    for loop in _innermost_loops(program):
        pressure = loop_pressure(loop)
        capacity = machine.num_registers - _SCRATCH
        if pressure > capacity:
            bag.warning(
                "A306", loop.loc,
                f"~{pressure} simultaneously live scalar(s) exceed "
                f"{machine.name}'s {machine.num_registers}-register file "
                f"({capacity} allocatable); expect spill traffic",
            )
        else:
            bag.note(
                "A307", loop.loc,
                f"~{pressure} simultaneously live scalar(s); fits "
                f"{machine.name}'s {machine.num_registers}-register file",
            )
