"""Structured diagnostics for the static verification layer.

Every check in :mod:`repro.verify` reports its findings as
:class:`Diagnostic` records — severity, a stable code, a
:class:`~repro.lang.errors.SourceLocation`, and a human message — so the
CLI can render them as compiler-style ``file:line:col:`` lines, emit
them as JSON, or promote warnings to errors (``--Werror``) without the
checks knowing how they will be displayed.

Codes are grouped by family:

* ``E1xx`` / ``W1xx`` / ``N1xx`` — semantic checker (:mod:`repro.verify.semantic`);
* ``V2xx`` / ``N2xx`` — schedule validator (:mod:`repro.verify.schedule`)
  and the cross-phase IR invariant checker (:mod:`repro.verify.ir_check`,
  ``V21x``);
* ``A3xx`` — the dataflow lint pass (:mod:`repro.verify.lint`).

The full registry lives in :data:`DIAGNOSTIC_CODES`; ``docs/VERIFY.md``
and ``docs/ANALYSIS.md`` document each code with an example.

Machine-readable output is versioned: every ``--json`` emitter stamps
its payload with :data:`DIAG_SCHEMA` so downstream consumers can detect
format drift (pinned in ``tests/verify/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.lang.errors import SourceLocation

# Severities, ordered weakest to strongest.
NOTE = "note"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {NOTE: 0, WARNING: 1, ERROR: 2}

#: Registry of every diagnostic code with a one-line description.
DIAGNOSTIC_CODES: Dict[str, str] = {
    # -- semantic checker ---------------------------------------------------
    "E101": "scalar is read before any definition can reach it",
    "E102": "duplicate declaration of the same name in one scope",
    "E104": "array subscript has floating-point type",
    "E105": "subscript count does not match the declared rank",
    "E106": "constant subscript is outside the declared bounds",
    "E109": "subscripting a name declared as a scalar",
    "E110": "a declared array is used as a bare scalar",
    "E111": "break/continue outside any loop",
    "E112": "constant integer division or modulo by zero",
    "W103": "declaration shadows an outer declaration",
    "W107": "loop-range subscript can exceed the declared bounds",
    "W108": "float-valued expression assigned to an int scalar",
    "W113": "opaque call defeats dependence analysis",
    "W115": "first iteration reads a scalar before its in-loop definition",
    "N120": "loop is not in canonical counted form; SLMS will decline",
    # -- schedule validator -------------------------------------------------
    "V201": "dependence edge violates d*II + sigma(dst) - sigma(src) >= delta",
    "V202": "II / stage-count bookkeeping is inconsistent",
    "V203": "re-derived dependence graph is imprecise for an applied result",
    "V204": "prologue+kernel+epilogue do not cover the iteration space exactly",
    "V205": "emitted statement order violates a dependence",
    "V206": "MVE/scalar-expansion renaming is not def-use consistent",
    "V207": "emitted statement matches no multi-instruction",
    "N208": "structural validation skipped for this result shape",
    # -- cross-phase IR invariant checker ------------------------------------
    "V210": "MI partition does not cover the loop body exactly once",
    "V211": "introduced scalar is used before any definition reaches it",
    "V212": "LIR instruction has an unknown opcode or branch target",
    "V213": "LIR register operand is outside the register file",
    "V214": "LIR memory operation names an undeclared array",
    "V215": "LIR instruction operand shape is unsound for its opcode",
    "V216": "LIR constant address is outside the array's extent",
    # -- dataflow lint (slms lint) -------------------------------------------
    "A301": "array subscript range is provably out of bounds",
    "A302": "array subscript cannot be proven in bounds",
    "A303": "every array subscript in the loop is proven in bounds",
    "A304": "stored value is overwritten before any read (dead store)",
    "A305": "scalar may be read before initialization",
    "A306": "estimated register pressure exceeds the machine register file",
    "A307": "loop register-pressure estimate",
}

#: Version tag for the diagnostics JSON wire format (``slms check --json``
#: and ``slms lint --json``).  Bump on any change to the payload shape.
DIAG_SCHEMA = "slms-diag/1"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static check.

    ``severity`` is :data:`ERROR`, :data:`WARNING`, or :data:`NOTE`;
    ``code`` is a key of :data:`DIAGNOSTIC_CODES`; ``loc`` is the best
    known source position (``SourceLocation(0, 0)`` means unknown and is
    never printed).
    """

    severity: str
    code: str
    loc: SourceLocation
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def format(self, path: Optional[str] = None) -> str:
        """Compiler-style one-liner: ``file:line:col: severity: [code] msg``."""
        parts: List[str] = []
        if path:
            parts.append(path)
        if self.loc.line > 0:
            parts.append(str(self.loc))
        prefix = ":".join(parts)
        body = f"{self.severity}: [{self.code}] {self.message}"
        return f"{prefix}: {body}" if prefix else body

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation for ``slms check --json``."""
        return {
            "severity": self.severity,
            "code": self.code,
            "line": self.loc.line,
            "col": self.loc.col,
            "message": self.message,
        }


def error(code: str, loc: Optional[SourceLocation], message: str) -> Diagnostic:
    return Diagnostic(ERROR, code, loc or SourceLocation(), message)


def warning(code: str, loc: Optional[SourceLocation], message: str) -> Diagnostic:
    return Diagnostic(WARNING, code, loc or SourceLocation(), message)


def note(code: str, loc: Optional[SourceLocation], message: str) -> Diagnostic:
    return Diagnostic(NOTE, code, loc or SourceLocation(), message)


def has_errors(diags: Iterable[Diagnostic], werror: bool = False) -> bool:
    """True when any diagnostic is an error (warnings too under --Werror)."""
    floor = WARNING if werror else ERROR
    return any(
        _SEVERITY_RANK[d.severity] >= _SEVERITY_RANK[floor] for d in diags
    )


def json_payload(
    path: str,
    diags: Iterable[Diagnostic],
    werror: bool = False,
    **extra: object,
) -> Dict[str, object]:
    """The shared ``--json`` shape for ``slms check`` / ``slms lint``.

    Always carries :data:`DIAG_SCHEMA` under ``"schema"`` plus the file,
    overall verdict, and the sorted diagnostic list; subcommand-specific
    fields ride along via ``extra``.
    """
    diags = sort_diagnostics(diags)
    payload: Dict[str, object] = {
        "schema": DIAG_SCHEMA,
        "file": path,
        "ok": not has_errors(diags, werror=werror),
        "diagnostics": [d.to_dict() for d in diags],
    }
    payload.update(extra)
    return payload


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by source position, severe first at equal positions."""
    return sorted(
        diags,
        key=lambda d: (
            d.loc.line,
            d.loc.col,
            -_SEVERITY_RANK[d.severity],
            d.code,
        ),
    )


@dataclass
class DiagnosticBag:
    """Mutable collector shared by the checker passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def error(self, code: str, loc, message: str) -> None:
        self.add(error(code, loc, message))

    def warning(self, code: str, loc, message: str) -> None:
        self.add(warning(code, loc, message))

    def note(self, code: str, loc, message: str) -> None:
        self.add(note(code, loc, message))

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)
